//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the workspace's Criterion micro-benches compiling and runnable
//! without crates.io: `criterion_group!`/`criterion_main!`, benchmark
//! groups, [`Throughput`], and `Bencher::iter`. Measurement is a simple
//! calibrated loop (aim for ~20 ms per benchmark, report the mean) — no
//! statistics, outlier analysis, or HTML reports. Numbers are indicative,
//! not publication-grade; the real Criterion drops back in unchanged when
//! the build environment regains network access.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration work, used to print a rate next to the time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    /// Wall-clock budget per benchmark (split across calibration + runs).
    target: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Keep `cargo test`/`cargo bench` cheap; raise via CRITERION_TARGET_MS.
        let ms = std::env::var("CRITERION_TARGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20);
        Criterion {
            target: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }

    /// Bench a function outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(self.target, name, None, f);
        self
    }
}

/// A named group; carries the current throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_bench(self.criterion.target, name, self.throughput, f);
        self
    }

    /// End the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this batch's iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(
    target: Duration,
    name: &str,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    // Calibrate: grow the batch until it costs ~1/4 of the budget.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed * 4 >= target || iters >= 1 << 24 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        iters = iters.saturating_mul(4);
    };
    // One measured run with the remaining budget.
    let measured_iters =
        ((target.as_secs_f64() * 0.75 / per_iter.max(1e-12)) as u64).clamp(1, 1 << 28);
    let mut b = Bencher {
        iters: measured_iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / measured_iters as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!("  {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "  {name:<40} {:>12.1} ns/iter{rate}   ({measured_iters} iters)",
        per_iter * 1e9
    );
}

/// Bundle benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running the named groups; ignores harness CLI flags.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test`/`cargo bench` pass libtest-style flags; accept and
            // ignore them (the stand-in has no filtering or list mode).
            let _ = std::env::args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion {
            target: Duration::from_millis(2),
        };
        let mut ran = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.throughput(Throughput::Bytes(64));
            g.bench_function("inc", |b| {
                b.iter(|| {
                    ran += 1;
                    black_box(ran)
                })
            });
            g.finish();
        }
        assert!(ran > 0, "closure never ran");
    }
}
