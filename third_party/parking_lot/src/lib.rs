//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API: a
//! panicked holder releases the lock instead of poisoning it, and `lock()`
//! returns the guard directly. Only the surface the workspace uses is
//! provided ([`Mutex`], [`RwLock`], [`Condvar`]).

#![forbid(unsafe_code)]

use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`]. Holds the std guard in an `Option` so [`Condvar`]
/// can move it through std's consume-and-return wait API while the caller
/// keeps parking_lot's mutate-in-place signature.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Read guard re-export.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard re-export.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock that does not poison.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new unlocked rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable matching `parking_lot::Condvar`'s guard-in-place API.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

/// Result of a timed wait: whether the deadline elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, atomically releasing and reacquiring the guard.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wake all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must not be poisoned");
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(1);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_signals() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut started = m.lock();
            *started = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut started = m.lock();
        while !*started {
            let res = cv.wait_for(&mut started, Duration::from_secs(5));
            assert!(!res.timed_out(), "signal lost");
        }
        h.join().unwrap();
    }
}
