//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the slice of proptest's API the workspace's property tests use:
//!
//! * [`prelude::any`] for primitive ints, `bool`, and byte arrays;
//! * integer ranges (`0u8..4`, `1u64..=9`) and tuples as strategies;
//! * [`collection::vec`], [`option::of`], [`strategy::Just`], `prop_oneof!`
//!   (including weighted arms), `.prop_map`, and simple `"[a-z]{1,12}"`
//!   string patterns;
//! * the `proptest!` test macro plus `prop_assert!`/`prop_assert_eq!`.
//!
//! Semantics: each test runs a fixed number of random cases (default 64,
//! `PROPTEST_CASES` overrides) from a deterministic per-test seed, and a
//! failing case panics with the assertion message. There is **no shrinking**
//! and no persistence of failing seeds — a deliberate simplification; the
//! deterministic seed keeps failures reproducible across runs.

#![forbid(unsafe_code)]

/// Deterministic case generation: the RNG and per-run case count.
pub mod test_runner {
    /// Error type carried out of a failing property body.
    pub type TestCaseError = String;

    /// Per-block configuration accepted by `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: cases() }
        }
    }

    /// Number of cases per property (env `PROPTEST_CASES` overrides).
    pub fn cases() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// SplitMix64 — small, fast, and plenty for input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed deterministically from a test's full path.
        pub fn for_test(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening multiply; bias is immaterial for test-input generation.
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase for storage in heterogeneous collections.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The `.prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted choice between strategies (the `prop_oneof!` backend).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms; weights must not all be zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Union<V> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof needs a positive total weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.sample(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed correctly");
        }
    }

    /// Integer types that ranges can sample.
    pub trait RangeValue: Copy {
        /// Order-preserving map into `u64` offsets from the type minimum.
        fn span_and_pick(lo: Self, hi_exclusive_offset: u64, rng: &mut TestRng) -> Self;
        /// Distance `hi - lo` as u64 (caller guarantees `lo <= hi`).
        fn distance(lo: Self, hi: Self) -> u64;
    }

    macro_rules! impl_range_value {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn span_and_pick(lo: Self, span: u64, rng: &mut TestRng) -> Self {
                    (lo as i128 + rng.below(span) as i128) as $t
                }
                fn distance(lo: Self, hi: Self) -> u64 {
                    (hi as i128 - lo as i128) as u64
                }
            }
        )*};
    }

    impl_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: RangeValue + PartialOrd> Strategy for core::ops::Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::span_and_pick(self.start, T::distance(self.start, self.end), rng)
        }
    }

    impl<T: RangeValue + PartialOrd> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            T::span_and_pick(lo, T::distance(lo, hi).saturating_add(1), rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$v:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / a);
    impl_tuple_strategy!(A / a, B / b);
    impl_tuple_strategy!(A / a, B / b, C / c);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g);
    impl_tuple_strategy!(A / a, B / b, C / c, D / d, E / e, F / f, G / g, H / h);
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i
    );
    impl_tuple_strategy!(
        A / a,
        B / b,
        C / c,
        D / d,
        E / e,
        F / f,
        G / g,
        H / h,
        I / i,
        J / j
    );
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for i128 {
        fn arbitrary(rng: &mut TestRng) -> i128 {
            u128::arbitrary(rng) as i128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy produced by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A length distribution for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, 0..64)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Option strategies (`of`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>` (¾ `Some`, matching proptest's default).
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// String generation from simple regex-like patterns.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// `&str` patterns act as string strategies, e.g. `"[a-z]{1,12}"`.
    ///
    /// Supported subset: literal characters, one-level character classes
    /// (`[a-z0-9_]`), and `{m}` / `{m,n}` repetition suffixes. Anything else
    /// panics loudly rather than silently generating the wrong language.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == ']')
                        .unwrap_or_else(|| panic!("unclosed class in pattern {pattern:?}"))
                        + i;
                    let mut set = Vec::new();
                    let mut j = i + 1;
                    while j < close {
                        if j + 2 < close && chars[j + 1] == '-' {
                            let (a, b) = (chars[j], chars[j + 2]);
                            assert!(a <= b, "reversed class range in {pattern:?}");
                            for c in a..=b {
                                set.push(c);
                            }
                            j += 3;
                        } else {
                            set.push(chars[j]);
                            j += 1;
                        }
                    }
                    assert!(!set.is_empty(), "empty class in {pattern:?}");
                    i = close + 1;
                    set
                }
                '\\' | '(' | ')' | '|' | '.' | '^' | '$' => {
                    panic!("unsupported pattern syntax {:?} in {pattern:?}", chars[i])
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed repeat in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("repeat lower bound"),
                        n.trim().parse::<usize>().expect("repeat upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("repeat count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "reversed repeat bounds in {pattern:?}");
            let n = lo + rng.below((hi - lo) as u64 + 1) as usize;
            for _ in 0..n {
                out.push(alphabet[rng.below(alphabet.len() as u64) as usize]);
            }
        }
        out
    }
}

/// The glob import every property-test file starts with.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}` ({} != {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` == `{:?}` ({} == {})",
            l,
            r,
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Weighted or uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Define property tests: each `fn` runs its body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name ($($arg in $strat),+) $body)*
        }
    };
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident ($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.cases;
                for case in 0..cases {
                    let values = ($($crate::strategy::Strategy::sample(&($strat), &mut rng),)+);
                    let run = move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ($($arg,)+) = values;
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(e) = run() {
                        panic!(
                            "proptest '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_any_stay_in_bounds() {
        let mut rng = TestRng::for_test("bounds");
        for _ in 0..1000 {
            let v = (3u8..7).sample(&mut rng);
            assert!((3..7).contains(&v));
            let w = (10u64..=12).sample(&mut rng);
            assert!((10..=12).contains(&w));
            let a: [u8; 6] = any::<[u8; 6]>().sample(&mut rng);
            assert_eq!(a.len(), 6);
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = TestRng::for_test("vec");
        for _ in 0..500 {
            let v = crate::collection::vec(any::<u8>(), 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_matches_language() {
        let mut rng = TestRng::for_test("string");
        for _ in 0..500 {
            let s = "[a-z]{1,12}".sample(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn oneof_weighted_hits_all_arms() {
        let mut rng = TestRng::for_test("oneof");
        let strat = prop_oneof![
            4 => Just(0u8),
            1 => Just(1u8),
        ];
        let mut counts = [0u32; 2];
        for _ in 0..2000 {
            counts[strat.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[1] * 2, "weights ignored: {counts:?}");
        assert!(counts[1] > 0, "light arm never chosen");
    }

    #[test]
    fn option_of_yields_both_variants() {
        let mut rng = TestRng::for_test("option");
        let strat = crate::option::of(Just(7u8));
        let vals: Vec<_> = (0..200).map(|_| strat.sample(&mut rng)).collect();
        assert!(vals.iter().any(|v| v.is_none()));
        assert!(vals.iter().any(|v| v == &Some(7)));
    }

    // The macro itself, end to end (including `mut` patterns and tuples).
    proptest! {
        #[test]
        fn macro_roundtrip(mut x in 0u32..100, (a, b) in (any::<bool>(), 1u8..=3)) {
            x += 1;
            prop_assert!((1..=100).contains(&x));
            prop_assert!((1..=3).contains(&b), "b out of range: {} (a={})", b, a);
            prop_assert_eq!(x - 1, x - 1);
            prop_assert_ne!(x, x + 1);
        }
    }
}
