//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel`: multi-producer multi-consumer channels,
//! unbounded or bounded (bounded `send` blocks — that is the backpressure
//! the southbound transport relies on), with `try_`/`_timeout` variants and
//! disconnection semantics matching the real crate: a channel is
//! disconnected when all peers on the other side are gone.
//!
//! Implementation: one `Mutex<VecDeque>` + two `Condvar`s per channel. Not
//! lock-free — correctness and API fidelity over raw throughput, which is
//! ample for control-channel message rates.

#![forbid(unsafe_code)]

/// MPMC channels in the style of `crossbeam-channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when the queue gains an item or all senders leave.
        not_empty: Condvar,
        /// Signalled when the queue loses an item or all receivers leave.
        not_full: Condvar,
    }

    /// The sending half (cloneable).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half (cloneable).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receivers are gone; the value comes back.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` failed.
    #[derive(PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded channel at capacity.
        Full(T),
        /// The receivers are gone.
        Disconnected(T),
    }

    /// Why a timed send failed.
    #[derive(PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// Still full when the deadline passed.
        Timeout(T),
        /// The receivers are gone.
        Disconnected(T),
    }

    /// The senders are gone and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue momentarily empty.
        Empty,
        /// Senders gone and queue drained.
        Disconnected,
    }

    /// Why a timed receive returned nothing.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived before the deadline.
        Timeout,
        /// Senders gone and queue drained.
        Disconnected,
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Debug for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => f.write_str("Full(..)"),
                TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    impl<T> fmt::Debug for SendTimeoutError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                SendTimeoutError::Timeout(_) => f.write_str("Timeout(..)"),
                SendTimeoutError::Disconnected(_) => f.write_str("Disconnected(..)"),
            }
        }
    }

    /// A channel with no capacity bound: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// A channel holding at most `cap` queued items: `send` blocks when full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock();
            s.senders -= 1;
            if s.senders == 0 {
                drop(s);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut s = self.shared.lock();
            s.receivers -= 1;
            if s.receivers == 0 {
                drop(s);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T> Sender<T> {
        /// Queue `value`, blocking while a bounded channel is full.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match self.send_deadline(value, None) {
                Ok(()) => Ok(()),
                Err(SendTimeoutError::Disconnected(v)) => Err(SendError(v)),
                Err(SendTimeoutError::Timeout(_)) => unreachable!("no deadline"),
            }
        }

        /// Queue `value` unless full/disconnected right now.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut s = self.shared.lock();
            if s.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if s.cap.is_some_and(|c| s.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            s.queue.push_back(value);
            drop(s);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Queue `value`, giving up after `timeout` if still full.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            self.send_deadline(value, Some(Instant::now() + timeout))
        }

        fn send_deadline(
            &self,
            value: T,
            deadline: Option<Instant>,
        ) -> Result<(), SendTimeoutError<T>> {
            let mut s = self.shared.lock();
            loop {
                if s.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if s.cap.is_none_or(|c| s.queue.len() < c) {
                    s.queue.push_back(value);
                    drop(s);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                s = match deadline {
                    None => self
                        .shared
                        .not_full
                        .wait(s)
                        .unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(SendTimeoutError::Timeout(value));
                        }
                        self.shared
                            .not_full
                            .wait_timeout(s, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                };
            }
        }

        /// Number of queued items right now.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is momentarily empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Take the next item, blocking until one arrives or senders vanish.
        pub fn recv(&self) -> Result<T, RecvError> {
            match self.recv_deadline(None) {
                Ok(v) => Ok(v),
                Err(RecvTimeoutError::Disconnected) => Err(RecvError),
                Err(RecvTimeoutError::Timeout) => unreachable!("no deadline"),
            }
        }

        /// Take the next item if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut s = self.shared.lock();
            match s.queue.pop_front() {
                Some(v) => {
                    drop(s);
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if s.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Take the next item, giving up after `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Some(Instant::now() + timeout))
        }

        fn recv_deadline(&self, deadline: Option<Instant>) -> Result<T, RecvTimeoutError> {
            let mut s = self.shared.lock();
            loop {
                if let Some(v) = s.queue.pop_front() {
                    drop(s);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if s.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                s = match deadline {
                    None => self
                        .shared
                        .not_empty
                        .wait(s)
                        .unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        self.shared
                            .not_empty
                            .wait_timeout(s, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0
                    }
                };
            }
        }

        /// Number of queued items right now.
        pub fn len(&self) -> usize {
            self.shared.lock().queue.len()
        }

        /// Whether the queue is momentarily empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo_across_threads() {
        let (tx, rx) = unbounded();
        let h = thread::spawn(move || {
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..1000).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, (0..1000).collect::<Vec<_>>());
        h.join().unwrap();
    }

    #[test]
    fn bounded_send_blocks_until_drained() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        let h = thread::spawn(move || tx.send(3));
        thread::sleep(Duration::from_millis(30));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn disconnect_propagates_both_ways() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));

        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn drained_before_disconnected() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn timeouts_fire() {
        let (tx, rx) = bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(1).unwrap();
        assert!(matches!(
            tx.send_timeout(2, Duration::from_millis(20)),
            Err(SendTimeoutError::Timeout(2))
        ));
    }

    #[test]
    fn mpmc_all_items_arrive_once() {
        let (tx, rx) = bounded(4);
        let mut handles = Vec::new();
        for t in 0..4 {
            let tx = tx.clone();
            handles.push(thread::spawn(move || {
                for i in 0..100 {
                    tx.send(t * 100 + i).unwrap();
                }
            }));
        }
        drop(tx);
        let mut readers = Vec::new();
        for _ in 0..2 {
            let rx = rx.clone();
            readers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        let mut all: Vec<i32> = readers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        all.sort_unstable();
        assert_eq!(all, (0..400).collect::<Vec<_>>());
    }
}
