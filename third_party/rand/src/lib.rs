//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the small slice of the `rand 0.8` API it actually consumes: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait with
//! integer `gen_range` and `gen::<f64>()`, and the raw [`RngCore`] bit source.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction `rand`'s `SmallRng` family uses — which comfortably passes the
//! statistical smoke tests in `sav-sim` (exponential means, bounded-Pareto
//! tails, shuffle uniformity). It is explicitly **not** cryptographic, exactly
//! like the simulation streams it feeds.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of raw random bits.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (matching `rand`'s
    /// documented behaviour of `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to `u128` relative to the type's minimum (order-preserving).
    fn to_offset(self) -> u128;
    /// Inverse of [`UniformInt::to_offset`]; the value fits by construction.
    fn from_offset(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_offset(self) -> u128 {
                (self as i128).wrapping_sub(<$t>::MIN as i128) as u128
            }
            fn from_offset(v: u128) -> Self {
                ((v as i128).wrapping_add(<$t>::MIN as i128)) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range. Panics on an empty range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

fn uniform_below(rng: &mut impl RngCore, span: u128) -> u128 {
    debug_assert!(span > 0);
    // Widening-multiply rejection sampling (Lemire): unbiased and branch-light.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let x = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if x <= zone {
            return x % span;
        }
    }
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = (self.start.to_offset(), self.end.to_offset());
        assert!(lo < hi, "cannot sample empty range");
        T::from_offset(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = (self.start().to_offset(), self.end().to_offset());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi - lo + 1;
        if span == 0 {
            // Full-width inclusive range of a 128-bit type cannot occur here
            // (u128 is not UniformInt); guard anyway.
            return T::from_offset(((rng.next_u64() as u128) << 64) | rng.next_u64() as u128);
        }
        T::from_offset(lo + uniform_below(rng, span))
    }
}

/// Output types of [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a sample.
    fn sample(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut impl RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut impl RngCore) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample(rng: &mut impl RngCore) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// The user-facing extension trait.
pub trait Rng: RngCore {
    /// Uniform sample from an integer range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Sample a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Offline stand-in for `rand::rngs::StdRng`: xoshiro256**.
    ///
    /// Deterministic for a given seed (which is all the workspace relies on —
    /// it never assumes cross-version stream stability of the real `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> StdRng {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 0x6a09e667f3bcc909, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_support() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_interval_mean_is_half() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn fill_bytes_fills_every_length() {
        let mut r = StdRng::seed_from_u64(4);
        for len in 0..40 {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            if len >= 16 {
                assert!(buf.iter().any(|&b| b != 0), "all-zero fill at len {len}");
            }
        }
    }
}
