//! The deterministic event queue.
//!
//! A binary heap keyed on `(time, sequence)` where `sequence` is a
//! monotonically increasing insertion counter. Two events scheduled for the
//! same instant therefore pop in the order they were pushed, which is the
//! property that makes whole-simulation runs reproducible.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue with stable FIFO ordering among events
/// scheduled for the same instant.
///
/// The queue also tracks the current virtual time: popping an event advances
/// [`EventQueue::now`] to that event's timestamp. Pushing an event in the
/// past (before `now`) is clamped to `now` — late scheduling is a modelling
/// bug, but clamping keeps long experiment runs alive and monotonic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    now: SimTime,
    clamped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            clamped: 0,
        }
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// How many pushes were clamped because they targeted the past.
    pub fn clamped_pushes(&self) -> u64 {
        self.clamped
    }

    /// Schedule `event` at absolute time `at`. Times in the past are clamped
    /// to the current instant (counted in [`EventQueue::clamped_pushes`]).
    pub fn push(&mut self, at: SimTime, event: E) {
        let at = if at < self.now {
            self.clamped += 1;
            self.now
        } else {
            at
        };
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Remove and return the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "event queue time went backwards");
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Drop all pending events (the clock is left where it is).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), 3u32);
        q.push(SimTime::from_millis(1), 1u32);
        q.push(SimTime::from_millis(2), 2u32);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::from_secs(1), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_millis(7));
    }

    #[test]
    fn past_pushes_are_clamped() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1), "a");
        q.pop();
        q.push(SimTime::ZERO, "late");
        assert_eq!(q.clamped_pushes(), 1);
        let (t, e) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        assert_eq!(e, "late");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn interleaved_push_pop_stays_sorted() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 10u64);
        q.push(SimTime::from_millis(30), 30u64);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t, e), (SimTime::from_millis(10), 10));
        // Schedule between now and the remaining event.
        q.push(q.now() + SimDuration::from_millis(10), 20u64);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
        assert!(q.is_empty());
    }
}
