//! Seeded randomness for workloads.
//!
//! All stochastic behaviour in the workspace flows through [`SimRng`] so a
//! single `u64` seed pins an entire experiment. The wrapper also provides the
//! small set of distributions the traffic generators need without pulling in
//! `rand_distr`: exponential inter-arrivals, bounded Pareto flow sizes, and
//! uniform picks.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic pseudo-random source derived from a `u64` seed.
///
/// Child generators ([`SimRng::fork`]) are derived by label so that adding a
/// new consumer of randomness does not perturb the streams existing
/// consumers observe — the standard trick for keeping large simulations
/// comparable across code changes.
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child generator from this generator's seed and a
    /// label. Forking is a pure function of `(seed, label)` — it does not
    /// consume randomness from `self`.
    pub fn fork(&self, label: &str) -> SimRng {
        // FNV-1a over the label, mixed with the parent seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ self.seed.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        SimRng::new(h)
    }

    /// Uniform `u64` in `[0, bound)`. `bound == 0` yields 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// Uniform `usize` in `[0, bound)`. `bound == 0` yields 0.
    pub fn index(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen::<f64>() < p
        }
    }

    /// Uniformly pick an element of `items`, or `None` if empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            let i = self.index(items.len());
            Some(&items[i])
        }
    }

    /// Fisher–Yates shuffle in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Exponentially distributed duration with the given mean — the standard
    /// model for Poisson-process inter-arrival gaps.
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        // Inverse-CDF sampling; keep u away from 0 to bound -ln(u).
        let u = self.unit().max(1e-12);
        SimDuration::from_secs_f64(-u.ln() * mean.as_secs_f64())
    }

    /// Bounded Pareto sample in `[lo, hi]` with shape `alpha` — the classic
    /// heavy-tailed flow-size model.
    pub fn bounded_pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        assert!(lo > 0.0 && hi > lo && alpha > 0.0, "bad Pareto parameters");
        let u = self.unit().min(1.0 - 1e-12);
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        // Inverse CDF of the bounded Pareto distribution.
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha);
        x.clamp(lo, hi)
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.rng.gen_range(lo..=hi)
        }
    }

    /// Raw 64 random bits (for e.g. transaction IDs).
    pub fn bits64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Raw 32 random bits.
    pub fn bits32(&mut self) -> u32 {
        self.rng.next_u32()
    }
}

impl core::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "SimRng(seed={})", self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.bits64(), b.bits64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..8).map(|_| a.bits64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.bits64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_stable_and_independent() {
        let root = SimRng::new(7);
        let mut c1 = root.fork("traffic");
        let mut c2 = root.fork("traffic");
        let mut c3 = root.fork("attack");
        assert_eq!(c1.bits64(), c2.bits64());
        // Forking consumed nothing from the root.
        let mut root2 = SimRng::new(7);
        let mut root_m = root;
        assert_eq!(root_m.bits64(), root2.bits64());
        // Differently-labelled forks diverge.
        let mut c1b = SimRng::new(7).fork("traffic");
        assert_ne!(c1b.bits64(), c3.bits64());
    }

    #[test]
    fn exp_duration_mean_is_plausible() {
        let mut r = SimRng::new(3);
        let mean = SimDuration::from_millis(10);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp_duration(mean).as_secs_f64()).sum();
        let observed = total / n as f64;
        assert!((observed - 0.010).abs() < 0.0005, "mean {observed}");
    }

    #[test]
    fn exp_duration_zero_mean() {
        let mut r = SimRng::new(3);
        assert_eq!(r.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn bounded_pareto_stays_in_range() {
        let mut r = SimRng::new(11);
        for _ in 0..10_000 {
            let x = r.bounded_pareto(100.0, 1_000_000.0, 1.2);
            assert!((100.0..=1_000_000.0).contains(&x));
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed() {
        let mut r = SimRng::new(12);
        let samples: Vec<f64> = (0..50_000)
            .map(|_| r.bounded_pareto(1.0, 1e6, 1.1))
            .collect();
        let small = samples.iter().filter(|&&x| x < 10.0).count() as f64;
        // For alpha=1.1 the mass below 10x the minimum dominates.
        assert!(small / samples.len() as f64 > 0.8);
        assert!(samples.iter().any(|&x| x > 1_000.0), "no tail observed");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn pick_and_shuffle() {
        let mut r = SimRng::new(9);
        let empty: [u8; 0] = [];
        assert_eq!(r.pick(&empty), None);
        let items = [1, 2, 3];
        assert!(items.contains(r.pick(&items).unwrap()));

        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle must be a permutation");
        assert_ne!(v, orig, "50 elements should not shuffle to identity");
    }

    #[test]
    fn below_and_index_handle_zero() {
        let mut r = SimRng::new(1);
        assert_eq!(r.below(0), 0);
        assert_eq!(r.index(0), 0);
        for _ in 0..100 {
            assert!(r.below(5) < 5);
            assert!(r.index(3) < 3);
        }
    }

    #[test]
    fn range_inclusive_degenerate() {
        let mut r = SimRng::new(1);
        assert_eq!(r.range_inclusive(7, 7), 7);
        assert_eq!(r.range_inclusive(9, 3), 9);
        for _ in 0..100 {
            let x = r.range_inclusive(10, 12);
            assert!((10..=12).contains(&x));
        }
    }
}
