//! # sav-sim — deterministic discrete-event simulation engine
//!
//! The foundation every other `sdn-sav` crate runs on. The design follows the
//! *sans-IO* idiom: protocol logic elsewhere in the workspace is written as
//! pure state machines, and this crate supplies the two ambient facilities a
//! simulation needs:
//!
//! * **Virtual time** — [`SimTime`] / [`SimDuration`], nanosecond-resolution
//!   monotonic timestamps that only advance when the event loop says so.
//! * **An event queue** — [`EventQueue`], a priority queue with stable FIFO
//!   ordering for simultaneous events, so runs are bit-for-bit reproducible.
//!
//! On top of those, [`Runner`] drives a user-provided [`Simulation`] to
//! completion, and [`SimRng`] wraps a seeded PRNG with the distributions the
//! workload generators need (exponential, Pareto, uniform picks).
//!
//! ## Determinism contract
//!
//! Given the same seed and the same initial event set, every run of a
//! simulation built on this crate produces the same trajectory. The two
//! ingredients are (a) the stable tie-break in [`EventQueue`] (insertion
//! order among equal timestamps) and (b) all randomness flowing through
//! [`SimRng`]. Nothing in this crate reads wall-clock time.
//!
//! ```
//! use sav_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.push(SimTime::ZERO, "first");
//! q.push(SimTime::ZERO, "second");
//! assert_eq!(q.pop().unwrap().1, "first");
//! assert_eq!(q.pop().unwrap().1, "second");
//! assert_eq!(q.pop().unwrap().1, "later");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod queue;
pub mod rng;
pub mod runner;
pub mod time;

pub use queue::EventQueue;
pub use rng::SimRng;
pub use runner::{RunOutcome, Runner, RunnerConfig, Scheduler, Simulation};
pub use time::{SimDuration, SimTime};
