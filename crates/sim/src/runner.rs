//! The event loop: [`Runner`] drives a [`Simulation`] until it goes quiet,
//! hits the configured horizon, or exceeds the event budget.
//!
//! A `Simulation` is any state machine that consumes timestamped events and
//! may schedule more through the [`Scheduler`] handle it is given. Keeping
//! the loop generic over the event type lets each layer of the workspace
//! (dataplane tests, controller tests, full testbeds) define its own event
//! vocabulary while sharing one deterministic loop.

use crate::queue::EventQueue;
use crate::time::SimTime;

/// Handle through which a [`Simulation`] schedules future events.
///
/// Wraps the event queue so the simulation cannot pop events or rewind time —
/// it can only observe `now` and push.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Schedule `event` at absolute time `at` (clamped to `now` if in the past).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// A discrete-event state machine.
pub trait Simulation {
    /// The event vocabulary of this simulation.
    type Event;

    /// Handle one event. `sched` schedules follow-up events.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Called once after the loop ends (horizon reached, queue drained, or
    /// budget exhausted). Default: nothing.
    fn finish(&mut self, _now: SimTime) {}
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained before the horizon.
    Quiescent,
    /// The horizon was reached with events still pending.
    HorizonReached,
    /// The event budget was exhausted (almost always a livelock bug).
    BudgetExhausted,
}

/// Loop limits.
#[derive(Debug, Clone, Copy)]
pub struct RunnerConfig {
    /// Events with timestamps strictly beyond this instant are not processed.
    pub horizon: SimTime,
    /// Hard cap on processed events; guards against livelock.
    pub max_events: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            horizon: SimTime::MAX,
            max_events: u64::MAX,
        }
    }
}

impl RunnerConfig {
    /// Run until `horizon` with an unbounded event budget.
    pub fn until(horizon: SimTime) -> Self {
        RunnerConfig {
            horizon,
            ..Default::default()
        }
    }
}

/// Statistics from a completed run.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Why the loop stopped.
    pub outcome: RunOutcome,
    /// Events processed.
    pub events: u64,
    /// Virtual time when the loop stopped.
    pub end_time: SimTime,
}

/// Owns the event queue and drives a [`Simulation`].
pub struct Runner<E> {
    queue: EventQueue<E>,
    config: RunnerConfig,
}

impl<E> Runner<E> {
    /// Create a runner with the given limits.
    pub fn new(config: RunnerConfig) -> Self {
        Runner {
            queue: EventQueue::new(),
            config,
        }
    }

    /// Seed the queue before the run starts.
    pub fn prime(&mut self, at: SimTime, event: E) {
        self.queue.push(at, event);
    }

    /// Current virtual time of the underlying queue.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Drive `sim` until quiescence, the horizon, or the event budget.
    pub fn run<S: Simulation<Event = E>>(&mut self, sim: &mut S) -> RunStats {
        let mut events = 0u64;
        let outcome = loop {
            match self.queue.peek_time() {
                None => break RunOutcome::Quiescent,
                Some(t) if t > self.config.horizon => break RunOutcome::HorizonReached,
                Some(_) => {}
            }
            if events >= self.config.max_events {
                break RunOutcome::BudgetExhausted;
            }
            let (now, event) = self.queue.pop().expect("peeked event vanished");
            let mut sched = Scheduler {
                queue: &mut self.queue,
            };
            sim.handle(now, event, &mut sched);
            events += 1;
        };
        let end_time = match outcome {
            RunOutcome::HorizonReached => self.config.horizon,
            _ => self.queue.now(),
        };
        sim.finish(end_time);
        RunStats {
            outcome,
            events,
            end_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// Counts ticks, rescheduling itself `remaining` times.
    struct Ticker {
        remaining: u32,
        period: SimDuration,
        seen: Vec<SimTime>,
        finished_at: Option<SimTime>,
    }

    impl Simulation for Ticker {
        type Event = ();
        fn handle(&mut self, now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) {
            self.seen.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.schedule(now + self.period, ());
            }
        }
        fn finish(&mut self, now: SimTime) {
            self.finished_at = Some(now);
        }
    }

    #[test]
    fn runs_to_quiescence() {
        let mut runner = Runner::new(RunnerConfig::default());
        runner.prime(SimTime::ZERO, ());
        let mut sim = Ticker {
            remaining: 5,
            period: SimDuration::from_millis(10),
            seen: vec![],
            finished_at: None,
        };
        let stats = runner.run(&mut sim);
        assert_eq!(stats.outcome, RunOutcome::Quiescent);
        assert_eq!(stats.events, 6);
        assert_eq!(sim.seen.len(), 6);
        assert_eq!(*sim.seen.last().unwrap(), SimTime::from_millis(50));
        assert_eq!(sim.finished_at, Some(SimTime::from_millis(50)));
    }

    #[test]
    fn horizon_stops_the_loop() {
        let mut runner = Runner::new(RunnerConfig::until(SimTime::from_millis(25)));
        runner.prime(SimTime::ZERO, ());
        let mut sim = Ticker {
            remaining: 1_000,
            period: SimDuration::from_millis(10),
            seen: vec![],
            finished_at: None,
        };
        let stats = runner.run(&mut sim);
        assert_eq!(stats.outcome, RunOutcome::HorizonReached);
        // Events at 0, 10, 20 fire; 30 is beyond the horizon.
        assert_eq!(sim.seen.len(), 3);
        assert_eq!(stats.end_time, SimTime::from_millis(25));
        assert_eq!(sim.finished_at, Some(SimTime::from_millis(25)));
    }

    #[test]
    fn budget_guards_livelock() {
        struct Livelock;
        impl Simulation for Livelock {
            type Event = ();
            fn handle(&mut self, now: SimTime, _e: (), sched: &mut Scheduler<'_, ()>) {
                sched.schedule(now, ()); // zero-delay self-feeding loop
            }
        }
        let mut runner = Runner::new(RunnerConfig {
            horizon: SimTime::MAX,
            max_events: 1_000,
        });
        runner.prime(SimTime::ZERO, ());
        let stats = runner.run(&mut Livelock);
        assert_eq!(stats.outcome, RunOutcome::BudgetExhausted);
        assert_eq!(stats.events, 1_000);
    }

    #[test]
    fn events_exactly_at_horizon_fire() {
        let mut runner = Runner::new(RunnerConfig::until(SimTime::from_millis(10)));
        runner.prime(SimTime::from_millis(10), ());
        let mut sim = Ticker {
            remaining: 0,
            period: SimDuration::ZERO,
            seen: vec![],
            finished_at: None,
        };
        let stats = runner.run(&mut sim);
        assert_eq!(sim.seen.len(), 1);
        assert_eq!(stats.outcome, RunOutcome::Quiescent);
    }

    #[test]
    fn scheduler_exposes_now_and_pending() {
        struct Probe {
            observed_pending: Option<usize>,
        }
        impl Simulation for Probe {
            type Event = u8;
            fn handle(&mut self, now: SimTime, e: u8, sched: &mut Scheduler<'_, u8>) {
                if e == 0 {
                    assert_eq!(sched.now(), now);
                    sched.schedule(now + SimDuration::from_secs(1), 1);
                    sched.schedule(now + SimDuration::from_secs(2), 2);
                    self.observed_pending = Some(sched.pending());
                }
            }
        }
        let mut runner = Runner::new(RunnerConfig::default());
        runner.prime(SimTime::ZERO, 0);
        let mut sim = Probe {
            observed_pending: None,
        };
        runner.run(&mut sim);
        assert_eq!(sim.observed_pending, Some(2));
    }
}
