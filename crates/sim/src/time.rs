//! Virtual time: [`SimTime`] instants and [`SimDuration`] spans.
//!
//! Both are thin wrappers over a `u64` nanosecond count. `SimTime` is an
//! absolute instant since the start of the simulation; `SimDuration` is a
//! span. Arithmetic saturates rather than panicking so that misconfigured
//! scenarios degrade gracefully instead of aborting a long experiment run.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant in virtual time, counted in nanoseconds from the
/// beginning of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The beginning of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds; negative or non-finite values
    /// clamp to [`SimTime::ZERO`], values beyond `u64::MAX` nanoseconds
    /// clamp to [`SimTime::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimTime::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(ns as u64)
        }
    }

    /// The raw nanosecond count since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference: `None` if `earlier > self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from a raw nanosecond count.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds; negative or non-finite values clamp
    /// to zero, values beyond `u64::MAX` nanoseconds clamp to [`SimDuration::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// The raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span expressed in (possibly fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span expressed in (possibly fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span expressed in (possibly fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// True if this is the zero-length span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.saturating_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

fn fmt_nanos(ns: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ns >= 1_000_000_000 {
        write!(f, "{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        write!(f, "{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        write!(f, "{:.3}us", ns as f64 / 1e3)
    } else {
        write!(f, "{ns}ns")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+")?;
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_nanos(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2_000), SimTime::from_secs(2));
        assert_eq!(SimTime::from_micros(2_000_000), SimTime::from_secs(2));
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_behaviour() {
        assert_eq!(SimTime::ZERO - SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(SimTime::MAX + SimDuration::from_secs(1), SimTime::MAX);
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::ZERO.checked_since(SimTime::from_secs(1)), None);
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
        let d = SimDuration::from_millis(1500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    fn division_never_panics() {
        assert_eq!(SimDuration::from_secs(1) / 0, SimDuration::from_secs(1));
        assert_eq!(SimDuration::from_secs(1) / 4, SimDuration::from_millis(250));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(5)), "5ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
        assert_eq!(format!("{}", SimTime::from_millis(1)), "t+1.000ms");
    }
}
