//! Property-based tests for the event queue: time-monotone pops with
//! stable FIFO tie-breaking — the determinism bedrock of the simulator.

use proptest::prelude::*;
use sav_sim::{EventQueue, SimTime};

proptest! {
    /// Pops are sorted by time, and equal timestamps pop in push order.
    #[test]
    fn pops_are_monotone_and_stable(times in proptest::collection::vec(0u64..50, 1..100)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(SimTime::from_millis(*t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(t >= lt, "time went backwards");
                if t == lt {
                    prop_assert!(idx > lidx, "FIFO violated at equal times");
                }
            }
            last = Some((t, idx));
        }
        prop_assert!(q.is_empty());
    }

    /// Interleaved push/pop never rewinds the clock; late pushes clamp.
    #[test]
    fn clock_is_monotone_under_interleaving(
        script in proptest::collection::vec((any::<bool>(), 0u64..100), 1..200),
    ) {
        let mut q = EventQueue::new();
        let mut last_now = SimTime::ZERO;
        for (push, t) in script {
            if push {
                q.push(SimTime::from_millis(t), ());
            } else if let Some((now, ())) = q.pop() {
                prop_assert!(now >= last_now);
                last_now = now;
            }
            prop_assert!(q.now() >= last_now);
        }
        // Drain: still monotone.
        while let Some((now, ())) = q.pop() {
            prop_assert!(now >= last_now);
            last_now = now;
        }
    }

    /// Same seed → identical RNG streams; distinct labels → independent.
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), label in "[a-z]{1,10}") {
        let a = sav_sim::SimRng::new(seed);
        let mut f1 = a.fork(&label);
        let mut f2 = sav_sim::SimRng::new(seed).fork(&label);
        for _ in 0..16 {
            prop_assert_eq!(f1.bits64(), f2.bits64());
        }
    }
}
