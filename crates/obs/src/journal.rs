//! The event journal: a bounded ring buffer of typed events.
//!
//! Writers pay one short mutex hold and (optionally) one line to an
//! attached JSONL sink; readers copy tails out. When the ring is full the
//! oldest events fall off — `dropped()` says how many, so a post-mortem
//! knows whether its window is complete.

use crate::event::{Event, EventKind, Severity};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const DEFAULT_CAPACITY: usize = 4096;

struct Inner {
    buf: VecDeque<Event>,
    cap: usize,
    next_seq: u64,
    dropped: u64,
    min_severity: Severity,
    sink: Option<Box<dyn Write + Send>>,
    sink_errors: u64,
}

/// Shareable journal handle; clones share the ring.
#[derive(Clone)]
pub struct Journal {
    inner: Arc<Mutex<Inner>>,
    epoch: Instant,
}

impl Default for Journal {
    fn default() -> Self {
        Journal::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Journal {
    /// A journal keeping at most the latest `cap` events.
    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            inner: Arc::new(Mutex::new(Inner {
                buf: VecDeque::with_capacity(cap.min(1024)),
                cap: cap.max(1),
                next_seq: 0,
                dropped: 0,
                min_severity: Severity::Debug,
                sink: None,
                sink_errors: 0,
            })),
            epoch: Instant::now(),
        }
    }

    /// Drop events below `min` instead of recording them.
    pub fn set_min_severity(&self, min: Severity) {
        self.inner.lock().expect("journal poisoned").min_severity = min;
    }

    /// Attach a JSONL sink: every recorded event is also written as one
    /// JSON line (e.g. a `File` for post-mortems). Write failures are
    /// counted, never propagated to the hot path.
    pub fn attach_sink(&self, sink: Box<dyn Write + Send>) {
        self.inner.lock().expect("journal poisoned").sink = Some(sink);
    }

    /// Record one event; returns its sequence number (or `None` when
    /// filtered by severity).
    pub fn record(&self, severity: Severity, kind: EventKind) -> Option<u64> {
        let t_nanos = self.epoch.elapsed().as_nanos() as u64;
        let mut g = self.inner.lock().expect("journal poisoned");
        if severity < g.min_severity {
            return None;
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        let ev = Event {
            seq,
            t_nanos,
            severity,
            kind,
        };
        if let Some(sink) = g.sink.as_mut() {
            let line = ev.to_json();
            if writeln!(sink, "{line}").is_err() {
                g.sink_errors += 1;
            }
        }
        if g.buf.len() == g.cap {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(ev);
        Some(seq)
    }

    /// The newest `n` events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let g = self.inner.lock().expect("journal poisoned");
        let skip = g.buf.len().saturating_sub(n);
        g.buf.iter().skip(skip).cloned().collect()
    }

    /// The newest `n` events matching the filters, oldest first:
    /// severity at or above `min_sev` (if set) and kind name equal to
    /// `kind` (if set). Filters apply before the tail limit, so `n`
    /// matching events come back even when noisier events interleave.
    pub fn tail_filtered(
        &self,
        n: usize,
        min_sev: Option<Severity>,
        kind: Option<&str>,
    ) -> Vec<Event> {
        let g = self.inner.lock().expect("journal poisoned");
        let mut picked: Vec<Event> = g
            .buf
            .iter()
            .rev()
            .filter(|e| min_sev.is_none_or(|s| e.severity >= s))
            .filter(|e| kind.is_none_or(|k| e.kind.name() == k))
            .take(n)
            .cloned()
            .collect();
        picked.reverse();
        picked
    }

    /// [`tail_filtered`](Journal::tail_filtered) rendered as JSONL.
    pub fn tail_filtered_jsonl(
        &self,
        n: usize,
        min_sev: Option<Severity>,
        kind: Option<&str>,
    ) -> String {
        let mut s = String::new();
        for ev in self.tail_filtered(n, min_sev, kind) {
            s.push_str(&ev.to_json());
            s.push('\n');
        }
        s
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal poisoned").buf.len()
    }

    /// True when nothing has been recorded (or everything fell off).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events that fell off the ring.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").dropped
    }

    /// Sink write failures so far.
    pub fn sink_errors(&self) -> u64 {
        self.inner.lock().expect("journal poisoned").sink_errors
    }

    /// Render the newest `n` events as JSONL (one object per line).
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut out = String::new();
        for ev in self.tail(n) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequences_and_timestamps_are_monotone() {
        let j = Journal::default();
        j.record(Severity::Info, EventKind::SwitchUp { dpid: 1 });
        j.record(Severity::Info, EventKind::SwitchUp { dpid: 2 });
        let evs = j.tail(10);
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].seq, evs[1].seq), (0, 1));
        assert!(evs[0].t_nanos <= evs[1].t_nanos);
    }

    #[test]
    fn ring_drops_oldest() {
        let j = Journal::with_capacity(2);
        for d in 0..5 {
            j.record(Severity::Info, EventKind::SwitchUp { dpid: d });
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        let evs = j.tail(10);
        assert_eq!(evs[0].seq, 3, "oldest surviving event");
        assert_eq!(evs[1].seq, 4);
        // tail(1) returns just the newest.
        assert_eq!(j.tail(1)[0].seq, 4);
    }

    #[test]
    fn severity_filter_suppresses() {
        let j = Journal::default();
        j.set_min_severity(Severity::Warn);
        assert_eq!(
            j.record(Severity::Debug, EventKind::SwitchUp { dpid: 1 }),
            None
        );
        assert!(j
            .record(
                Severity::Error,
                EventKind::WalError {
                    op: "x".to_string()
                }
            )
            .is_some());
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn jsonl_sink_receives_every_event() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let buf = Shared(Arc::new(Mutex::new(Vec::new())));
        let j = Journal::with_capacity(1); // ring overwrites, sink keeps all
        j.attach_sink(Box::new(buf.clone()));
        j.record(Severity::Info, EventKind::SwitchUp { dpid: 1 });
        j.record(Severity::Info, EventKind::SwitchDown { dpid: 1 });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        assert_eq!(j.sink_errors(), 0);
        assert_eq!(j.len(), 1, "ring kept only the newest");
    }
}
