//! Typed journal events and their JSON rendering.
//!
//! Events carry plain scalars (addresses pre-formatted as strings) so this
//! crate stays dependency-free below `sav-metrics`; the producers in
//! `sav-core` / `sav-channel` / `sav-store` format their domain types at
//! the emission site.

use std::fmt::Write as _;

/// How loud an event is. Ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// High-volume diagnostics.
    Debug,
    /// Normal lifecycle events.
    Info,
    /// Something suspicious (spoof drops, conflicts).
    Warn,
    /// Something broke (WAL append failure, dead switch).
    Error,
}

impl Severity {
    /// Lower-case label used in JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Debug => "debug",
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }

    /// Inverse of [`label`](Severity::label) — used to parse the `sev=`
    /// query filter. `None` for anything that isn't a severity.
    pub fn from_label(s: &str) -> Option<Severity> {
        match s {
            "debug" => Some(Severity::Debug),
            "info" => Some(Severity::Info),
            "warn" => Some(Severity::Warn),
            "error" => Some(Severity::Error),
            _ => None,
        }
    }
}

/// What happened. One variant per event class the SAV stack emits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A binding entered the table.
    BindingLearned {
        /// Bound address.
        ip: String,
        /// Bound hardware address.
        mac: String,
        /// Anchoring switch.
        dpid: u64,
        /// Anchoring port.
        port: u32,
        /// `static` / `dhcp` / `fcfs`.
        source: &'static str,
    },
    /// A binding left the table (lease/idle expiry or port death).
    BindingExpired {
        /// Released address.
        ip: String,
        /// Switch it was anchored to.
        dpid: u64,
    },
    /// A binding moved to a new attachment point.
    BindingMigrated {
        /// Moved address.
        ip: String,
        /// Previous switch.
        from_dpid: u64,
        /// Previous port.
        from_port: u32,
        /// New switch.
        dpid: u64,
        /// New port.
        port: u32,
    },
    /// An upsert was refused because another MAC holds the address.
    BindingConflict {
        /// Contested address.
        ip: String,
        /// Switch the challenger appeared on.
        dpid: u64,
        /// Port the challenger appeared on.
        port: u32,
    },
    /// A SAV flow rule was pushed.
    RuleInstalled {
        /// Target switch.
        dpid: u64,
        /// Rule cookie (SAV-tagged).
        cookie: u64,
        /// Rule priority.
        priority: u16,
    },
    /// A SAV flow rule was deleted.
    RuleDeleted {
        /// Target switch.
        dpid: u64,
        /// Rule cookie.
        cookie: u64,
    },
    /// Spoofed packets died (observed via drop-rule or punt verdicts).
    SpoofDrop {
        /// Switch that dropped them.
        dpid: u64,
        /// Ingress port (0 when only switch granularity is known).
        port: u32,
        /// Packets dropped since the previous observation.
        packets: u64,
    },
    /// A switch completed the handshake.
    SwitchUp {
        /// Its datapath id.
        dpid: u64,
    },
    /// A switch's control channel died.
    SwitchDown {
        /// Its datapath id.
        dpid: u64,
    },
    /// A record reached the write-ahead log.
    WalAppend {
        /// WAL size after the append.
        bytes: u64,
    },
    /// The WAL was folded into a snapshot.
    WalCompact {
        /// WAL bytes before compaction.
        before: u64,
        /// WAL bytes after (0 unless appends raced in).
        after: u64,
    },
    /// A WAL append failed (enforcement continues, durability degraded).
    WalError {
        /// The failed operation, for the post-mortem.
        op: String,
    },
    /// A southbound control connection was accepted.
    PeerConnected {
        /// Transport connection id.
        conn: u64,
    },
    /// A southbound control connection closed or was declared dead.
    PeerDisconnected {
        /// Transport connection id.
        conn: u64,
    },
    /// The southbound listener's `accept` failed with a transient error
    /// (fd exhaustion, peer aborting mid-handshake); accepting resumes
    /// after a capped backoff instead of dying.
    AcceptError {
        /// The OS error, for the post-mortem.
        error: String,
    },
    /// A cluster node won the leader election.
    LeaderElected {
        /// The winning node's id.
        node: u64,
        /// The generation it will assert toward switches.
        generation: u64,
    },
    /// A standby finished taking over: WAL replayed, switches mastered,
    /// flow tables reconciled.
    FailoverCompleted {
        /// The node that took over.
        node: u64,
        /// The generation it mastered the switches with.
        generation: u64,
        /// Wall-clock milliseconds from detecting the dead leader to
        /// serving as master.
        takeover_ms: u64,
    },
    /// A switch refused our role request — a newer master has fenced us.
    RoleRejected {
        /// The refusing switch.
        dpid: u64,
        /// The stale generation we presented.
        generation: u64,
    },
    /// A replication link was severed by policy (stream mismatch, outbox
    /// overflow) rather than by the transport; the peer must reconnect
    /// and renegotiate catch-up.
    ClusterLinkDropped {
        /// The peer node id on the dropped link.
        peer: u64,
        /// Why the link was dropped.
        reason: &'static str,
    },
    /// The border guard quarantined an external source for exceeding the
    /// anti-amplification limit.
    AmplificationDeny {
        /// Border switch installing the deny.
        dpid: u64,
        /// Border port the source was seen on (0 if unknown).
        port: u32,
        /// The quarantined source address.
        src: String,
        /// Bytes received from it this epoch.
        rx_bytes: u64,
        /// Bytes sent back toward it this epoch.
        tx_bytes: u64,
        /// Quarantine length, seconds (escalates on re-offense).
        timeout_secs: u64,
    },
    /// A border quarantine timed out at the switch; the source may try
    /// again with a fresh byte budget.
    QuarantineExpired {
        /// Border switch the deny expired on.
        dpid: u64,
        /// The released source address.
        src: String,
    },
    /// An external source completed address validation (sustained
    /// bidirectional exchange) and is now exempt from the limit.
    SourceValidated {
        /// Border switch that validated it.
        dpid: u64,
        /// The validated source address.
        src: String,
    },
    /// An earned validation lapsed after sustained inbound silence; the
    /// source is subject to the amplification limit again.
    ValidationLapsed {
        /// Border switch owning the source's budget.
        dpid: u64,
        /// The demoted source address.
        src: String,
    },
}

impl EventKind {
    /// Stable snake_case name for filtering and JSON.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::BindingLearned { .. } => "binding_learned",
            EventKind::BindingExpired { .. } => "binding_expired",
            EventKind::BindingMigrated { .. } => "binding_migrated",
            EventKind::BindingConflict { .. } => "binding_conflict",
            EventKind::RuleInstalled { .. } => "rule_installed",
            EventKind::RuleDeleted { .. } => "rule_deleted",
            EventKind::SpoofDrop { .. } => "spoof_drop",
            EventKind::SwitchUp { .. } => "switch_up",
            EventKind::SwitchDown { .. } => "switch_down",
            EventKind::WalAppend { .. } => "wal_append",
            EventKind::WalCompact { .. } => "wal_compact",
            EventKind::WalError { .. } => "wal_error",
            EventKind::PeerConnected { .. } => "peer_connected",
            EventKind::PeerDisconnected { .. } => "peer_disconnected",
            EventKind::AcceptError { .. } => "accept_error",
            EventKind::LeaderElected { .. } => "leader_elected",
            EventKind::FailoverCompleted { .. } => "failover_completed",
            EventKind::RoleRejected { .. } => "role_rejected",
            EventKind::ClusterLinkDropped { .. } => "cluster_link_dropped",
            EventKind::AmplificationDeny { .. } => "amplification_deny",
            EventKind::QuarantineExpired { .. } => "quarantine_expired",
            EventKind::SourceValidated { .. } => "source_validated",
            EventKind::ValidationLapsed { .. } => "validation_lapsed",
        }
    }

    /// Append this kind's payload fields as `"k":v` JSON members.
    fn write_json_fields(&self, out: &mut String) {
        let s = |out: &mut String, k: &str, v: &str| {
            let _ = write!(out, ",\"{k}\":\"{}\"", escape_json(v));
        };
        let n = |out: &mut String, k: &str, v: u64| {
            let _ = write!(out, ",\"{k}\":{v}");
        };
        match self {
            EventKind::BindingLearned {
                ip,
                mac,
                dpid,
                port,
                source,
            } => {
                s(out, "ip", ip);
                s(out, "mac", mac);
                n(out, "dpid", *dpid);
                n(out, "port", u64::from(*port));
                s(out, "source", source);
            }
            EventKind::BindingExpired { ip, dpid } => {
                s(out, "ip", ip);
                n(out, "dpid", *dpid);
            }
            EventKind::BindingMigrated {
                ip,
                from_dpid,
                from_port,
                dpid,
                port,
            } => {
                s(out, "ip", ip);
                n(out, "from_dpid", *from_dpid);
                n(out, "from_port", u64::from(*from_port));
                n(out, "dpid", *dpid);
                n(out, "port", u64::from(*port));
            }
            EventKind::BindingConflict { ip, dpid, port } => {
                s(out, "ip", ip);
                n(out, "dpid", *dpid);
                n(out, "port", u64::from(*port));
            }
            EventKind::RuleInstalled {
                dpid,
                cookie,
                priority,
            } => {
                n(out, "dpid", *dpid);
                let _ = write!(out, ",\"cookie\":\"{cookie:#x}\"");
                n(out, "priority", u64::from(*priority));
            }
            EventKind::RuleDeleted { dpid, cookie } => {
                n(out, "dpid", *dpid);
                let _ = write!(out, ",\"cookie\":\"{cookie:#x}\"");
            }
            EventKind::SpoofDrop {
                dpid,
                port,
                packets,
            } => {
                n(out, "dpid", *dpid);
                n(out, "port", u64::from(*port));
                n(out, "packets", *packets);
            }
            EventKind::SwitchUp { dpid } | EventKind::SwitchDown { dpid } => {
                n(out, "dpid", *dpid);
            }
            EventKind::WalAppend { bytes } => {
                n(out, "bytes", *bytes);
            }
            EventKind::WalCompact { before, after } => {
                n(out, "before", *before);
                n(out, "after", *after);
            }
            EventKind::WalError { op } => {
                s(out, "op", op);
            }
            EventKind::PeerConnected { conn } | EventKind::PeerDisconnected { conn } => {
                n(out, "conn", *conn);
            }
            EventKind::AcceptError { error } => {
                s(out, "error", error);
            }
            EventKind::LeaderElected { node, generation } => {
                n(out, "node", *node);
                n(out, "generation", *generation);
            }
            EventKind::FailoverCompleted {
                node,
                generation,
                takeover_ms,
            } => {
                n(out, "node", *node);
                n(out, "generation", *generation);
                n(out, "takeover_ms", *takeover_ms);
            }
            EventKind::RoleRejected { dpid, generation } => {
                n(out, "dpid", *dpid);
                n(out, "generation", *generation);
            }
            EventKind::ClusterLinkDropped { peer, reason } => {
                n(out, "peer", *peer);
                s(out, "reason", reason);
            }
            EventKind::AmplificationDeny {
                dpid,
                port,
                src,
                rx_bytes,
                tx_bytes,
                timeout_secs,
            } => {
                n(out, "dpid", *dpid);
                n(out, "port", u64::from(*port));
                s(out, "src", src);
                n(out, "rx_bytes", *rx_bytes);
                n(out, "tx_bytes", *tx_bytes);
                n(out, "timeout_secs", *timeout_secs);
            }
            EventKind::QuarantineExpired { dpid, src }
            | EventKind::SourceValidated { dpid, src }
            | EventKind::ValidationLapsed { dpid, src } => {
                n(out, "dpid", *dpid);
                s(out, "src", src);
            }
        }
    }
}

/// One journal entry: sequence number, monotonic timestamp, severity, kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (gap-free per journal).
    pub seq: u64,
    /// Nanoseconds since the journal was created (monotonic clock).
    pub t_nanos: u64,
    /// Severity.
    pub severity: Severity,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// Render as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"t_ns\":{},\"severity\":\"{}\",\"event\":\"{}\"",
            self.seq,
            self.t_nanos,
            self.severity.label(),
            self.kind.name()
        );
        self.kind.write_json_fields(&mut out);
        out.push('}');
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_renders_flat_json() {
        let e = Event {
            seq: 3,
            t_nanos: 1500,
            severity: Severity::Warn,
            kind: EventKind::SpoofDrop {
                dpid: 1,
                port: 2,
                packets: 9,
            },
        };
        assert_eq!(
            e.to_json(),
            "{\"seq\":3,\"t_ns\":1500,\"severity\":\"warn\",\"event\":\"spoof_drop\",\
             \"dpid\":1,\"port\":2,\"packets\":9}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let e = Event {
            seq: 0,
            t_nanos: 0,
            severity: Severity::Error,
            kind: EventKind::WalError {
                op: "upsert \"x\"".to_string(),
            },
        };
        assert!(e.to_json().contains("\\\"x\\\""));
    }

    #[test]
    fn severities_order() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Warn < Severity::Error);
        assert_eq!(Severity::Info.label(), "info");
    }
}
