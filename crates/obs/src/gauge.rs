//! Last-value gauges, the non-monotonic sibling of
//! [`sav_metrics::Counters`].

use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A set of named gauges (current values, not accumulations). Clones share
/// state.
#[derive(Debug, Clone, Default)]
pub struct Gauges {
    inner: Arc<Mutex<BTreeMap<Cow<'static, str>, f64>>>,
}

impl Gauges {
    /// New, empty gauge set.
    pub fn new() -> Gauges {
        Gauges::default()
    }

    /// Set `name` to `value`.
    pub fn set(&self, name: impl Into<Cow<'static, str>>, value: f64) {
        self.inner
            .lock()
            .expect("gauges poisoned")
            .insert(name.into(), value);
    }

    /// Current value of `name`, if ever set.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("gauges poisoned")
            .get(name)
            .copied()
    }

    /// Remove a series (e.g. a per-switch gauge after the switch is gone).
    pub fn remove(&self, name: &str) {
        self.inner.lock().expect("gauges poisoned").remove(name);
    }

    /// Snapshot of every gauge, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, f64)> {
        self.inner
            .lock()
            .expect("gauges poisoned")
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_overwrites_and_remove_deletes() {
        let g = Gauges::new();
        g.set("wal_bytes", 10.0);
        g.set("wal_bytes", 4.0);
        g.set(format!("bindings{{dpid=\"{}\"}}", 1), 2.0);
        assert_eq!(g.get("wal_bytes"), Some(4.0));
        assert_eq!(g.get("bindings{dpid=\"1\"}"), Some(2.0));
        assert_eq!(g.snapshot().len(), 2);
        g.remove("bindings{dpid=\"1\"}");
        assert_eq!(g.get("bindings{dpid=\"1\"}"), None);
        // Clones share state.
        let g2 = g.clone();
        g2.set("wal_bytes", 7.0);
        assert_eq!(g.get("wal_bytes"), Some(7.0));
    }
}
