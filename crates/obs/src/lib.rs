//! # sav-obs — the observability layer
//!
//! Everything an operator needs to answer "which port is sourcing spoofed
//! packets, how many did each rule drop, and how long does rule compilation
//! take" — without attaching a debugger to the controller:
//!
//! * [`Journal`] — a lock-cheap ring buffer of typed [`Event`]s (binding
//!   learned/expired/migrated, rule installed/deleted, spoof drops, switch
//!   up/down, WAL appends/compactions, transport churn) with sequence
//!   numbers, monotonic timestamps, and severity; dumps as JSONL for
//!   post-mortems.
//! * [`Tracer`] — named latency histograms recorded through a
//!   zero-cost-when-disabled [`Span`] guard, reusing
//!   [`sav_metrics::Histogram`]'s log buckets.
//! * [`Gauges`] — named last-value metrics (binding-table size, connected
//!   switches, WAL bytes) alongside the monotonic
//!   [`sav_metrics::Counters`].
//! * [`encode_prometheus`] — Prometheus text exposition of all of the
//!   above, with histograms rendered as cumulative `le` buckets.
//! * [`ObsServer`] — a std-only HTTP/1.1 endpoint serving `/metrics`
//!   (Prometheus text) and `/events?n=` (journal tail as JSONL).
//!
//! The [`Obs`] handle bundles the four stores behind cheap clones, so one
//! handle threads through `sav-core`, `sav-channel`, and `sav-store`
//! without lifetime plumbing. JSON is hand-rolled (like the CSV in
//! `sav-metrics`) to keep the workspace free of serialization
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod event;
pub mod gauge;
pub mod http;
pub mod journal;
pub mod prom;
pub mod trace;

pub use causal::{CompletedTrace, TraceCollector, TraceId, TraceStage, TraceStageGuard};
pub use event::{Event, EventKind, Severity};
pub use gauge::Gauges;
pub use http::ObsServer;
pub use journal::Journal;
pub use prom::encode_prometheus;
pub use trace::{Span, Tracer};

use sav_metrics::Counters;

/// One shareable handle over the whole observability state: counters,
/// gauges, trace histograms, and the event journal. Clones share state.
#[derive(Clone, Default)]
pub struct Obs {
    /// Monotonic counters (Prometheus `_total` series).
    pub counters: Counters,
    /// Last-value gauges.
    pub gauges: Gauges,
    /// Span latency histograms.
    pub tracer: Tracer,
    /// The structured event journal.
    pub journal: Journal,
    /// Causal per-binding traces (packet-in → barrier ack).
    pub traces: TraceCollector,
}

impl Obs {
    /// A fresh handle with tracing **disabled** (spans cost one relaxed
    /// atomic load and nothing else).
    pub fn new() -> Obs {
        Obs::default()
    }

    /// A fresh handle with span tracing and causal traces enabled.
    pub fn with_tracing() -> Obs {
        let o = Obs::default();
        o.tracer.set_enabled(true);
        o.traces.set_enabled(true);
        o
    }

    /// Start a span; the elapsed time lands in the histogram named `name`
    /// when the guard drops (no-op while tracing is disabled).
    pub fn span(&self, name: &'static str) -> Span {
        self.tracer.span(name)
    }

    /// Record a structured event into the journal.
    pub fn event(&self, severity: Severity, kind: EventKind) {
        self.journal.record(severity, kind);
    }

    /// Close a causal trace (its barrier was acked): moves it to the
    /// completed ring and records its end-to-end latency into the headline
    /// `time_to_enforcement` histogram. No-op for unknown/closed ids.
    pub fn complete_trace(&self, id: TraceId) {
        if let Some(total_secs) = self.traces.complete(id) {
            self.tracer.observe("time_to_enforcement", total_secs);
        }
    }

    /// Abandon a half-open causal trace (its barrier ack will never come —
    /// the switch connection died first); counted in
    /// `sav_traces_abandoned_total`.
    pub fn abandon_trace(&self, id: TraceId) {
        if self.traces.abandon(id) {
            self.counters.incr("sav_traces_abandoned_total");
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("events", &self.journal.len())
            .field("tracing", &self.tracer.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_clones_share_everything() {
        let obs = Obs::with_tracing();
        let peer = obs.clone();
        obs.counters.incr("x_total");
        peer.gauges.set("g", 7.0);
        {
            let _s = peer.span("op");
        }
        obs.event(Severity::Info, EventKind::SwitchUp { dpid: 1 });
        assert_eq!(peer.counters.get("x_total"), 1);
        assert_eq!(obs.gauges.get("g"), Some(7.0));
        assert_eq!(obs.tracer.histogram("op").map(|h| h.count()), Some(1));
        assert_eq!(peer.journal.len(), 1);
    }
}
