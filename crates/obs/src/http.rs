//! A std-only HTTP/1.1 exposition endpoint.
//!
//! Serves `GET /metrics` (Prometheus text format), `GET /events?n=K`
//! (the newest `K` journal events as JSONL, filterable with `sev=` and
//! `kind=`), `GET /traces?n=K` (completed causal traces as JSONL), and
//! `GET /healthz`. Malformed query parameters are a 400, not a silent
//! full tail. One accept thread handles requests inline — scrape traffic
//! is a request every few seconds, not a web workload — and every
//! response closes its connection, so no keep-alive state machine is
//! needed.

use crate::event::Severity;
use crate::prom::encode_prometheus;
use crate::Obs;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const DEFAULT_EVENT_TAIL: usize = 256;
const MAX_REQUEST_BYTES: usize = 8192;

/// A running exposition endpoint.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve the given handle.
    pub fn bind(addr: impl ToSocketAddrs, obs: Obs) -> std::io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = stop.clone();
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => serve_one(stream, &obs),
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };
        Ok(ObsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The address to scrape.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving and join the accept thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ObsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn serve_one(mut stream: TcpStream, obs: &Obs) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nonblocking(false);
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    // Read until the header terminator; GET requests carry no body.
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > MAX_REQUEST_BYTES {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let (status, content_type, body) = route(request.lines().next().unwrap_or(""), obs);
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        _ => "Method Not Allowed",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn route(request_line: &str, obs: &Obs) -> (u16, &'static str, String) {
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("");
    if method != "GET" {
        return (405, "text/plain", "method not allowed\n".to_string());
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    match path {
        "/metrics" => (200, "text/plain; version=0.0.4", encode_prometheus(obs)),
        "/events" => match events_body(query, obs) {
            Ok(body) => (200, "application/x-ndjson", body),
            Err(msg) => (400, "text/plain", msg),
        },
        "/traces" => match parse_tail(query) {
            Ok(n) => (200, "application/x-ndjson", obs.traces.tail_jsonl(n)),
            Err(msg) => (400, "text/plain", msg),
        },
        "/" | "/healthz" => (200, "text/plain", healthz_body(obs)),
        _ => (404, "text/plain", "not found\n".to_string()),
    }
}

/// Parse `n=` out of a query string; absent means the default tail,
/// malformed is an error (a typo'd limit must not dump the full tail).
fn parse_tail(query: &str) -> Result<usize, String> {
    match query.split('&').find_map(|kv| kv.strip_prefix("n=")) {
        None => Ok(DEFAULT_EVENT_TAIL),
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| format!("bad request: n={v} is not a count\n")),
    }
}

/// `/events` body: `n=` tail limit plus optional `sev=` (minimum
/// severity: debug/info/warn/error) and `kind=` (exact event name)
/// filters. Any malformed value is a 400.
fn events_body(query: &str, obs: &Obs) -> Result<String, String> {
    let n = parse_tail(query)?;
    let mut min_sev = None;
    let mut kind = None;
    for kv in query.split('&') {
        if let Some(v) = kv.strip_prefix("sev=") {
            min_sev = Some(
                Severity::from_label(v)
                    .ok_or_else(|| format!("bad request: sev={v} is not a severity\n"))?,
            );
        } else if let Some(v) = kv.strip_prefix("kind=") {
            if v.is_empty() || !v.bytes().all(|b| b.is_ascii_lowercase() || b == b'_') {
                return Err(format!("bad request: kind={v} is not an event name\n"));
            }
            kind = Some(v);
        }
    }
    Ok(obs.journal.tail_filtered_jsonl(n, min_sev, kind))
}

/// Health body: plain `ok` for a standalone controller; when clustering is
/// active (a `sav_cluster_role` gauge exists) the current role rides
/// along, so an external health check — or the failover demo — can tell
/// master from standby with one GET. Gauge values follow the OpenFlow
/// role encoding: 2 = master, 3 = slave (standby).
fn healthz_body(obs: &Obs) -> String {
    let role = obs
        .gauges
        .snapshot()
        .into_iter()
        .find(|(k, _)| k.starts_with("sav_cluster_role"))
        .map(|(_, v)| match v as i64 {
            2 => "master",
            3 => "standby",
            _ => "candidate",
        });
    match role {
        Some(role) => format!("ok role={role}\n"),
        None => "ok\n".to_string(),
    }
}

/// Minimal blocking HTTP GET against `addr` — the scrape client used by
/// the integration tests and the live-controller smoke check. Returns
/// `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let status = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EventKind, Severity};

    #[test]
    fn serves_metrics_events_and_404() {
        let obs = Obs::with_tracing();
        obs.counters.add("sav_test_total", 2);
        obs.event(Severity::Info, EventKind::SwitchUp { dpid: 9 });
        obs.event(
            Severity::Warn,
            EventKind::SpoofDrop {
                dpid: 9,
                port: 1,
                packets: 3,
            },
        );
        let server = ObsServer::bind("127.0.0.1:0", obs).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/metrics").unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("sav_test_total 2"), "{body}");

        let (status, body) = http_get(addr, "/events?n=1").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1, "tail limited to 1: {body}");
        assert!(body.contains("\"event\":\"spoof_drop\""));

        let (status, body) = http_get(addr, "/events").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2);
        assert!(body.lines().next().unwrap().contains("switch_up"));

        let (status, _) = http_get(addr, "/healthz").unwrap();
        assert_eq!(status, 200);
        let (status, _) = http_get(addr, "/nope").unwrap();
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn event_filters_and_bad_queries() {
        let obs = Obs::new();
        obs.event(Severity::Info, EventKind::SwitchUp { dpid: 1 });
        obs.event(Severity::Info, EventKind::SwitchUp { dpid: 2 });
        obs.event(
            Severity::Warn,
            EventKind::SpoofDrop {
                dpid: 2,
                port: 3,
                packets: 9,
            },
        );
        let server = ObsServer::bind("127.0.0.1:0", obs).unwrap();
        let addr = server.local_addr();

        // sev= keeps only events at or above the given severity.
        let (status, body) = http_get(addr, "/events?sev=warn").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1, "{body}");
        assert!(body.contains("spoof_drop"));

        // kind= filters by exact event name; composes with n=.
        let (status, body) = http_get(addr, "/events?kind=switch_up&n=1").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 1, "{body}");
        assert!(body.contains("\"dpid\":2"), "newest switch_up: {body}");

        // Malformed query params are a 400, not a silent full tail.
        for bad in [
            "/events?n=bogus",
            "/events?sev=loud",
            "/events?kind=Spoof-Drop",
        ] {
            let (status, body) = http_get(addr, bad).unwrap();
            assert_eq!(status, 400, "{bad} must 400, got {status}: {body}");
            assert!(body.starts_with("bad request"), "{body}");
        }
        server.shutdown();
    }

    #[test]
    fn serves_completed_traces_as_jsonl() {
        let obs = Obs::with_tracing();
        for i in 0..3u64 {
            let id = obs
                .traces
                .begin(format!("10.0.0.{i}"), 1, obs.traces.now_ns())
                .unwrap();
            obs.traces.stage_open(id, "barrier_ack");
            obs.complete_trace(id);
        }
        let server = ObsServer::bind("127.0.0.1:0", obs).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_get(addr, "/traces?n=2").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.lines().count(), 2, "{body}");
        assert!(body.contains("\"ip\":\"10.0.0.2\""), "newest kept: {body}");
        assert!(body.contains("\"stage\":\"barrier_ack\""));

        let (status, body) = http_get(addr, "/traces?n=nope").unwrap();
        assert_eq!(status, 400, "{body}");
        server.shutdown();
    }

    #[test]
    fn healthz_reports_cluster_role() {
        let obs = Obs::new();
        let server = ObsServer::bind("127.0.0.1:0", obs.clone()).unwrap();
        let addr = server.local_addr();

        let (_, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(body, "ok\n", "standalone controller: no role suffix");

        obs.gauges.set("sav_cluster_role{node=\"1\"}", 3.0);
        let (_, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(body, "ok role=standby\n");

        obs.gauges.set("sav_cluster_role{node=\"1\"}", 2.0);
        let (_, body) = http_get(addr, "/healthz").unwrap();
        assert_eq!(body, "ok role=master\n");
        server.shutdown();
    }
}
