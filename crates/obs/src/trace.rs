//! Hot-path tracing: named latency histograms behind a
//! zero-cost-when-disabled span guard.
//!
//! The guard is the whole API: `let _s = tracer.span("rule_compile");`
//! brackets a region, and the elapsed seconds land in the histogram named
//! `rule_compile` when the guard drops. While tracing is disabled (the
//! default) a span is one relaxed atomic load — no clock read, no lock —
//! so instrumented hot paths stay at their uninstrumented speed.

use sav_metrics::Histogram;
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

#[derive(Default)]
struct Inner {
    hists: BTreeMap<Cow<'static, str>, Histogram>,
}

/// Shareable tracer handle; clones share the histograms and the switch.
#[derive(Clone, Default)]
pub struct Tracer {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<Inner>>,
}

impl Tracer {
    /// A tracer with tracing disabled.
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Is tracing currently on?
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flip tracing on or off (affects spans started afterwards).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Start a span ending when the returned guard drops. The guard owns a
    /// tracer handle (an `Arc` clone, taken only when tracing is on) so it
    /// can outlive the borrow of `self` — callers may hold it across
    /// `&mut self` work.
    #[must_use = "a span measures until dropped — binding it to _ drops immediately"]
    pub fn span(&self, name: &'static str) -> Span {
        Span {
            name,
            armed: self.enabled().then(|| (self.clone(), Instant::now())),
        }
    }

    /// Record a pre-measured duration (seconds) under `name`, bypassing
    /// the enabled switch (for durations measured anyway, e.g. RTTs).
    pub fn observe(&self, name: impl Into<Cow<'static, str>>, secs: f64) {
        let mut g = self.inner.lock().expect("tracer poisoned");
        g.hists.entry(name.into()).or_default().record(secs);
    }

    /// Copy out one named histogram, if it has ever been recorded to.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .hists
            .get(name)
            .cloned()
    }

    /// Copy out every histogram, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, Histogram)> {
        self.inner
            .lock()
            .expect("tracer poisoned")
            .hists
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }
}

/// RAII guard produced by [`Tracer::span`]. Records on drop.
pub struct Span {
    name: &'static str,
    armed: Option<(Tracer, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((tracer, start)) = self.armed.take() {
            tracer.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let t = Tracer::new();
        {
            let _s = t.span("op");
        }
        assert!(t.histogram("op").is_none());
        assert!(!t.enabled());
    }

    #[test]
    fn enabled_spans_record_elapsed() {
        let t = Tracer::new();
        t.set_enabled(true);
        {
            let _s = t.span("op");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let h = t.histogram("op").unwrap();
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 0.002, "span measured the sleep, got {}", h.max());
    }

    #[test]
    fn observe_bypasses_the_switch() {
        let t = Tracer::new();
        t.observe("rtt", 0.5);
        t.observe(format!("rtt_{}", 2), 0.25);
        assert_eq!(t.histogram("rtt").unwrap().count(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].0, "rtt");
        assert_eq!(snap[1].0, "rtt_2");
    }
}
