//! Prometheus text exposition (version 0.0.4) of an [`Obs`] handle.
//!
//! Counter and gauge keys are full series names — `sav_punts_total` or
//! `sav_bindings{dpid="1"}` — so producers choose their own label scheme
//! and the encoder only groups series under one `# TYPE` line per base
//! name. Tracer histograms named `x` are exposed as `sav_x_seconds` with
//! cumulative `le` buckets (sparse: only buckets that grew are emitted,
//! plus the mandatory `+Inf`).

use crate::Obs;
use std::fmt::Write as _;

/// `name{a="b"}` → `("name", Some("a=\"b\""))`.
fn split_series(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(i) => (
            &name[..i],
            name[i + 1..]
                .strip_suffix('}')
                .or(Some(""))
                .map(|l| l.trim()),
        ),
        None => (name, None),
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`.
fn sanitize(base: &str) -> String {
    base.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn emit_family(out: &mut String, kind: &str, series: &[(String, String)]) {
    let mut last_base = String::new();
    for (name, value) in series {
        let (base, labels) = split_series(name);
        let base = sanitize(base);
        if base != last_base {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            last_base = base.clone();
        }
        match labels {
            Some(l) if !l.is_empty() => {
                let _ = writeln!(out, "{base}{{{l}}} {value}");
            }
            _ => {
                let _ = writeln!(out, "{base} {value}");
            }
        }
    }
}

/// Render the whole observability state as Prometheus text format.
pub fn encode_prometheus(obs: &Obs) -> String {
    let mut out = String::with_capacity(4096);

    let counters: Vec<(String, String)> = obs
        .counters
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k, v.to_string()))
        .collect();
    emit_family(&mut out, "counter", &counters);

    let gauges: Vec<(String, String)> = obs
        .gauges
        .snapshot()
        .into_iter()
        .map(|(k, v)| (k, fmt_value(v)))
        .collect();
    emit_family(&mut out, "gauge", &gauges);

    for (name, h) in obs.tracer.snapshot() {
        let (raw_base, labels) = split_series(&name);
        let base = format!("sav_{}_seconds", sanitize(raw_base));
        let extra = labels.filter(|l| !l.is_empty());
        let with_le = |le: &str| match extra {
            Some(l) => format!("{{{l},le=\"{le}\"}}"),
            None => format!("{{le=\"{le}\"}}"),
        };
        let plain = |suffix: &str| match extra {
            Some(l) => format!("{base}{suffix}{{{l}}}"),
            None => format!("{base}{suffix}"),
        };
        let _ = writeln!(out, "# TYPE {base} histogram");
        let mut prev = 0u64;
        for (upper, cum) in h.cumulative_buckets() {
            if cum != prev {
                let _ = writeln!(out, "{base}_bucket{} {cum}", with_le(&format!("{upper}")));
                prev = cum;
            }
        }
        let _ = writeln!(out, "{base}_bucket{} {}", with_le("+Inf"), h.count());
        let _ = writeln!(out, "{} {}", plain("_sum"), fmt_value(h.sum()));
        let _ = writeln!(out, "{} {}", plain("_count"), h.count());
        // Pre-computed quantile estimates (bucket upper bounds, same
        // error as the `le` view) so dashboards don't re-derive them.
        let _ = writeln!(out, "# TYPE {base}_quantile gauge");
        for (label, q) in [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)] {
            let series = match extra {
                Some(l) => format!("{base}_quantile{{{l},q=\"{label}\"}}"),
                None => format!("{base}_quantile{{q=\"{label}\"}}"),
            };
            let _ = writeln!(out, "{series} {}", h.quantile(q));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_group_under_one_type_line() {
        let obs = Obs::new();
        obs.counters.add("sav_punts_total", 3);
        obs.counters.add("sav_spoof_dropped_total{dpid=\"1\"}", 2);
        obs.counters.add("sav_spoof_dropped_total{dpid=\"2\"}", 5);
        obs.gauges.set("sav_bindings{dpid=\"1\"}", 4.0);
        let text = encode_prometheus(&obs);
        assert_eq!(
            text.matches("# TYPE sav_spoof_dropped_total counter")
                .count(),
            1,
            "one TYPE line for both labelled series:\n{text}"
        );
        assert!(text.contains("sav_punts_total 3"));
        assert!(text.contains("sav_spoof_dropped_total{dpid=\"2\"} 5"));
        assert!(text.contains("# TYPE sav_bindings gauge"));
        assert!(text.contains("sav_bindings{dpid=\"1\"} 4"));
    }

    #[test]
    fn histograms_expose_cumulative_le_buckets() {
        let obs = Obs::with_tracing();
        obs.tracer.observe("rule_compile", 1e-6);
        obs.tracer.observe("rule_compile", 1e-6);
        obs.tracer.observe("rule_compile", 0.5);
        let text = encode_prometheus(&obs);
        assert!(text.contains("# TYPE sav_rule_compile_seconds histogram"));
        assert!(text.contains("sav_rule_compile_seconds_count 3"));
        assert!(text.contains("sav_rule_compile_seconds_bucket{le=\"+Inf\"} 3"));
        // Cumulative: the bucket covering 0.5 reports all three samples.
        let bucket_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.starts_with("sav_rule_compile_seconds_bucket"))
            .collect();
        assert!(bucket_lines.len() >= 3, "sparse buckets + Inf:\n{text}");
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {counts:?}"
        );
        assert_eq!(
            *counts.first().unwrap(),
            2,
            "first non-empty bucket holds the two fast samples"
        );
    }

    #[test]
    fn histograms_expose_quantile_gauges() {
        let obs = Obs::with_tracing();
        for i in 1..=100 {
            obs.tracer.observe("rule_compile", i as f64 / 1000.0);
        }
        let text = encode_prometheus(&obs);
        assert!(
            text.contains("# TYPE sav_rule_compile_seconds_quantile gauge"),
            "{text}"
        );
        let q = |label: &str| -> f64 {
            text.lines()
                .find(|l| {
                    l.starts_with(&format!(
                        "sav_rule_compile_seconds_quantile{{q=\"{label}\"}}"
                    ))
                })
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing q={label}:\n{text}"))
        };
        let (p50, p90, p99) = (q("0.5"), q("0.9"), q("0.99"));
        assert!(
            p50 <= p90 && p90 <= p99,
            "quantiles ordered: {p50} {p90} {p99}"
        );
        // Bucket-bound estimates stay within ~15% of the exact quantile.
        assert!((p50 / 0.05 - 1.0).abs() < 0.15, "p50={p50}");
        assert!((p99 / 0.099 - 1.0).abs() < 0.15, "p99={p99}");
    }

    #[test]
    fn names_are_sanitized() {
        let obs = Obs::new();
        obs.counters.add("weird.name-total", 1);
        let text = encode_prometheus(&obs);
        assert!(text.contains("weird_name_total 1"));
    }
}
