//! Causal per-binding traces: from the DHCP packet-in that revealed a host
//! to the barrier ack that proves its SAV rule is enforced.
//!
//! A [`TraceId`] is minted when the controller decides a packet-in will
//! become a binding, threaded through the upsert path (WAL fsync, rule
//! compilation, flow-mod send), and closed when the barrier reply for the
//! tagged `BarrierRequest` xid comes back. Each completed trace is a flat
//! span tree — one [`TraceStage`] per pipeline stage with start/end
//! nanoseconds relative to the collector's epoch — kept in a bounded ring
//! and served as JSONL at `/traces?n=`. The trace total feeds the headline
//! `sav_time_to_enforcement_seconds` histogram.
//!
//! Traces whose barrier ack never arrives (switch died, controller failed
//! over) are *abandoned*, not completed: they leave the open table and are
//! counted, so a restart never leaks half-open spans into the ring.
//!
//! Like [`Span`](crate::Span), everything is zero-cost while disabled:
//! [`begin`](TraceCollector::begin) returns `None` after one relaxed
//! atomic load and no producer takes the lock.

use crate::event::escape_json;
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifier of one causal trace, unique per collector.
pub type TraceId = u64;

/// Completed traces kept for `/traces?n=`.
const DEFAULT_RING: usize = 256;

/// One stage of a trace (e.g. `wal_fsync`). Times are nanoseconds since
/// the collector's epoch; `end_ns` is `None` while the stage is open.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStage {
    /// Stage name: `packet_in`, `wal_fsync`, `compile`, `send`,
    /// `barrier_ack`.
    pub stage: &'static str,
    /// Stage start, ns since epoch.
    pub start_ns: u64,
    /// Stage end, ns since epoch (`None` while open).
    pub end_ns: Option<u64>,
}

/// A finished trace: the per-stage latency breakdown of one binding's
/// path from packet-in to enforced rule.
#[derive(Debug, Clone, PartialEq)]
pub struct CompletedTrace {
    /// Trace id.
    pub id: TraceId,
    /// The bound address the trace is about.
    pub ip: String,
    /// Switch the binding was programmed on.
    pub dpid: u64,
    /// Trace start, ns since the collector's epoch.
    pub started_ns: u64,
    /// End-to-end seconds from packet-in to barrier ack.
    pub total_secs: f64,
    /// Stages in emission order; all closed by completion time.
    pub stages: Vec<TraceStage>,
}

impl CompletedTrace {
    /// One JSONL line, schema-stable for scrapers:
    /// `{"id":..,"ip":"..","dpid":..,"start_ns":..,"total_s":..,"stages":[..]}`.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        let _ = write!(
            s,
            "{{\"id\":{},\"ip\":\"{}\",\"dpid\":{},\"start_ns\":{},\"total_s\":{}",
            self.id,
            escape_json(&self.ip),
            self.dpid,
            self.started_ns,
            self.total_secs
        );
        s.push_str(",\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"stage\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                st.stage,
                st.start_ns,
                st.end_ns.unwrap_or(st.start_ns)
            );
        }
        s.push_str("]}");
        s
    }
}

struct OpenTrace {
    ip: String,
    dpid: u64,
    started_ns: u64,
    stages: Vec<TraceStage>,
}

#[derive(Default)]
struct Inner {
    next_id: TraceId,
    open: HashMap<TraceId, OpenTrace>,
    done: VecDeque<CompletedTrace>,
    completed: u64,
    abandoned: u64,
}

/// Shareable collector of causal traces; clones share state.
#[derive(Clone)]
pub struct TraceCollector {
    enabled: Arc<AtomicBool>,
    epoch: Instant,
    cap: usize,
    inner: Arc<Mutex<Inner>>,
}

impl Default for TraceCollector {
    fn default() -> Self {
        TraceCollector {
            enabled: Arc::new(AtomicBool::new(false)),
            epoch: Instant::now(),
            cap: DEFAULT_RING,
            inner: Arc::new(Mutex::new(Inner::default())),
        }
    }
}

impl TraceCollector {
    /// A fresh, disabled collector.
    pub fn new() -> TraceCollector {
        TraceCollector::default()
    }

    /// Whether traces are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn collection on or off (off is the zero-cost default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Nanoseconds since this collector's epoch — the clock every stage
    /// timestamp uses.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Open a trace for `ip` on `dpid`, started at `started_ns` (usually a
    /// [`now_ns`](Self::now_ns) captured at packet-in). `None` while
    /// disabled.
    pub fn begin(&self, ip: String, dpid: u64, started_ns: u64) -> Option<TraceId> {
        if !self.enabled() {
            return None;
        }
        let mut g = self.inner.lock().expect("trace collector poisoned");
        let id = g.next_id;
        g.next_id += 1;
        g.open.insert(
            id,
            OpenTrace {
                ip,
                dpid,
                started_ns,
                stages: Vec::with_capacity(5),
            },
        );
        Some(id)
    }

    /// Append a closed stage `[start_ns, end_ns]` to an open trace.
    pub fn stage(&self, id: TraceId, stage: &'static str, start_ns: u64, end_ns: u64) {
        let mut g = self.inner.lock().expect("trace collector poisoned");
        if let Some(t) = g.open.get_mut(&id) {
            t.stages.push(TraceStage {
                stage,
                start_ns,
                end_ns: Some(end_ns),
            });
        }
    }

    /// Open a stage now; it closes when the trace completes (used for
    /// `barrier_ack`, whose end is the reply arriving).
    pub fn stage_open(&self, id: TraceId, stage: &'static str) {
        let start_ns = self.now_ns();
        let mut g = self.inner.lock().expect("trace collector poisoned");
        if let Some(t) = g.open.get_mut(&id) {
            t.stages.push(TraceStage {
                stage,
                start_ns,
                end_ns: None,
            });
        }
    }

    /// RAII stage guard: the stage spans from this call to the guard drop.
    pub fn stage_guard(&self, id: TraceId, stage: &'static str) -> TraceStageGuard {
        TraceStageGuard {
            collector: self.clone(),
            id,
            stage,
            start_ns: self.now_ns(),
        }
    }

    /// Close a trace: open stages end now, the total is `now - started`,
    /// and the trace moves to the completed ring. Returns the end-to-end
    /// seconds, or `None` if `id` is not open (already completed or
    /// abandoned — double acks are harmless).
    pub fn complete(&self, id: TraceId) -> Option<f64> {
        let end_ns = self.now_ns();
        let mut g = self.inner.lock().expect("trace collector poisoned");
        let t = g.open.remove(&id)?;
        let mut stages = t.stages;
        for st in &mut stages {
            if st.end_ns.is_none() {
                st.end_ns = Some(end_ns);
            }
        }
        let total_secs = end_ns.saturating_sub(t.started_ns) as f64 / 1e9;
        if g.done.len() == self.cap {
            g.done.pop_front();
        }
        g.done.push_back(CompletedTrace {
            id,
            ip: t.ip,
            dpid: t.dpid,
            started_ns: t.started_ns,
            total_secs,
            stages,
        });
        g.completed += 1;
        Some(total_secs)
    }

    /// Drop an open trace without completing it (its barrier ack will
    /// never come). Returns whether `id` was open.
    pub fn abandon(&self, id: TraceId) -> bool {
        let mut g = self.inner.lock().expect("trace collector poisoned");
        if g.open.remove(&id).is_some() {
            g.abandoned += 1;
            true
        } else {
            false
        }
    }

    /// Traces completed so far.
    pub fn completed(&self) -> u64 {
        self.inner
            .lock()
            .expect("trace collector poisoned")
            .completed
    }

    /// Traces abandoned so far.
    pub fn abandoned(&self) -> u64 {
        self.inner
            .lock()
            .expect("trace collector poisoned")
            .abandoned
    }

    /// Traces currently open (minted, barrier not yet acked).
    pub fn open_count(&self) -> usize {
        self.inner
            .lock()
            .expect("trace collector poisoned")
            .open
            .len()
    }

    /// The newest `n` completed traces, oldest first.
    pub fn tail(&self, n: usize) -> Vec<CompletedTrace> {
        let g = self.inner.lock().expect("trace collector poisoned");
        let skip = g.done.len().saturating_sub(n);
        g.done.iter().skip(skip).cloned().collect()
    }

    /// The newest `n` completed traces as JSONL (the `/traces` body).
    pub fn tail_jsonl(&self, n: usize) -> String {
        let mut s = String::new();
        for t in self.tail(n) {
            s.push_str(&t.to_json());
            s.push('\n');
        }
        s
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock().expect("trace collector poisoned");
        f.debug_struct("TraceCollector")
            .field("enabled", &self.enabled())
            .field("open", &g.open.len())
            .field("completed", &g.completed)
            .field("abandoned", &g.abandoned)
            .finish()
    }
}

/// Closes its stage with the elapsed interval when dropped.
pub struct TraceStageGuard {
    collector: TraceCollector,
    id: TraceId,
    stage: &'static str,
    start_ns: u64,
}

impl Drop for TraceStageGuard {
    fn drop(&mut self) {
        let end_ns = self.collector.now_ns();
        self.collector
            .stage(self.id, self.stage, self.start_ns, end_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_mints_nothing() {
        let c = TraceCollector::new();
        assert!(c.begin("10.0.0.1".into(), 1, 0).is_none());
        assert_eq!(c.open_count(), 0);
        assert_eq!(c.tail_jsonl(16), "");
    }

    #[test]
    fn full_trace_lifecycle() {
        let c = TraceCollector::new();
        c.set_enabled(true);
        let t0 = c.now_ns();
        let id = c.begin("10.0.0.5".into(), 7, t0).unwrap();
        c.stage(id, "packet_in", t0, c.now_ns());
        {
            let _g = c.stage_guard(id, "wal_fsync");
        }
        c.stage_open(id, "barrier_ack");
        assert_eq!(c.open_count(), 1);
        let total = c.complete(id).expect("open trace completes");
        assert!(total >= 0.0);
        assert_eq!(c.open_count(), 0);
        assert_eq!(c.completed(), 1);
        // Double completion (e.g. a second barrier ack) is a no-op.
        assert!(c.complete(id).is_none());

        let traces = c.tail(8);
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.ip, "10.0.0.5");
        assert_eq!(t.dpid, 7);
        assert_eq!(t.stages.len(), 3);
        assert!(
            t.stages.iter().all(|s| s.end_ns.is_some()),
            "completion closes open stages"
        );
        let json = t.to_json();
        for needle in [
            "\"ip\":\"10.0.0.5\"",
            "\"stage\":\"packet_in\"",
            "\"stage\":\"barrier_ack\"",
        ] {
            assert!(json.contains(needle), "{json}");
        }
    }

    #[test]
    fn abandoned_traces_never_reach_the_ring() {
        let c = TraceCollector::new();
        c.set_enabled(true);
        let id = c.begin("10.0.0.9".into(), 1, c.now_ns()).unwrap();
        c.stage_open(id, "barrier_ack");
        assert!(c.abandon(id));
        assert!(!c.abandon(id), "second abandon is a no-op");
        assert_eq!(c.abandoned(), 1);
        assert_eq!(c.open_count(), 0);
        assert!(c.tail(8).is_empty(), "abandoned trace must not complete");
        assert!(c.complete(id).is_none());
    }

    #[test]
    fn ring_is_bounded() {
        let c = TraceCollector::new();
        c.set_enabled(true);
        for i in 0..(DEFAULT_RING + 10) {
            let id = c
                .begin(format!("10.0.0.{}", i % 250), 1, c.now_ns())
                .unwrap();
            c.complete(id).unwrap();
        }
        assert_eq!(c.tail(usize::MAX).len(), DEFAULT_RING);
        // Newest n, oldest first — like the journal tail.
        let tail = c.tail(2);
        assert_eq!(tail.len(), 2);
        assert!(tail[0].id < tail[1].id);
    }
}
