//! # sav-baselines — the mechanisms SDN-SAV is evaluated against
//!
//! Each baseline is a controller [`App`] that programs the same validation
//! table (table 0) the SAV app uses, so all mechanisms are compared on the
//! same dataplane with the same workloads:
//!
//! * [`NoSavApp`] — installs nothing; the forwarding bridge passes all
//!   traffic (the Internet's sad default).
//! * [`StaticAclApp`] — RFC 2827 ingress ACLs at prefix granularity:
//!   per edge switch, permit sources within the switch's own subnets, deny
//!   other IPv4. Blind to spoofing *within* a prefix and needs manual
//!   reconfiguration when the address plan changes.
//! * [`StrictUrpfApp`] — strict reverse-path forwarding: accept a source
//!   on the port that the (shortest-path) route back to that source uses.
//!   Inherits uRPF's equal-cost-path false positives.
//! * [`FeasibleUrpfApp`] — the looser variant: accept a remote source on
//!   *any* trunk port (any feasible path), local sources on any host port.
//!
//! [`mechanism::Mechanism`] enumerates every mechanism (baselines plus the
//! `sav-core` configurations) and builds the full app chain for the
//! testbed — the single entry point the evaluation harness sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mechanism;

pub use mechanism::Mechanism;

use sav_controller::app::{App, Ctx};
use sav_core::rules;
use sav_core::{PRIO_ALLOW, PRIO_OSAV_DENY, SAV_COOKIE};
use sav_openflow::messages::FlowMod;
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::Instruction;
use sav_topo::{SwitchId, SwitchRole, Topology};
use std::sync::Arc;

/// No validation at all. Exists so every mechanism is "an app" and the
/// harness code is uniform.
pub struct NoSavApp;

impl App for NoSavApp {
    fn name(&self) -> &'static str {
        "no-sav"
    }
}

/// Static ingress ACLs: per edge switch, permit its own subnets, deny the
/// rest of IPv4. No per-port or per-host granularity.
pub struct StaticAclApp {
    topo: Arc<Topology>,
    /// Validation rules installed (state metric).
    pub rules_installed: u64,
}

impl StaticAclApp {
    /// Build for a topology.
    pub fn new(topo: Arc<Topology>) -> StaticAclApp {
        StaticAclApp {
            topo,
            rules_installed: 0,
        }
    }
}

impl App for StaticAclApp {
    fn name(&self) -> &'static str {
        "static-acl"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return;
        };
        if self.topo.switch(sid).role != SwitchRole::Edge {
            return;
        }
        for port in self.topo.trunk_ports(sid) {
            ctx.install(dpid, rules::trunk_allow(port));
            self.rules_installed += 1;
        }
        // Permit the switch's local subnets from any port.
        let mut subnets: Vec<_> = self.topo.hosts_on(sid).map(|h| h.subnet).collect();
        subnets.sort_unstable();
        subnets.dedup();
        for sn in subnets {
            ctx.install(
                dpid,
                FlowMod {
                    priority: PRIO_ALLOW,
                    cookie: SAV_COOKIE | 0xac1,
                    instructions: vec![Instruction::GotoTable(sav_controller::TABLE_FWD)],
                    ..FlowMod::add(
                        OxmMatch::new()
                            .with(OxmField::EthType(0x0800))
                            .with(OxmField::Ipv4Src(sn.network(), Some(sn.netmask()))),
                    )
                },
            );
            self.rules_installed += 1;
        }
        ctx.install(dpid, rules::edge_default_deny(false));
        self.rules_installed += 1;
    }
}

/// Strict uRPF compiled to OpenFlow: per switch, a source prefix is
/// accepted only on the port the route *toward* that prefix uses
/// (symmetric-path assumption).
pub struct StrictUrpfApp {
    topo: Arc<Topology>,
    routes: Arc<sav_topo::routes::Routes>,
    /// Validation rules installed (state metric).
    pub rules_installed: u64,
}

impl StrictUrpfApp {
    /// Build for a topology and its routes.
    pub fn new(topo: Arc<Topology>, routes: Arc<sav_topo::routes::Routes>) -> StrictUrpfApp {
        StrictUrpfApp {
            topo,
            routes,
            rules_installed: 0,
        }
    }
}

impl App for StrictUrpfApp {
    fn name(&self) -> &'static str {
        "strict-urpf"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return;
        };
        // Map each subnet to the edge switch hosting it, then to the port
        // this switch would use to reach it — the only port the prefix may
        // arrive on.
        let mut emitted: std::collections::HashSet<(u32, sav_net::addr::Ipv4Cidr)> =
            std::collections::HashSet::new();
        for h in self.topo.hosts() {
            let arrival_port = if h.switch == sid {
                h.port
            } else {
                match self.routes.next_port(sid, h.switch) {
                    Some(p) => p,
                    None => continue,
                }
            };
            if emitted.insert((arrival_port, h.subnet)) {
                ctx.install(
                    dpid,
                    FlowMod {
                        priority: PRIO_ALLOW,
                        cookie: SAV_COOKIE | 0x09f,
                        instructions: vec![Instruction::GotoTable(sav_controller::TABLE_FWD)],
                        ..FlowMod::add(
                            OxmMatch::new()
                                .with(OxmField::InPort(arrival_port))
                                .with(OxmField::EthType(0x0800))
                                .with(OxmField::Ipv4Src(
                                    h.subnet.network(),
                                    Some(h.subnet.netmask()),
                                )),
                        )
                    },
                );
                self.rules_installed += 1;
            }
        }
        ctx.install(
            dpid,
            FlowMod {
                priority: PRIO_OSAV_DENY,
                cookie: SAV_COOKIE | 0x09f,
                instructions: vec![],
                ..FlowMod::add(OxmMatch::new().with(OxmField::EthType(0x0800)))
            },
        );
        self.rules_installed += 1;
    }
}

/// Feasible-path uRPF: remote prefixes accepted on any trunk port, local
/// prefixes on any host port.
pub struct FeasibleUrpfApp {
    topo: Arc<Topology>,
    /// Validation rules installed (state metric).
    pub rules_installed: u64,
}

impl FeasibleUrpfApp {
    /// Build for a topology.
    pub fn new(topo: Arc<Topology>) -> FeasibleUrpfApp {
        FeasibleUrpfApp {
            topo,
            rules_installed: 0,
        }
    }
}

impl App for FeasibleUrpfApp {
    fn name(&self) -> &'static str {
        "feasible-urpf"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return;
        };
        let local: std::collections::BTreeSet<_> =
            self.topo.hosts_on(sid).map(|h| h.subnet).collect();
        let all: std::collections::BTreeSet<_> =
            self.topo.hosts().iter().map(|h| h.subnet).collect();
        // Remote prefixes: any trunk port is a feasible arrival.
        for port in self.topo.trunk_ports(sid) {
            for sn in all.difference(&local) {
                ctx.install(
                    dpid,
                    FlowMod {
                        priority: PRIO_ALLOW,
                        cookie: SAV_COOKIE | 0x0fe,
                        instructions: vec![Instruction::GotoTable(sav_controller::TABLE_FWD)],
                        ..FlowMod::add(
                            OxmMatch::new()
                                .with(OxmField::InPort(port))
                                .with(OxmField::EthType(0x0800))
                                .with(OxmField::Ipv4Src(sn.network(), Some(sn.netmask()))),
                        )
                    },
                );
                self.rules_installed += 1;
            }
        }
        // Local prefixes: any host port.
        for port in self.topo.host_ports(sid) {
            for sn in &local {
                ctx.install(
                    dpid,
                    FlowMod {
                        priority: PRIO_ALLOW,
                        cookie: SAV_COOKIE | 0x0fe,
                        instructions: vec![Instruction::GotoTable(sav_controller::TABLE_FWD)],
                        ..FlowMod::add(
                            OxmMatch::new()
                                .with(OxmField::InPort(port))
                                .with(OxmField::EthType(0x0800))
                                .with(OxmField::Ipv4Src(sn.network(), Some(sn.netmask()))),
                        )
                    },
                );
                self.rules_installed += 1;
            }
        }
        ctx.install(
            dpid,
            FlowMod {
                priority: PRIO_OSAV_DENY,
                cookie: SAV_COOKIE | 0x0fe,
                instructions: vec![],
                ..FlowMod::add(OxmMatch::new().with(OxmField::EthType(0x0800)))
            },
        );
        self.rules_installed += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_sim::SimTime;
    use sav_topo::generators;
    use sav_topo::routes::Routes;

    fn fms(ctx: Ctx) -> Vec<FlowMod> {
        ctx.take()
            .into_iter()
            .filter_map(|(_, m)| match m {
                sav_openflow::messages::Message::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn acl_rules_are_prefix_only() {
        let topo = Arc::new(generators::campus(4, 5));
        let mut app = StaticAclApp::new(topo.clone());
        let edge = topo
            .switches()
            .iter()
            .find(|s| s.role == SwitchRole::Edge)
            .unwrap()
            .id;
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, edge.dpid());
        let fms = fms(ctx);
        // 1 trunk + 1 subnet + 1 deny.
        assert_eq!(fms.len(), 3);
        let allow = fms.iter().find(|f| f.priority == PRIO_ALLOW).unwrap();
        assert!(allow.match_.in_port().is_none(), "ACL has no port binding");
        assert!(allow
            .match_
            .fields()
            .iter()
            .any(|f| matches!(f, OxmField::Ipv4Src(_, Some(_)))));
    }

    #[test]
    fn acl_skips_core_switches() {
        let topo = Arc::new(generators::campus(4, 5));
        let mut app = StaticAclApp::new(topo.clone());
        let core = topo
            .switches()
            .iter()
            .find(|s| s.role == SwitchRole::Core)
            .unwrap()
            .id;
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, core.dpid());
        assert!(fms(ctx).is_empty());
    }

    #[test]
    fn strict_urpf_binds_prefix_to_route_port() {
        let topo = Arc::new(generators::linear(3, 2));
        let routes = Arc::new(Routes::compute(&topo));
        let mut app = StrictUrpfApp::new(topo.clone(), routes.clone());
        // Middle switch: subnets of s0 must arrive via the port toward s0,
        // subnets of s2 via the port toward s2.
        let mid = topo.switches()[1].id;
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, mid.dpid());
        let fms = fms(ctx);
        let allows: Vec<_> = fms.iter().filter(|f| f.priority == PRIO_ALLOW).collect();
        // 3 subnets: one local (2 host ports share subnet? linear: per-switch
        // subnet, 2 hosts each on own port → local subnet from 2 ports) +
        // 2 remote via distinct trunks.
        let to_s0 = routes.next_port(mid, topo.switches()[0].id).unwrap();
        let to_s2 = routes.next_port(mid, topo.switches()[2].id).unwrap();
        let s0_subnet = topo.hosts_on(topo.switches()[0].id).next().unwrap().subnet;
        let s2_subnet = topo.hosts_on(topo.switches()[2].id).next().unwrap().subnet;
        assert!(allows.iter().any(|f| f.match_.in_port() == Some(to_s0)
            && f.match_
                .fields()
                .iter()
                .any(|x| matches!(x, OxmField::Ipv4Src(ip, _) if *ip == s0_subnet.network()))));
        assert!(allows.iter().any(|f| f.match_.in_port() == Some(to_s2)
            && f.match_
                .fields()
                .iter()
                .any(|x| matches!(x, OxmField::Ipv4Src(ip, _) if *ip == s2_subnet.network()))));
        // And no rule allows s0's subnet via the s2 port.
        assert!(!allows.iter().any(|f| f.match_.in_port() == Some(to_s2)
            && f.match_
                .fields()
                .iter()
                .any(|x| matches!(x, OxmField::Ipv4Src(ip, _) if *ip == s0_subnet.network()))));
    }

    #[test]
    fn feasible_urpf_allows_remote_on_all_trunks() {
        let topo = Arc::new(generators::campus(4, 3));
        let mut app = FeasibleUrpfApp::new(topo.clone());
        let edge = topo
            .switches()
            .iter()
            .find(|s| s.role == SwitchRole::Edge)
            .unwrap()
            .id;
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, edge.dpid());
        let fms = fms(ctx);
        // 1 trunk × 3 remote subnets + 3 host ports × 1 local + deny.
        let trunks = topo.trunk_ports(edge).len();
        let host_ports = topo.host_ports(edge).len();
        assert_eq!(fms.len(), trunks * 3 + host_ports + 1);
    }

    #[test]
    fn no_sav_installs_nothing() {
        let mut app = NoSavApp;
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, 1);
        assert_eq!(ctx.pending(), 0);
    }
}
