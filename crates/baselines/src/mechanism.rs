//! [`Mechanism`] — the single switchboard the evaluation harness sweeps.
//!
//! A mechanism names one complete validation configuration; `build_apps`
//! turns it into the controller app chain (validation app first, then L2
//! forwarding), identically wired for every mechanism so comparisons are
//! apples-to-apples.

use crate::{FeasibleUrpfApp, NoSavApp, StaticAclApp, StrictUrpfApp};
use sav_border::BorderGuardApp;
use sav_controller::app::App;
use sav_controller::apps::L2RoutingApp;
use sav_core::{SavApp, SavConfig, SavMode, StatsPollerApp};
use sav_topo::routes::Routes;
use sav_topo::Topology;
use std::sync::Arc;

/// Every mechanism under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// No source validation.
    NoSav,
    /// Static per-prefix ingress ACLs.
    StaticAcl,
    /// Strict reverse-path forwarding.
    StrictUrpf,
    /// Feasible-path reverse-path forwarding.
    FeasibleUrpf,
    /// SDN-SAV, proactive per-host binding rules (the paper's design).
    SdnSav,
    /// SDN-SAV without MAC matching (IP+port binding only).
    SdnSavNoMac,
    /// SDN-SAV with per-port prefix aggregation (coarse mode).
    SdnSavAggregate,
    /// SDN-SAV with per-port *exact-cover* aggregation: minimal CIDR set
    /// admitting precisely the bound addresses.
    SdnSavAggregateExact,
    /// SDN-SAV in reactive (per-packet controller validation) mode.
    SdnSavReactive,
    /// SDN-SAV with FCFS data-plane learning instead of a static plan.
    SdnSavFcfs,
    /// SDN-SAV with a per-port TCAM budget: host rules until the count
    /// exceeds the budget, exact-cover compression beyond it. Parameterised,
    /// so it is not part of [`Mechanism::ALL`] — scenarios opt in with a
    /// concrete budget (Figure 1b sweeps it).
    SdnSavBudgeted(usize),
}

impl Mechanism {
    /// All mechanisms, in the order the paper's comparison table lists them.
    pub const ALL: [Mechanism; 10] = [
        Mechanism::NoSav,
        Mechanism::StaticAcl,
        Mechanism::StrictUrpf,
        Mechanism::FeasibleUrpf,
        Mechanism::SdnSav,
        Mechanism::SdnSavNoMac,
        Mechanism::SdnSavAggregate,
        Mechanism::SdnSavAggregateExact,
        Mechanism::SdnSavReactive,
        Mechanism::SdnSavFcfs,
    ];

    /// Human-readable name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::NoSav => "no-SAV",
            Mechanism::StaticAcl => "static ACL",
            Mechanism::StrictUrpf => "strict uRPF",
            Mechanism::FeasibleUrpf => "feasible uRPF",
            Mechanism::SdnSav => "SDN-SAV",
            Mechanism::SdnSavNoMac => "SDN-SAV (no MAC)",
            Mechanism::SdnSavAggregate => "SDN-SAV (aggregated)",
            Mechanism::SdnSavAggregateExact => "SDN-SAV (exact-agg)",
            Mechanism::SdnSavReactive => "SDN-SAV (reactive)",
            Mechanism::SdnSavFcfs => "SDN-SAV (FCFS)",
            Mechanism::SdnSavBudgeted(_) => "SDN-SAV (budgeted)",
        }
    }

    /// The SAV configuration for the SDN-SAV variants (None for baselines).
    pub fn sav_config(self) -> Option<SavConfig> {
        let base = SavConfig::default();
        match self {
            Mechanism::SdnSav => Some(base),
            Mechanism::SdnSavNoMac => Some(SavConfig {
                match_mac: false,
                ..base
            }),
            Mechanism::SdnSavAggregate => Some(SavConfig {
                aggregate: true,
                ..base
            }),
            Mechanism::SdnSavAggregateExact => Some(SavConfig {
                aggregate: true,
                aggregate_exact: true,
                ..base
            }),
            Mechanism::SdnSavReactive => Some(SavConfig {
                mode: SavMode::Reactive,
                ..base
            }),
            Mechanism::SdnSavFcfs => Some(SavConfig {
                static_plan: false,
                fcfs: true,
                ..base
            }),
            Mechanism::SdnSavBudgeted(budget) => Some(SavConfig {
                tcam_budget: Some(budget),
                ..base
            }),
            _ => None,
        }
    }

    /// Build the full controller app chain for this mechanism.
    /// `sav_overrides` lets scenarios adjust the SAV config (trusted DHCP
    /// ports, iSAV toggles) after the mechanism defaults are applied.
    pub fn build_apps(
        self,
        topo: &Arc<Topology>,
        routes: &Arc<Routes>,
        sav_overrides: impl FnOnce(&mut SavConfig),
    ) -> Vec<Box<dyn App>> {
        let l2: Box<dyn App> = Box::new(L2RoutingApp::new(topo.clone(), routes.clone()));
        let mut border = None;
        let validation: Box<dyn App> = match self {
            Mechanism::NoSav => Box::new(NoSavApp),
            Mechanism::StaticAcl => Box::new(StaticAclApp::new(topo.clone())),
            Mechanism::StrictUrpf => Box::new(StrictUrpfApp::new(topo.clone(), routes.clone())),
            Mechanism::FeasibleUrpf => Box::new(FeasibleUrpfApp::new(topo.clone())),
            _ => {
                let mut cfg = self.sav_config().expect("SDN-SAV variant");
                sav_overrides(&mut cfg);
                border = cfg.border.clone();
                Box::new(SavApp::new(topo.clone(), cfg))
            }
        };
        let mut apps = vec![validation];
        if let Some(bc) = border {
            // The guard is fed by the stats poller's flow-stats replies, so
            // enabling it pulls the poller into the chain with it. Both sit
            // before L2 so the guard's sample punts are consumed rather
            // than unicast-learned.
            let obs = bc.obs.clone().unwrap_or_default();
            apps.push(Box::new(
                StatsPollerApp::new(obs).with_per_binding_gauges(false),
            ));
            apps.push(Box::new(BorderGuardApp::new(topo.clone(), bc)));
        }
        apps.push(l2);
        apps
    }
}

impl std::fmt::Display for Mechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_topo::generators;

    #[test]
    fn every_mechanism_builds_a_chain() {
        let topo = Arc::new(generators::campus(2, 2));
        let routes = Arc::new(Routes::compute(&topo));
        for m in Mechanism::ALL {
            let apps = m.build_apps(&topo, &routes, |_| {});
            assert_eq!(apps.len(), 2, "{m}: validation + forwarding");
            assert_eq!(apps[1].name(), "l2-routing");
        }
    }

    #[test]
    fn sav_configs_differ_as_advertised() {
        assert!(Mechanism::NoSav.sav_config().is_none());
        assert!(Mechanism::SdnSav.sav_config().unwrap().match_mac);
        assert!(!Mechanism::SdnSavNoMac.sav_config().unwrap().match_mac);
        assert!(Mechanism::SdnSavAggregate.sav_config().unwrap().aggregate);
        assert_eq!(
            Mechanism::SdnSavReactive.sav_config().unwrap().mode,
            SavMode::Reactive
        );
        let fcfs = Mechanism::SdnSavFcfs.sav_config().unwrap();
        assert!(fcfs.fcfs && !fcfs.static_plan);
        let budgeted = Mechanism::SdnSavBudgeted(64).sav_config().unwrap();
        assert_eq!(budgeted.tcam_budget, Some(64));
        assert!(!budgeted.aggregate, "budgeted mode is per-host, not coarse");
    }

    #[test]
    fn budgeted_variant_builds_a_chain_too() {
        let topo = Arc::new(generators::campus(2, 2));
        let routes = Arc::new(Routes::compute(&topo));
        let apps = Mechanism::SdnSavBudgeted(128).build_apps(&topo, &routes, |_| {});
        assert_eq!(apps[0].name(), "sdn-sav");
        assert_eq!(apps.len(), 2);
    }

    #[test]
    fn enabling_the_border_guard_pulls_in_the_poller() {
        let topo = Arc::new(generators::multi_as(2, 2).topo);
        let routes = Arc::new(Routes::compute(&topo));
        let apps = Mechanism::SdnSav.build_apps(&topo, &routes, |cfg| {
            cfg.border = Some(sav_core::BorderConfig::default());
        });
        let names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "sdn-sav",
                "sav-stats-poller",
                "sav-border-guard",
                "l2-routing"
            ],
            "guard consumes its sample punts before L2 sees them"
        );
    }

    #[test]
    fn overrides_are_applied() {
        let topo = Arc::new(generators::campus(2, 2));
        let routes = Arc::new(Routes::compute(&topo));
        let apps = Mechanism::SdnSav.build_apps(&topo, &routes, |cfg| {
            cfg.trusted_dhcp_ports.push((1, 9));
        });
        assert_eq!(apps[0].name(), "sdn-sav");
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<&str> =
            Mechanism::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Mechanism::ALL.len());
    }
}
