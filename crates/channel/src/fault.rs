//! Deterministic fault injection between the socket and the deframer.
//!
//! A [`FaultPlan`] sits on the write path of a channel endpoint and decides,
//! per chunk, whether to deliver it intact, delay it, split it into partial
//! writes, silently drop it (corrupting the peer's stream — TCP would never
//! do this, but a broken middlebox or a crashing peer mid-write looks just
//! like it), or abruptly reset the connection. All decisions come from a
//! seeded RNG and an optional fault budget, so a lossy test run is exactly
//! reproducible and provably convergent: once the budget is spent the plan
//! passes everything through and the protocol's recovery path (deframer
//! poison → hangup → reconnect → re-handshake) gets a clean channel.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the transport should do with one outgoing chunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteDecision {
    /// Write these byte chunks in order (possibly a partial split of the
    /// original; possibly empty, meaning the chunk was dropped).
    Chunks(Vec<Vec<u8>>),
    /// Abruptly close the connection without writing anything.
    Reset,
}

/// A shared switch that models a network partition: while engaged, every
/// write through a [`FaultPlan`] carrying this gate is silently dropped.
/// Clone the gate into the fault plans of *both* directions of a link (or
/// of several links) to partition them bidirectionally, then
/// [`PartitionGate::release`] to heal. Unlike the probabilistic faults, a
/// partition is not budget-limited — it lasts exactly as long as the test
/// holds it engaged.
#[derive(Debug, Clone, Default)]
pub struct PartitionGate(Arc<AtomicBool>);

impl PartitionGate {
    /// A new, healed (open) gate.
    pub fn new() -> PartitionGate {
        PartitionGate::default()
    }

    /// Start dropping everything that flows through plans holding this gate.
    pub fn engage(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Heal the partition.
    pub fn release(&self) {
        self.0.store(false, Ordering::SeqCst);
    }

    /// Whether the partition is currently in force.
    pub fn is_engaged(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A deterministic schedule of channel faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    rng: StdRng,
    /// Probability a chunk is silently dropped.
    drop_prob: f64,
    /// Probability a chunk is split into two partial writes.
    split_prob: f64,
    /// Probability the connection is abruptly reset instead of writing.
    reset_prob: f64,
    /// Fixed delay applied before every write (None = no delay).
    latency: Option<Duration>,
    /// Shared partition switch; while engaged, all writes are dropped.
    partition: Option<PartitionGate>,
    /// Faults remaining before the plan falls back to pass-through.
    /// `u64::MAX` means unlimited.
    budget: u64,
    /// Faults injected so far.
    injected: u64,
}

impl FaultPlan {
    /// A plan that never injects anything (the production configuration).
    pub fn none() -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(0),
            drop_prob: 0.0,
            split_prob: 0.0,
            reset_prob: 0.0,
            latency: None,
            partition: None,
            budget: 0,
            injected: 0,
        }
    }

    /// A seeded plan with the given fault probabilities and budget.
    ///
    /// `budget` bounds the *number of injected faults*; after it is spent
    /// the plan is transparent, guaranteeing eventual convergence.
    pub fn seeded(seed: u64, budget: u64) -> FaultPlan {
        FaultPlan {
            rng: StdRng::seed_from_u64(seed),
            budget,
            ..FaultPlan::none()
        }
    }

    /// Set the probability a chunk is silently dropped.
    pub fn with_drops(mut self, p: f64) -> FaultPlan {
        self.drop_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the probability a chunk is split into two partial writes.
    pub fn with_splits(mut self, p: f64) -> FaultPlan {
        self.split_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Set the probability a write triggers an abrupt connection reset.
    pub fn with_resets(mut self, p: f64) -> FaultPlan {
        self.reset_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Add a fixed latency before every write.
    pub fn with_latency(mut self, d: Duration) -> FaultPlan {
        self.latency = Some(d);
        self
    }

    /// Attach a shared [`PartitionGate`]: while it is engaged every write
    /// through this plan is dropped, regardless of budget. Attach the same
    /// gate to the plans on both sides of a link for a bidirectional
    /// partition.
    pub fn with_partition(mut self, gate: PartitionGate) -> FaultPlan {
        self.partition = Some(gate);
        self
    }

    /// Latency to apply before the next write (not budget-limited; latency
    /// does not corrupt anything).
    pub fn delay(&self) -> Option<Duration> {
        self.latency
    }

    /// Faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Whether the budget still allows injecting faults.
    fn armed(&self) -> bool {
        self.injected < self.budget
    }

    /// Decide the fate of one outgoing chunk.
    pub fn on_write(&mut self, data: &[u8]) -> WriteDecision {
        if let Some(gate) = &self.partition {
            if gate.is_engaged() {
                return WriteDecision::Chunks(vec![]);
            }
        }
        if !self.armed() || data.is_empty() {
            return WriteDecision::Chunks(vec![data.to_vec()]);
        }
        if self.reset_prob > 0.0 && self.rng.gen_bool(self.reset_prob) {
            self.injected += 1;
            return WriteDecision::Reset;
        }
        if self.drop_prob > 0.0 && self.rng.gen_bool(self.drop_prob) {
            self.injected += 1;
            return WriteDecision::Chunks(vec![]);
        }
        if self.split_prob > 0.0 && data.len() > 1 && self.rng.gen_bool(self.split_prob) {
            self.injected += 1;
            let cut = self.rng.gen_range(1..data.len());
            return WriteDecision::Chunks(vec![data[..cut].to_vec(), data[cut..].to_vec()]);
        }
        WriteDecision::Chunks(vec![data.to_vec()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_transparent() {
        let mut p = FaultPlan::none();
        for _ in 0..100 {
            assert_eq!(
                p.on_write(b"abc"),
                WriteDecision::Chunks(vec![b"abc".to_vec()])
            );
        }
        assert_eq!(p.injected(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut p = FaultPlan::seeded(seed, u64::MAX)
                .with_drops(0.3)
                .with_splits(0.3)
                .with_resets(0.05);
            (0..200)
                .map(|i| p.on_write(&[i as u8; 16]))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn budget_bounds_total_faults() {
        let mut p = FaultPlan::seeded(9, 5).with_drops(1.0);
        let mut dropped = 0;
        for _ in 0..100 {
            if p.on_write(b"x") == WriteDecision::Chunks(vec![]) {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 5, "exactly the budget gets injected");
        assert_eq!(p.injected(), 5);
        // And afterwards the plan is transparent.
        assert_eq!(
            p.on_write(b"ok"),
            WriteDecision::Chunks(vec![b"ok".to_vec()])
        );
    }

    /// One gate shared by the plans of both directions of a link: while
    /// engaged everything is dropped both ways (a true bidirectional
    /// partition), on release both directions heal — and the partition
    /// never consumes the probabilistic fault budget.
    #[test]
    fn partition_gate_drops_both_directions_until_released() {
        let gate = PartitionGate::new();
        let mut a_to_b = FaultPlan::none().with_partition(gate.clone());
        let mut b_to_a = FaultPlan::none().with_partition(gate.clone());
        assert_eq!(
            a_to_b.on_write(b"pre"),
            WriteDecision::Chunks(vec![b"pre".to_vec()])
        );
        gate.engage();
        assert!(gate.is_engaged());
        for _ in 0..10 {
            assert_eq!(a_to_b.on_write(b"x"), WriteDecision::Chunks(vec![]));
            assert_eq!(b_to_a.on_write(b"y"), WriteDecision::Chunks(vec![]));
        }
        gate.release();
        assert_eq!(
            a_to_b.on_write(b"post"),
            WriteDecision::Chunks(vec![b"post".to_vec()])
        );
        assert_eq!(
            b_to_a.on_write(b"post"),
            WriteDecision::Chunks(vec![b"post".to_vec()])
        );
        assert_eq!(a_to_b.injected(), 0, "partition is not a budgeted fault");
        assert_eq!(b_to_a.injected(), 0);
    }

    #[test]
    fn splits_preserve_bytes() {
        let mut p = FaultPlan::seeded(3, u64::MAX).with_splits(1.0);
        let data = b"0123456789";
        match p.on_write(data) {
            WriteDecision::Chunks(chunks) => {
                assert_eq!(chunks.len(), 2);
                let joined: Vec<u8> = chunks.concat();
                assert_eq!(joined, data);
                assert!(!chunks[0].is_empty() && !chunks[1].is_empty());
            }
            other => panic!("expected a split, got {other:?}"),
        }
    }
}
