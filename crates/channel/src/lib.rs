//! # sav-channel — a real TCP southbound transport
//!
//! Every other crate in this workspace is sans-IO: the controller and the
//! switch are state machines fed bytes and virtual time. This crate is the
//! missing I/O layer — the piece that turns those state machines into a
//! deployable control plane over real sockets:
//!
//! * [`SouthboundServer`] — the controller side. One readiness event
//!   loop (built on `sav-poll`) owns the nonblocking listener, every
//!   switch socket, and a timer wheel: it drives the [`Controller`]
//!   state machine, drains per-connection outboxes with vectored
//!   `writev` (backpressure: a switch that stops reading stalls its
//!   outbox, and a stalled outbox gets the connection killed), sends
//!   ECHO keepalives, and declares silent switches dead on a liveness
//!   deadline — at 10k-connection scale on a single thread.
//! * [`client::spawn`] — the switch side. Dials the controller, replays
//!   the handshake through the sans-IO [`OpenFlowSwitch`] core, and
//!   reconnects forever with capped exponential backoff and seeded jitter.
//!   Filtering state is restored end-to-end by the existing app logic
//!   (`on_switch_up` re-installs SAV rules), so recovery needs no manual
//!   re-binding.
//! * [`FaultPlan`] — deterministic fault injection (latency, probabilistic
//!   drops, partial writes, abrupt resets) between the socket and the
//!   deframer, with a fault budget so lossy runs provably converge.
//! * [`ChannelMetrics`] — per-connection transport counters and an echo
//!   RTT histogram, built on `sav-metrics`.
//!
//! Threading model: no async runtime. The server is one event-loop
//! thread over epoll/kqueue readiness (`sav-poll`); the client keeps the
//! simple thread-per-link shape (a switch has one link). All unsafe FFI
//! lives in `sav-poll`; this crate remains `#![forbid(unsafe_code)]`
//! while exercising the protocol cores over a real kernel TCP stack.
//!
//! [`Controller`]: sav_controller::Controller
//! [`OpenFlowSwitch`]: sav_dataplane::switch::OpenFlowSwitch

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod fault;
pub mod metrics;
pub mod server;

pub use backoff::BackoffPolicy;
pub use client::{ClientConfig, ClientHandle, Link};
pub use fault::{FaultPlan, PartitionGate, WriteDecision};
pub use metrics::{ChannelMetrics, ChannelStats};
pub use server::{ServerConfig, SouthboundServer};
