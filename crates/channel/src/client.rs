//! Switch-side TCP transport: dial the controller, keep dialing.
//!
//! [`spawn`] runs an [`OpenFlowSwitch`] behind a real `TcpStream` on its
//! own thread. The loop replays the handshake through the sans-IO switch
//! core on every (re-)connection — [`OpenFlowSwitch::on_control_reconnect`]
//! resets the stream state, the controller's `on_switch_up` re-installs SAV
//! rules, so recovery needs no manual re-binding. Connection attempts back
//! off exponentially with seeded jitter ([`crate::backoff`]), and every
//! outgoing write passes through the connection's [`FaultPlan`].

use crate::backoff::BackoffPolicy;
use crate::fault::{FaultPlan, WriteDecision};
use crate::metrics::ChannelMetrics;
use crossbeam::channel::{unbounded, Receiver, Sender};
use sav_dataplane::switch::{OpenFlowSwitch, SwitchOutput};
use sav_openflow::messages::ControllerRole;
use sav_sim::SimTime;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for one switch's control channel.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Reconnect schedule.
    pub backoff: BackoffPolicy,
    /// Fault injection applied to every outgoing write.
    pub fault: FaultPlan,
    /// Socket read timeout (bounds the event-loop latency).
    pub read_timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            backoff: BackoffPolicy::default(),
            fault: FaultPlan::none(),
            read_timeout: Duration::from_millis(10),
        }
    }
}

/// A point-to-point data-plane wire: frames leaving `local_port` arrive at
/// the peer injector as `(peer_port, frame)`.
pub struct Link {
    /// Egress port on this switch.
    pub local_port: u32,
    /// The peer switch's frame injector.
    pub peer: Sender<(u32, Vec<u8>)>,
    /// Ingress port on the peer switch.
    pub peer_port: u32,
}

/// Handle to a running switch-side channel.
pub struct ClientHandle {
    stop: Arc<AtomicBool>,
    drop_now: Arc<AtomicBool>,
    injector: Sender<(u32, Vec<u8>)>,
    metrics: ChannelMetrics,
    thread: Option<thread::JoinHandle<()>>,
}

impl ClientHandle {
    /// Inject a data-plane frame as if it arrived on `port`.
    pub fn injector(&self) -> Sender<(u32, Vec<u8>)> {
        self.injector.clone()
    }

    /// This connection's transport metrics.
    pub fn metrics(&self) -> ChannelMetrics {
        self.metrics.clone()
    }

    /// Abruptly sever the current TCP connection (no goodbye), simulating
    /// a switch crash. The client then reconnects with backoff.
    pub fn drop_connection(&self) {
        self.drop_now.store(true, Ordering::Relaxed);
    }

    /// Stop the loop and join the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ClientHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

/// Start a switch dialing `addr`. Frames the pipeline emits on a port in
/// `links` cross to the peer switch; frames on any other port go to
/// `delivered` (host-facing delivery, observable by tests).
pub fn spawn(
    addr: SocketAddr,
    switch: OpenFlowSwitch,
    config: ClientConfig,
    links: Vec<Link>,
    delivered: Sender<(u32, Vec<u8>)>,
) -> ClientHandle {
    spawn_multi(vec![addr], switch, config, links, delivered)
}

/// Start a switch with a controller failover list: `addrs` are tried in
/// rotation. While a connection is serving (a controller asserted Master
/// on it) the switch stays put; any connection that dies without having
/// reached that point — unreachable address, refused dial, or an accepted
/// connection that was role-rejected or hung up mid-handshake — advances
/// the dialer to the next address. A deposed ex-leader whose listener is
/// still bound therefore cannot capture the switch in a redial loop; the
/// real leader is found within one backoff cycle. Panics if `addrs` is
/// empty.
pub fn spawn_multi(
    addrs: Vec<SocketAddr>,
    switch: OpenFlowSwitch,
    config: ClientConfig,
    links: Vec<Link>,
    delivered: Sender<(u32, Vec<u8>)>,
) -> ClientHandle {
    assert!(!addrs.is_empty(), "need at least one controller address");
    let stop = Arc::new(AtomicBool::new(false));
    let drop_now = Arc::new(AtomicBool::new(false));
    let metrics = ChannelMetrics::new();
    let (inject_tx, inject_rx) = unbounded::<(u32, Vec<u8>)>();
    let thread = {
        let stop = stop.clone();
        let drop_now = drop_now.clone();
        let metrics = metrics.clone();
        thread::spawn(move || {
            ClientLoop {
                addrs,
                switch,
                config,
                links,
                delivered,
                inject_rx,
                stop,
                drop_now,
                metrics,
                started: Instant::now(),
            }
            .run()
        })
    };
    ClientHandle {
        stop,
        drop_now,
        injector: inject_tx,
        metrics,
        thread: Some(thread),
    }
}

struct ClientLoop {
    addrs: Vec<SocketAddr>,
    switch: OpenFlowSwitch,
    config: ClientConfig,
    links: Vec<Link>,
    delivered: Sender<(u32, Vec<u8>)>,
    inject_rx: Receiver<(u32, Vec<u8>)>,
    stop: Arc<AtomicBool>,
    drop_now: Arc<AtomicBool>,
    metrics: ChannelMetrics,
    started: Instant,
}

/// Why the per-connection serve loop ended.
enum ConnEnd {
    /// Reconnect (peer closed, poisoned stream, injected reset, crash).
    Retry {
        /// True if this connection reached a serving state (the
        /// controller asserted Master on it). Governs failover rotation:
        /// a connection that never got there counts against its address.
        ready: bool,
    },
    /// The handle asked the whole client to stop.
    Stopped,
}

impl ClientLoop {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn run(mut self) {
        let mut backoff = self.config.backoff.start();
        let mut fault = self.config.fault.clone();
        let mut connections = 0u64;
        let mut which = 0usize;
        while !self.stop.load(Ordering::Relaxed) {
            let addr = self.addrs[which % self.addrs.len()];
            let stream = match TcpStream::connect(addr) {
                Ok(s) => s,
                Err(_) => {
                    // This controller is unreachable; rotate to the next
                    // one in the failover list after the backoff sleep.
                    which = which.wrapping_add(1);
                    if !self.sleep_interruptibly(backoff.next_delay()) {
                        return;
                    }
                    continue;
                }
            };
            backoff.reset();
            connections += 1;
            if connections > 1 {
                self.metrics.add_reconnect();
            }
            match self.serve(stream, &mut fault) {
                ConnEnd::Stopped => return,
                ConnEnd::Retry { ready } => {
                    if !ready {
                        // Accepted but never served — e.g. a deposed
                        // ex-leader's listener that role-rejects and hangs
                        // up. Try the next controller, don't redial this
                        // one forever.
                        which = which.wrapping_add(1);
                    }
                    if !self.sleep_interruptibly(backoff.next_delay()) {
                        return;
                    }
                }
            }
        }
    }

    /// Sleep in slices so `stop` stays responsive; false = stop requested.
    fn sleep_interruptibly(&self, total: Duration) -> bool {
        let deadline = Instant::now() + total;
        while Instant::now() < deadline {
            if self.stop.load(Ordering::Relaxed) {
                return false;
            }
            thread::sleep(Duration::from_millis(5).min(total));
        }
        true
    }

    fn serve(&mut self, mut stream: TcpStream, fault: &mut FaultPlan) -> ConnEnd {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(self.config.read_timeout));
        // `on_control_reconnect` reset the role to Equal; the connection
        // counts as serving once this controller asserts Master over it.
        let mut ready = false;
        let hello = self.switch.on_control_reconnect();
        if !self.write_faulty(&mut stream, fault, hello) {
            return ConnEnd::Retry { ready };
        }
        let mut buf = [0u8; 8192];
        loop {
            if self.stop.load(Ordering::Relaxed) {
                let _ = stream.shutdown(Shutdown::Both);
                return ConnEnd::Stopped;
            }
            if self.drop_now.swap(false, Ordering::Relaxed) {
                // Simulated crash: cut the socket with no farewell.
                let _ = stream.shutdown(Shutdown::Both);
                return ConnEnd::Retry { ready };
            }
            // Data plane first: frames waiting at ports.
            while let Ok((port, frame)) = self.inject_rx.try_recv() {
                let out = self.switch.receive_frame(self.now(), port, frame);
                if !self.route(&mut stream, fault, out) {
                    return ConnEnd::Retry { ready };
                }
            }
            // Control plane: bytes from the controller.
            match stream.read(&mut buf) {
                Ok(0) => return ConnEnd::Retry { ready },
                Ok(n) => {
                    self.metrics.add_bytes_in(n as u64);
                    match self.switch.handle_controller_bytes(self.now(), &buf[..n]) {
                        Ok(out) => {
                            ready |= self.switch.role() == ControllerRole::Master;
                            if !self.route(&mut stream, fault, out) {
                                return ConnEnd::Retry { ready };
                            }
                        }
                        Err(e) => {
                            if let Some(bye) = self.switch.goodbye(e) {
                                let _ = self.write_faulty(&mut stream, fault, bye);
                            }
                            let _ = stream.shutdown(Shutdown::Both);
                            return ConnEnd::Retry { ready };
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
                Err(_) => return ConnEnd::Retry { ready },
            }
        }
    }

    /// Send a switch output batch: control bytes up the socket, data frames
    /// across links or to delivery. False = connection must be retried.
    fn route(&mut self, stream: &mut TcpStream, fault: &mut FaultPlan, out: SwitchOutput) -> bool {
        for bytes in out.to_controller {
            if !self.write_faulty(stream, fault, bytes) {
                return false;
            }
        }
        for (port, frame) in out.tx {
            match self.links.iter().find(|l| l.local_port == port) {
                Some(link) => {
                    let _ = link.peer.send((link.peer_port, frame));
                }
                None => {
                    let _ = self.delivered.send((port, frame));
                }
            }
        }
        true
    }

    /// Write through the fault plan. False = the connection was reset
    /// (injected or real I/O failure) and must be retried.
    fn write_faulty(&self, stream: &mut TcpStream, fault: &mut FaultPlan, bytes: Vec<u8>) -> bool {
        self.metrics.add_msgs_out(1);
        if let Some(d) = fault.delay() {
            thread::sleep(d);
        }
        match fault.on_write(&bytes) {
            WriteDecision::Reset => {
                let _ = stream.shutdown(Shutdown::Both);
                false
            }
            WriteDecision::Chunks(chunks) => {
                for chunk in chunks {
                    if stream.write_all(&chunk).is_err() {
                        return false;
                    }
                    self.metrics.add_bytes_out(chunk.len() as u64);
                }
                true
            }
        }
    }
}
