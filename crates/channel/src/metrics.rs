//! Per-connection channel metrics, shared between transport threads.

use parking_lot::Mutex;
use sav_metrics::Histogram;
use std::sync::Arc;

/// Snapshot of one connection's transport counters.
#[derive(Debug, Clone, Default)]
pub struct ChannelStats {
    /// Raw bytes read off the socket.
    pub bytes_in: u64,
    /// Raw bytes written to the socket.
    pub bytes_out: u64,
    /// Complete OpenFlow messages parsed from the inbound stream.
    pub msgs_in: u64,
    /// OpenFlow messages queued for writing.
    pub msgs_out: u64,
    /// High-water mark of the outbound queue depth.
    pub queue_hwm: usize,
    /// Times this endpoint (re-)established its connection.
    pub reconnects: u64,
    /// Switches declared dead by the keepalive deadline (server side).
    pub dead_declared: u64,
}

/// Thread-shared metrics handle: counters plus an echo-RTT histogram.
#[derive(Clone, Default)]
pub struct ChannelMetrics {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    stats: ChannelStats,
    echo_rtt: Histogram,
    handshake_latency: Histogram,
}

impl ChannelMetrics {
    /// Fresh zeroed metrics.
    pub fn new() -> ChannelMetrics {
        ChannelMetrics::default()
    }

    /// Record bytes read off the socket.
    pub fn add_bytes_in(&self, n: u64) {
        self.inner.lock().stats.bytes_in += n;
    }

    /// Record bytes written to the socket.
    pub fn add_bytes_out(&self, n: u64) {
        self.inner.lock().stats.bytes_out += n;
    }

    /// Record messages parsed from the inbound stream.
    pub fn add_msgs_in(&self, n: u64) {
        self.inner.lock().stats.msgs_in += n;
    }

    /// Record messages queued for writing.
    pub fn add_msgs_out(&self, n: u64) {
        self.inner.lock().stats.msgs_out += n;
    }

    /// Observe the outbound queue depth (keeps the high-water mark).
    pub fn observe_queue_depth(&self, depth: usize) {
        let mut g = self.inner.lock();
        if depth > g.stats.queue_hwm {
            g.stats.queue_hwm = depth;
        }
    }

    /// Record a successful (re-)connection.
    pub fn add_reconnect(&self) {
        self.inner.lock().stats.reconnects += 1;
    }

    /// Record a keepalive-deadline death verdict.
    pub fn add_dead_declared(&self) {
        self.inner.lock().stats.dead_declared += 1;
    }

    /// Record one echo round-trip time, in seconds.
    pub fn record_echo_rtt(&self, rtt_secs: f64) {
        self.inner.lock().echo_rtt.record(rtt_secs);
    }

    /// Record one accept-to-ready handshake latency, in seconds.
    pub fn record_handshake_latency(&self, secs: f64) {
        self.inner.lock().handshake_latency.record(secs);
    }

    /// Copy out the counters.
    pub fn stats(&self) -> ChannelStats {
        self.inner.lock().stats.clone()
    }

    /// Copy out the echo RTT histogram.
    pub fn echo_rtt(&self) -> Histogram {
        self.inner.lock().echo_rtt.clone()
    }

    /// Copy out the accept-to-ready handshake latency histogram.
    pub fn handshake_latency(&self) -> Histogram {
        self.inner.lock().handshake_latency.clone()
    }

    /// Discard accumulated echo RTT samples. Benches use this to scope a
    /// measurement window to steady state (post-connect churn excluded).
    pub fn reset_echo_rtt(&self) {
        self.inner.lock().echo_rtt = Histogram::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ChannelMetrics::new();
        m.add_bytes_in(10);
        m.add_bytes_out(4);
        m.add_msgs_in(2);
        m.add_msgs_out(1);
        m.observe_queue_depth(3);
        m.observe_queue_depth(1); // does not lower the high-water mark
        m.add_reconnect();
        m.record_echo_rtt(0.002);
        let s = m.stats();
        assert_eq!(s.bytes_in, 10);
        assert_eq!(s.bytes_out, 4);
        assert_eq!(s.msgs_in, 2);
        assert_eq!(s.msgs_out, 1);
        assert_eq!(s.queue_hwm, 3);
        assert_eq!(s.reconnects, 1);
        assert_eq!(m.echo_rtt().count(), 1);
        // Clones share state (it's the thread-sharing handle).
        let m2 = m.clone();
        m2.add_bytes_in(5);
        assert_eq!(m.stats().bytes_in, 15);
    }
}
