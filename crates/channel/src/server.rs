//! Controller-side TCP transport: the southbound server.
//!
//! [`SouthboundServer`] owns a real `TcpListener` and embeds the sans-IO
//! [`Controller`] behind it. One **event-loop thread** owns everything:
//! the nonblocking listener, every switch socket, and the timer wheel —
//! there are no per-connection threads, which is what lets a single
//! controller hold 10k switch connections (see the `fig_c10k` bench).
//!
//! Mechanics, built on `sav-poll`:
//!
//! * **Readiness**: sockets are registered level-triggered in a
//!   [`Poller`]; readable events feed pooled scratch buffers through the
//!   existing deframer via [`Controller::on_bytes`], with a per-wakeup
//!   read cap so one firehose switch cannot starve 9,999 quiet ones.
//! * **Single-writer rule**: only the loop thread writes sockets. Frames
//!   queue in a per-connection [`Outbox`] drained with vectored `writev`;
//!   `WouldBlock` arms write interest and a stall deadline — a switch
//!   that stops reading gets its connection killed, never the whole
//!   control plane wedged.
//! * **Timer wheel**: per-connection ECHO keepalives and liveness
//!   deadlines, the stats poll tick, and accept-error backoff are all
//!   wheel timers; the poll timeout is the wheel's next deadline, so the
//!   loop is fully readiness-driven — no sleep-polling anywhere.
//! * **Accept resilience**: transient accept errors (`EMFILE` under fd
//!   exhaustion, aborted handshakes) emit a journal event and the
//!   `sav_accept_errors_total` counter, then pause the listener for a
//!   capped backoff instead of silently killing accepting forever.
//!
//! Wall-clock time maps onto the sans-IO core's [`SimTime`] as nanoseconds
//! since the server started.

use crate::metrics::ChannelMetrics;
use parking_lot::Mutex;
use sav_controller::{ConnId, Controller, ControllerOutput};
use sav_obs::{EventKind, Obs, Severity};
use sav_poll::{BufferPool, Events, Interest, Outbox, Poller, Slab, TimerWheel, Token};
use sav_sim::SimTime;
use std::collections::HashMap;
use std::io::{IoSliceMut, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for the southbound transport.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interval between controller-initiated ECHO keepalives per switch.
    pub echo_interval: Duration,
    /// A switch silent for this long is declared dead and torn down.
    pub liveness_timeout: Duration,
    /// Outbound queue capacity per connection (messages): the depth past
    /// which a non-draining connection counts as stalled.
    pub outbound_queue: usize,
    /// How long an outbound queue may make no progress before the
    /// connection is declared stuck and killed.
    pub write_stall_timeout: Duration,
    /// Fire [`Controller::poll_tick`] for every ready switch at this
    /// interval (statistics collection). `None` disables polling.
    pub stats_poll_interval: Option<Duration>,
    /// Observability handle: connection churn reaches its journal, TCP
    /// send latency its `southbound_send` trace histogram, and the event
    /// loop exports `sav_poll_wakeups_total`,
    /// `sav_writev_batched_frames_total`, `sav_accept_errors_total`, and
    /// the `sav_southbound_backlog_bytes` gauge.
    pub obs: Option<Obs>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            echo_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(2),
            outbound_queue: 256,
            write_stall_timeout: Duration::from_secs(1),
            stats_poll_interval: None,
            obs: None,
        }
    }
}

/// The listener's poller token; connections start at [`CONN_TOKEN_BASE`].
const TOKEN_LISTENER: Token = Token(0);
const CONN_TOKEN_BASE: usize = 1;
/// Poll events delivered per wakeup.
const EVENTS_CAPACITY: usize = 1024;
/// Read scratch buffer size; reads are vectored across two of these.
const READ_BUF_SIZE: usize = 16 * 1024;
/// Fairness cap: `readv` calls per connection per wakeup. Level
/// triggering re-reports a still-full socket on the next wait.
const MAX_READS_PER_WAKE: usize = 8;
/// Accept-error backoff bounds (doubles per consecutive failure).
const ACCEPT_BACKOFF_MIN: Duration = Duration::from_millis(10);
const ACCEPT_BACKOFF_MAX: Duration = Duration::from_secs(1);

/// A running controller endpoint bound to a TCP address.
pub struct SouthboundServer {
    addr: SocketAddr,
    controller: Arc<Mutex<Controller>>,
    conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>>,
    server_metrics: ChannelMetrics,
    stop: Arc<AtomicBool>,
    waker: sav_poll::Waker,
    threads: Vec<thread::JoinHandle<()>>,
}

impl SouthboundServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving switches with
    /// the given controller.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        mut controller: Controller,
    ) -> std::io::Result<SouthboundServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The controller shares the server's observability handle so its
        // own instrumentation (causal trace completion, abandonment
        // counters) lands in the same registry the channel reports into.
        if let Some(obs) = &config.obs {
            controller.set_obs(obs.clone());
        }
        let controller = Arc::new(Mutex::new(controller));
        let conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let server_metrics = ChannelMetrics::new();
        let stop = Arc::new(AtomicBool::new(false));

        let poller = Poller::new(EVENTS_CAPACITY)?;
        let waker = poller.waker()?;
        poller.register(&listener, TOKEN_LISTENER, Interest::READABLE)?;

        let event_loop = EventLoop {
            config,
            controller: controller.clone(),
            conn_metrics: conn_metrics.clone(),
            server_metrics: server_metrics.clone(),
            stop: stop.clone(),
            poller,
            listener,
            listener_paused: false,
            accept_backoff: ACCEPT_BACKOFF_MIN,
            conns: Slab::new(),
            by_conn: HashMap::new(),
            next_conn: 0,
            wheel: TimerWheel::new(Duration::from_millis(1), 1024),
            pool: BufferPool::new(READ_BUF_SIZE, 64),
            started: Instant::now(),
            backlog_bytes: 0,
            published_backlog: 0,
        };
        let handle = thread::Builder::new()
            .name("sav-southbound".into())
            .spawn(move || event_loop.run())?;

        Ok(SouthboundServer {
            addr,
            controller,
            conn_metrics,
            server_metrics,
            stop,
            waker,
            threads: vec![handle],
        })
    }

    /// [`bind`](SouthboundServer::bind), retrying while the port is still
    /// held by a dying predecessor.
    ///
    /// A restarting controller wants its old address back so switches can
    /// reconnect without reconfiguration, but the previous process's socket
    /// may linger (`TIME_WAIT`, or its event loop not yet joined). Retries
    /// `AddrInUse` until `deadline` elapses, pacing attempts with a timed
    /// poller wait (readiness idiom, not a thread sleep); any other error
    /// is returned immediately.
    pub fn bind_with_retry(
        addr: impl ToSocketAddrs + Clone,
        config: ServerConfig,
        mut controller: impl FnMut() -> Controller,
        deadline: Duration,
    ) -> std::io::Result<SouthboundServer> {
        let started = Instant::now();
        let mut pacer = Poller::new(1)?;
        let mut events = Events::with_capacity(1);
        loop {
            match SouthboundServer::bind(addr.clone(), config.clone(), controller()) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse
                        && started.elapsed() < deadline =>
                {
                    let _ = pacer.wait(&mut events, Some(Duration::from_millis(20)));
                }
                other => return other,
            }
        }
    }

    /// The address switches should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The embedded controller, for state inspection (tests, the harness).
    pub fn controller(&self) -> Arc<Mutex<Controller>> {
        self.controller.clone()
    }

    /// Transport metrics for one connection, if it ever existed.
    pub fn conn_metrics(&self, conn: ConnId) -> Option<ChannelMetrics> {
        self.conn_metrics.lock().get(&conn).cloned()
    }

    /// Server-wide transport metrics (deaths declared, echo RTTs,
    /// handshake latencies).
    pub fn server_metrics(&self) -> ChannelMetrics {
        self.server_metrics.clone()
    }

    /// Stop accepting, tear down all connections, and join the loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        self.waker.wake();
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SouthboundServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Wheel payloads. There is no cancel: payloads carry the connection id,
/// and ids are never reused, so a timer for a dead connection is a no-op.
enum Timer {
    /// Per-connection keepalive cadence: liveness check + ECHO send.
    Echo(ConnId),
    /// A blocked outbox's no-progress deadline.
    Stall(ConnId),
    /// The stats poll tick.
    StatsPoll,
    /// Re-enable the paused listener after an accept error.
    AcceptRetry,
}

struct ConnIo {
    conn: ConnId,
    stream: TcpStream,
    outbox: Outbox,
    /// Write interest currently registered (avoids modify churn).
    want_write: bool,
    /// A [`Timer::Stall`] is pending for this connection.
    stall_armed: bool,
    last_heard: Instant,
    /// Last instant the kernel accepted outbound bytes.
    last_progress: Instant,
    accepted_at: Instant,
    /// Handshake latency already recorded.
    handshake_seen: bool,
    metrics: ChannelMetrics,
}

struct EventLoop {
    config: ServerConfig,
    controller: Arc<Mutex<Controller>>,
    conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>>,
    server_metrics: ChannelMetrics,
    stop: Arc<AtomicBool>,
    poller: Poller,
    listener: TcpListener,
    /// Listener deregistered while backing off an accept error.
    listener_paused: bool,
    accept_backoff: Duration,
    /// Connection state, keyed by poller token minus [`CONN_TOKEN_BASE`]
    /// — O(1) on the hot read path.
    conns: Slab<ConnIo>,
    /// Monotonic connection id → slab key, for controller-output routing.
    by_conn: HashMap<ConnId, usize>,
    next_conn: ConnId,
    wheel: TimerWheel<Timer>,
    pool: BufferPool,
    started: Instant,
    /// Running total of unwritten outbound bytes across connections.
    backlog_bytes: u64,
    /// Last value published to the backlog gauge.
    published_backlog: u64,
}

impl EventLoop {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns())
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn run(mut self) {
        let mut events = Events::with_capacity(EVENTS_CAPACITY);
        let mut due: Vec<Timer> = Vec::new();
        if let Some(interval) = self.config.stats_poll_interval {
            self.wheel.insert(self.now_ns(), interval, Timer::StatsPoll);
        }
        // Register the backlog gauge at zero so it is on the scrape even
        // before any connection ever pushes back.
        if let Some(obs) = &self.config.obs {
            obs.gauges.set("sav_southbound_backlog_bytes", 0.0);
        }
        loop {
            if self.stop.load(Ordering::Relaxed) {
                self.teardown();
                return;
            }
            // Sleep exactly until the next deadline (or forever when
            // nothing is armed — an accept or a wake ends the wait).
            let timeout = self.wheel.next_deadline(self.now_ns());
            if self.poller.wait(&mut events, timeout).is_err() {
                self.teardown();
                return;
            }
            if let Some(obs) = &self.config.obs {
                obs.counters.incr("sav_poll_wakeups_total");
            }
            if self.stop.load(Ordering::Relaxed) {
                self.teardown();
                return;
            }
            for ev in &events {
                if ev.token == TOKEN_LISTENER {
                    self.accept_ready();
                    continue;
                }
                let key = ev.token.0 - CONN_TOKEN_BASE;
                if ev.readable {
                    self.read_ready(key);
                }
                if ev.writable {
                    self.write_ready(key);
                }
            }
            due.clear();
            self.wheel.expire(self.now_ns(), &mut due);
            for t in due.drain(..) {
                self.on_timer(t);
            }
            self.publish_backlog();
        }
    }

    fn teardown(&mut self) {
        for key in self.conns.keys() {
            let Some(conn) = self.conns.get(key).map(|io| io.conn) else {
                continue;
            };
            self.disconnect(conn);
        }
    }

    fn publish_backlog(&mut self) {
        if self.backlog_bytes != self.published_backlog {
            if let Some(obs) = &self.config.obs {
                obs.gauges
                    .set("sav_southbound_backlog_bytes", self.backlog_bytes as f64);
            }
            self.published_backlog = self.backlog_bytes;
        }
    }

    // ---- accept path ----------------------------------------------------

    fn accept_ready(&mut self) {
        if self.listener_paused {
            return;
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.accept_backoff = ACCEPT_BACKOFF_MIN;
                    self.on_accepted(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => {
                    // EMFILE, ECONNABORTED, and friends: never abandon the
                    // listener. Count it, journal it, pause accepting for a
                    // capped backoff, then resume.
                    if let Some(obs) = &self.config.obs {
                        obs.counters.incr("sav_accept_errors_total");
                        obs.event(
                            Severity::Error,
                            EventKind::AcceptError {
                                error: e.to_string(),
                            },
                        );
                    }
                    let _ = self.poller.deregister(&self.listener);
                    self.listener_paused = true;
                    self.wheel
                        .insert(self.now_ns(), self.accept_backoff, Timer::AcceptRetry);
                    self.accept_backoff = (self.accept_backoff * 2).min(ACCEPT_BACKOFF_MAX);
                    break;
                }
            }
        }
    }

    fn on_accepted(&mut self, stream: TcpStream) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let metrics = ChannelMetrics::new();
        self.conn_metrics.lock().insert(conn, metrics.clone());
        let now = Instant::now();
        let key = self.conns.insert(ConnIo {
            conn,
            stream,
            outbox: Outbox::new(),
            want_write: false,
            stall_armed: false,
            last_heard: now,
            last_progress: now,
            accepted_at: now,
            handshake_seen: false,
            metrics,
        });
        let token = Token(key + CONN_TOKEN_BASE);
        let registered = {
            let io = self.conns.get(key).expect("just inserted");
            self.poller.register(&io.stream, token, Interest::READABLE)
        };
        if registered.is_err() {
            self.conns.remove(key);
            return;
        }
        self.by_conn.insert(conn, key);
        if let Some(obs) = &self.config.obs {
            obs.event(
                Severity::Info,
                EventKind::PeerConnected { conn: conn as u64 },
            );
        }
        // Phase-spread the first echo across the interval by connection id
        // so keepalives for batch-accepted fleets don't fire as one
        // thundering herd every interval (re-arms keep the phase).
        let phase = self
            .config
            .echo_interval
            .mul_f64((conn % 1024) as f64 / 1024.0);
        self.wheel.insert(
            self.now_ns(),
            self.config.echo_interval - phase,
            Timer::Echo(conn),
        );
        let greeting = self.controller.lock().on_connect(conn);
        self.queue_write(conn, greeting);
    }

    // ---- read path ------------------------------------------------------

    fn read_ready(&mut self, key: usize) {
        for _ in 0..MAX_READS_PER_WAKE {
            let Some(io) = self.conns.get_mut(key) else {
                return;
            };
            let conn = io.conn;
            let mut b1 = self.pool.get();
            let mut b2 = self.pool.get();
            let res = {
                let mut iov = [IoSliceMut::new(&mut b1), IoSliceMut::new(&mut b2)];
                io.stream.read_vectored(&mut iov)
            };
            match res {
                Ok(0) => {
                    self.pool.put(b1);
                    self.pool.put(b2);
                    self.disconnect(conn);
                    return;
                }
                Ok(n) => {
                    io.last_heard = Instant::now();
                    io.metrics.add_bytes_in(n as u64);
                    let n1 = n.min(READ_BUF_SIZE);
                    let n2 = n - n1;
                    let ok = self.feed_controller(conn, &b1[..n1], &b2[..n2]);
                    self.pool.put(b1);
                    self.pool.put(b2);
                    if !ok {
                        // Framing/codec failure: the stream cannot be
                        // trusted again.
                        self.disconnect(conn);
                        return;
                    }
                    if n < 2 * READ_BUF_SIZE {
                        return; // socket drained
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {
                    self.pool.put(b1);
                    self.pool.put(b2);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    self.pool.put(b1);
                    self.pool.put(b2);
                    return;
                }
                Err(_) => {
                    self.pool.put(b1);
                    self.pool.put(b2);
                    self.disconnect(conn);
                    return;
                }
            }
        }
        // Fairness cap hit: the still-readable socket re-reports on the
        // next wait under level triggering.
    }

    /// Push `a` then `b` through the controller; `false` means the stream
    /// is poisoned and must be torn down.
    fn feed_controller(&mut self, conn: ConnId, a: &[u8], b: &[u8]) -> bool {
        let now = self.now();
        let (out, parsed, ready) = {
            let mut ctrl = self.controller.lock();
            let before = ctrl.stats.rx_messages;
            let mut merged = ControllerOutput::default();
            let mut ok = true;
            for chunk in [a, b] {
                if chunk.is_empty() {
                    continue;
                }
                match ctrl.on_bytes(now, conn, chunk) {
                    Ok(out) => {
                        merged.to_switch.extend(out.to_switch);
                        merged.echo_replies.extend(out.echo_replies);
                        merged.hangups.extend(out.hangups);
                    }
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            let parsed = ctrl.stats.rx_messages - before;
            let ready = ok && ctrl.conn_ready(conn);
            (ok.then_some(merged), parsed, ready)
        };
        let Some(out) = out else {
            return false;
        };
        if let Some(&key) = self.by_conn.get(&conn) {
            if let Some(io) = self.conns.get_mut(key) {
                io.metrics.add_msgs_in(parsed);
                if ready && !io.handshake_seen {
                    io.handshake_seen = true;
                    let secs = io.accepted_at.elapsed().as_secs_f64();
                    io.metrics.record_handshake_latency(secs);
                    self.server_metrics.record_handshake_latency(secs);
                }
            }
        }
        self.dispatch(out);
        true
    }

    // ---- write path -----------------------------------------------------

    /// Route a controller output batch: writes, echo RTT samples, hangups.
    fn dispatch(&mut self, out: ControllerOutput) {
        for (conn, bytes) in out.to_switch {
            self.queue_write(conn, bytes);
        }
        for (conn, payload) in out.echo_replies {
            if let Some(sent_us) = decode_echo_payload(&payload) {
                let rtt_us = self.now_micros().saturating_sub(sent_us);
                if let Some(&key) = self.by_conn.get(&conn) {
                    if let Some(io) = self.conns.get(key) {
                        io.metrics.record_echo_rtt(rtt_us as f64 / 1e6);
                    }
                }
                self.server_metrics.record_echo_rtt(rtt_us as f64 / 1e6);
            }
            if let Some(&key) = self.by_conn.get(&conn) {
                if let Some(io) = self.conns.get_mut(key) {
                    io.last_heard = Instant::now();
                }
            }
        }
        for conn in out.hangups {
            self.disconnect(conn);
        }
    }

    fn queue_write(&mut self, conn: ConnId, bytes: Vec<u8>) {
        let Some(&key) = self.by_conn.get(&conn) else {
            return;
        };
        let Some(io) = self.conns.get_mut(key) else {
            return;
        };
        io.metrics.add_msgs_out(1);
        self.backlog_bytes += bytes.len() as u64;
        io.outbox.push(bytes);
        io.metrics.observe_queue_depth(io.outbox.frame_count());
        self.drain_outbox(key);
    }

    /// Writable readiness for an armed connection.
    fn write_ready(&mut self, key: usize) {
        self.drain_outbox(key);
    }

    fn drain_outbox(&mut self, key: usize) {
        let Some(io) = self.conns.get_mut(key) else {
            return;
        };
        if io.outbox.is_empty() {
            return;
        }
        let conn = io.conn;
        let span = self.config.obs.as_ref().map(|o| o.span("southbound_send"));
        let res = io.outbox.drain(&mut io.stream);
        drop(span);
        match res {
            Ok(d) => {
                if d.bytes > 0 {
                    io.last_progress = Instant::now();
                    io.metrics.add_bytes_out(d.bytes as u64);
                    self.backlog_bytes -= d.bytes as u64;
                }
                if d.frames > 0 {
                    if let Some(obs) = &self.config.obs {
                        obs.counters
                            .add("sav_writev_batched_frames_total", d.frames as u64);
                    }
                }
                if d.blocked {
                    if !io.want_write {
                        io.want_write = true;
                        let token = Token(key + CONN_TOKEN_BASE);
                        let _ = self.poller.modify(&io.stream, token, Interest::BOTH);
                    }
                    if !io.stall_armed {
                        io.stall_armed = true;
                        self.wheel.insert(
                            self.now_ns(),
                            self.config.write_stall_timeout,
                            Timer::Stall(conn),
                        );
                    }
                } else if io.want_write {
                    io.want_write = false;
                    let token = Token(key + CONN_TOKEN_BASE);
                    let _ = self.poller.modify(&io.stream, token, Interest::READABLE);
                }
            }
            Err(_) => self.disconnect(conn),
        }
    }

    // ---- timers ---------------------------------------------------------

    fn on_timer(&mut self, t: Timer) {
        match t {
            Timer::Echo(conn) => self.echo_timer(conn),
            Timer::Stall(conn) => self.stall_timer(conn),
            Timer::StatsPoll => self.stats_poll_timer(),
            Timer::AcceptRetry => {
                let rearmed = self
                    .poller
                    .register(&self.listener, TOKEN_LISTENER, Interest::READABLE)
                    .or_else(|_| {
                        // The earlier deregister may have failed, leaving
                        // the registration in place: modify instead.
                        self.poller
                            .modify(&self.listener, TOKEN_LISTENER, Interest::READABLE)
                    });
                if rearmed.is_err() {
                    // Keep trying: the listener must never die silently.
                    self.wheel
                        .insert(self.now_ns(), self.accept_backoff, Timer::AcceptRetry);
                    return;
                }
                self.listener_paused = false;
                self.accept_ready();
            }
        }
    }

    /// Keepalive cadence: declare a silent switch dead, otherwise send the
    /// next ECHO and re-arm.
    fn echo_timer(&mut self, conn: ConnId) {
        let Some(&key) = self.by_conn.get(&conn) else {
            return; // connection already gone; stale timer
        };
        let Some(io) = self.conns.get_mut(key) else {
            return;
        };
        if io.last_heard.elapsed() > self.config.liveness_timeout {
            self.server_metrics.add_dead_declared();
            io.metrics.add_dead_declared();
            self.disconnect(conn);
            return; // no re-arm: the connection is gone
        }
        let payload = encode_echo_payload(self.now_micros());
        let bytes = self.controller.lock().send_echo(conn, payload);
        if let Some(bytes) = bytes {
            self.queue_write(conn, bytes);
        }
        self.wheel
            .insert(self.now_ns(), self.config.echo_interval, Timer::Echo(conn));
    }

    /// A blocked outbox made no progress for the stall deadline (or grew
    /// past the configured queue depth): the switch is not consuming. Cut
    /// it loose instead of blocking the whole control plane.
    fn stall_timer(&mut self, conn: ConnId) {
        let Some(&key) = self.by_conn.get(&conn) else {
            return;
        };
        let Some(io) = self.conns.get_mut(key) else {
            return;
        };
        io.stall_armed = false;
        if io.outbox.is_empty() {
            return;
        }
        let idle = io.last_progress.elapsed();
        let overflowing = io.outbox.frame_count() > self.config.outbound_queue.max(1);
        if idle >= self.config.write_stall_timeout || overflowing {
            self.disconnect(conn);
            return;
        }
        // Progress happened since arming: push the deadline out.
        io.stall_armed = true;
        let remaining = self.config.write_stall_timeout - idle;
        self.wheel
            .insert(self.now_ns(), remaining, Timer::Stall(conn));
    }

    /// Fire the controller's poll hook; stats-collecting apps answer with
    /// multipart requests that ship through the ordinary dispatch path.
    fn stats_poll_timer(&mut self) {
        let Some(interval) = self.config.stats_poll_interval else {
            return;
        };
        self.wheel.insert(self.now_ns(), interval, Timer::StatsPoll);
        let now = self.now();
        let out = self.controller.lock().poll_tick(now);
        self.dispatch(out);
    }

    // ---- teardown -------------------------------------------------------

    /// Controller-driven teardown: notify apps, then close the socket.
    fn disconnect(&mut self, conn: ConnId) {
        if self.by_conn.contains_key(&conn) {
            let out = self.controller.lock().on_disconnect(self.now(), conn);
            self.close_io(conn);
            self.dispatch(out);
        }
    }

    fn close_io(&mut self, conn: ConnId) {
        if let Some(key) = self.by_conn.remove(&conn) {
            if let Some(io) = self.conns.remove(key) {
                self.backlog_bytes -= io.outbox.backlog_bytes() as u64;
                let _ = self.poller.deregister(&io.stream);
                let _ = io.stream.shutdown(Shutdown::Both);
                if let Some(obs) = &self.config.obs {
                    obs.event(
                        Severity::Warn,
                        EventKind::PeerDisconnected { conn: conn as u64 },
                    );
                }
            }
        }
    }
}

/// ECHO payloads carry the send instant (µs since server start) so the
/// reply alone is enough to compute the RTT.
pub(crate) fn encode_echo_payload(micros: u64) -> Vec<u8> {
    micros.to_le_bytes().to_vec()
}

pub(crate) fn decode_echo_payload(payload: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(payload.get(..8)?.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_payload_roundtrip() {
        assert_eq!(
            decode_echo_payload(&encode_echo_payload(12345)),
            Some(12345)
        );
        assert_eq!(decode_echo_payload(b"short"), None);
    }

    #[test]
    fn bind_and_shutdown_cleanly() {
        let server = SouthboundServer::bind(
            "127.0.0.1:0",
            ServerConfig::default(),
            Controller::new(vec![]),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }

    #[test]
    fn bind_with_retry_reclaims_a_released_port() {
        let first = SouthboundServer::bind(
            "127.0.0.1:0",
            ServerConfig::default(),
            Controller::new(vec![]),
        )
        .unwrap();
        let addr = first.local_addr();
        first.shutdown();
        let second = SouthboundServer::bind_with_retry(
            addr,
            ServerConfig::default(),
            || Controller::new(vec![]),
            Duration::from_secs(5),
        )
        .unwrap();
        assert_eq!(second.local_addr(), addr);
        second.shutdown();
    }
}
