//! Controller-side TCP transport: the southbound server.
//!
//! [`SouthboundServer`] owns a real `TcpListener` and embeds the sans-IO
//! [`Controller`] behind it. Threads:
//!
//! * an **accept** thread polling the listener;
//! * per connection, a **reader** thread (socket → supervisor) and a
//!   **writer** thread draining a bounded outbound queue (backpressure: a
//!   switch that stops reading stalls its queue, and a stalled queue gets
//!   the connection killed rather than the whole controller wedged);
//! * one **supervisor** thread owning the [`Controller`], driving
//!   `on_connect` / `on_bytes` / `on_disconnect`, controller-initiated ECHO
//!   keepalives, and the liveness deadline that declares a silent switch
//!   dead.
//!
//! Wall-clock time maps onto the sans-IO core's [`SimTime`] as nanoseconds
//! since the server started.

use crate::metrics::ChannelMetrics;
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use sav_controller::{ConnId, Controller, ControllerOutput};
use sav_obs::{EventKind, Obs, Severity};
use sav_sim::SimTime;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for the southbound transport.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Interval between controller-initiated ECHO keepalives per switch.
    pub echo_interval: Duration,
    /// A switch silent for this long is declared dead and torn down.
    pub liveness_timeout: Duration,
    /// Outbound queue capacity per connection (messages).
    pub outbound_queue: usize,
    /// How long a full outbound queue may stall before the connection is
    /// declared stuck and killed.
    pub write_stall_timeout: Duration,
    /// Fire [`Controller::poll_tick`] for every ready switch at this
    /// interval (statistics collection). `None` disables polling.
    pub stats_poll_interval: Option<Duration>,
    /// Observability handle: connection churn reaches its journal, TCP
    /// send latency its `southbound_send` trace histogram.
    pub obs: Option<Obs>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            echo_interval: Duration::from_millis(500),
            liveness_timeout: Duration::from_secs(2),
            outbound_queue: 256,
            write_stall_timeout: Duration::from_secs(1),
            stats_poll_interval: None,
            obs: None,
        }
    }
}

enum Event {
    Accepted(TcpStream),
    Bytes(ConnId, Vec<u8>),
    Closed(ConnId),
}

struct ConnIo {
    writer_tx: Sender<Vec<u8>>,
    stream: TcpStream,
    last_heard: Instant,
    last_echo: Instant,
    metrics: ChannelMetrics,
}

/// A running controller endpoint bound to a TCP address.
pub struct SouthboundServer {
    addr: SocketAddr,
    controller: Arc<Mutex<Controller>>,
    conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>>,
    server_metrics: ChannelMetrics,
    stop: Arc<AtomicBool>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl SouthboundServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving switches with
    /// the given controller.
    pub fn bind(
        addr: impl ToSocketAddrs,
        config: ServerConfig,
        mut controller: Controller,
    ) -> std::io::Result<SouthboundServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        // The controller shares the server's observability handle so its
        // own instrumentation (causal trace completion, abandonment
        // counters) lands in the same registry the channel reports into.
        if let Some(obs) = &config.obs {
            controller.set_obs(obs.clone());
        }
        let controller = Arc::new(Mutex::new(controller));
        let conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let server_metrics = ChannelMetrics::new();
        let stop = Arc::new(AtomicBool::new(false));
        let (event_tx, event_rx) = unbounded::<Event>();

        let accept = {
            let stop = stop.clone();
            let event_tx = event_tx.clone();
            thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if event_tx.send(Event::Accepted(stream)).is_err() {
                                break;
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
        };

        let supervisor = {
            let controller = controller.clone();
            let conn_metrics = conn_metrics.clone();
            let server_metrics = server_metrics.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                Supervisor {
                    config,
                    controller,
                    conn_metrics,
                    server_metrics,
                    stop,
                    event_tx,
                    event_rx,
                    conns: HashMap::new(),
                    next_conn: 0,
                    started: Instant::now(),
                    last_poll: Instant::now(),
                }
                .run()
            })
        };

        Ok(SouthboundServer {
            addr,
            controller,
            conn_metrics,
            server_metrics,
            stop,
            threads: vec![accept, supervisor],
        })
    }

    /// [`bind`](SouthboundServer::bind), retrying while the port is still
    /// held by a dying predecessor.
    ///
    /// A restarting controller wants its old address back so switches can
    /// reconnect without reconfiguration, but the previous process's socket
    /// may linger (`TIME_WAIT`, or its accept thread not yet joined).
    /// Retries `AddrInUse` with a short sleep until `deadline` elapses;
    /// any other error is returned immediately.
    pub fn bind_with_retry(
        addr: impl ToSocketAddrs + Clone,
        config: ServerConfig,
        mut controller: impl FnMut() -> Controller,
        deadline: Duration,
    ) -> std::io::Result<SouthboundServer> {
        let started = Instant::now();
        loop {
            match SouthboundServer::bind(addr.clone(), config.clone(), controller()) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::AddrInUse
                        && started.elapsed() < deadline =>
                {
                    thread::sleep(Duration::from_millis(20));
                }
                other => return other,
            }
        }
    }

    /// The address switches should dial.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The embedded controller, for state inspection (tests, the harness).
    pub fn controller(&self) -> Arc<Mutex<Controller>> {
        self.controller.clone()
    }

    /// Transport metrics for one connection, if it ever existed.
    pub fn conn_metrics(&self, conn: ConnId) -> Option<ChannelMetrics> {
        self.conn_metrics.lock().get(&conn).cloned()
    }

    /// Server-wide transport metrics (deaths declared, etc.).
    pub fn server_metrics(&self) -> ChannelMetrics {
        self.server_metrics.clone()
    }

    /// Stop accepting, tear down all connections, and join the threads.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for SouthboundServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.threads.drain(..) {
            let _ = h.join();
        }
    }
}

struct Supervisor {
    config: ServerConfig,
    controller: Arc<Mutex<Controller>>,
    conn_metrics: Arc<Mutex<HashMap<ConnId, ChannelMetrics>>>,
    server_metrics: ChannelMetrics,
    stop: Arc<AtomicBool>,
    event_tx: Sender<Event>,
    event_rx: Receiver<Event>,
    conns: HashMap<ConnId, ConnIo>,
    next_conn: ConnId,
    started: Instant,
    last_poll: Instant,
}

impl Supervisor {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn now_micros(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn run(mut self) {
        let tick = (self.config.echo_interval / 4)
            .clamp(Duration::from_millis(5), Duration::from_millis(50));
        loop {
            if self.stop.load(Ordering::Relaxed) {
                let ids: Vec<ConnId> = self.conns.keys().copied().collect();
                for conn in ids {
                    self.kill_conn(conn);
                }
                return;
            }
            match self.event_rx.recv_timeout(tick) {
                Ok(Event::Accepted(stream)) => self.on_accepted(stream),
                Ok(Event::Bytes(conn, data)) => self.on_bytes(conn, data),
                Ok(Event::Closed(conn)) => self.kill_conn(conn),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
            self.keepalive_pass();
            self.stats_poll_pass();
        }
    }

    /// Fire the controller's poll hook when the configured interval has
    /// elapsed; stats-collecting apps answer with multipart requests that
    /// ship through the ordinary dispatch path.
    fn stats_poll_pass(&mut self) {
        let Some(interval) = self.config.stats_poll_interval else {
            return;
        };
        if self.last_poll.elapsed() < interval {
            return;
        }
        self.last_poll = Instant::now();
        let now = self.now();
        let out = self.controller.lock().poll_tick(now);
        self.dispatch(out);
    }

    fn on_accepted(&mut self, stream: TcpStream) {
        let conn = self.next_conn;
        self.next_conn += 1;
        let _ = stream.set_nodelay(true);
        let metrics = ChannelMetrics::new();
        self.conn_metrics.lock().insert(conn, metrics.clone());

        let (writer_tx, writer_rx) = bounded::<Vec<u8>>(self.config.outbound_queue.max(1));
        let writer_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        {
            let metrics = metrics.clone();
            let obs = self.config.obs.clone();
            thread::spawn(move || writer_loop(writer_stream, writer_rx, metrics, obs));
        }
        {
            let reader_stream = match stream.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let event_tx = self.event_tx.clone();
            let metrics = metrics.clone();
            thread::spawn(move || reader_loop(conn, reader_stream, event_tx, metrics));
        }

        let now = Instant::now();
        self.conns.insert(
            conn,
            ConnIo {
                writer_tx,
                stream,
                last_heard: now,
                last_echo: now,
                metrics,
            },
        );
        if let Some(obs) = &self.config.obs {
            obs.event(
                Severity::Info,
                EventKind::PeerConnected { conn: conn as u64 },
            );
        }
        let greeting = self.controller.lock().on_connect(conn);
        self.queue_write(conn, greeting);
    }

    fn on_bytes(&mut self, conn: ConnId, data: Vec<u8>) {
        let Some(io) = self.conns.get_mut(&conn) else {
            return;
        };
        io.last_heard = Instant::now();
        io.metrics.add_bytes_in(data.len() as u64);
        let now = self.now();
        let result = {
            let mut ctrl = self.controller.lock();
            let before = ctrl.stats.rx_messages;
            let res = ctrl.on_bytes(now, conn, &data);
            let parsed = ctrl.stats.rx_messages - before;
            (res, parsed)
        };
        match result {
            (Ok(out), parsed) => {
                if let Some(io) = self.conns.get(&conn) {
                    io.metrics.add_msgs_in(parsed);
                }
                self.dispatch(out);
            }
            (Err(_), _) => {
                // Framing/codec failure: the stream cannot be trusted again.
                self.disconnect(conn);
            }
        }
    }

    /// Route a controller output batch: writes, echo RTT samples, hangups.
    fn dispatch(&mut self, out: ControllerOutput) {
        for (conn, bytes) in out.to_switch {
            self.queue_write(conn, bytes);
        }
        for (conn, payload) in out.echo_replies {
            if let Some(sent_us) = decode_echo_payload(&payload) {
                let rtt_us = self.now_micros().saturating_sub(sent_us);
                if let Some(io) = self.conns.get(&conn) {
                    io.metrics.record_echo_rtt(rtt_us as f64 / 1e6);
                }
                self.server_metrics.record_echo_rtt(rtt_us as f64 / 1e6);
            }
            if let Some(io) = self.conns.get_mut(&conn) {
                io.last_heard = Instant::now();
            }
        }
        for conn in out.hangups {
            self.disconnect(conn);
        }
    }

    fn queue_write(&mut self, conn: ConnId, bytes: Vec<u8>) {
        let Some(io) = self.conns.get(&conn) else {
            return;
        };
        io.metrics.add_msgs_out(1);
        match io
            .writer_tx
            .send_timeout(bytes, self.config.write_stall_timeout)
        {
            Ok(()) => {
                io.metrics.observe_queue_depth(io.writer_tx.len());
            }
            Err(_) => {
                // Queue stalled past the deadline or the writer died: the
                // switch is not consuming. Cut it loose instead of blocking
                // the whole control plane.
                self.disconnect(conn);
            }
        }
    }

    /// Controller-driven teardown: notify apps, then close the socket.
    fn disconnect(&mut self, conn: ConnId) {
        if self.conns.contains_key(&conn) {
            let out = self.controller.lock().on_disconnect(self.now(), conn);
            self.close_io(conn);
            self.dispatch(out);
        }
    }

    /// Socket-driven teardown (peer closed or read error).
    fn kill_conn(&mut self, conn: ConnId) {
        self.disconnect(conn);
    }

    fn close_io(&mut self, conn: ConnId) {
        if let Some(io) = self.conns.remove(&conn) {
            let _ = io.stream.shutdown(Shutdown::Both);
            // Dropping writer_tx disconnects the writer thread's channel.
            if let Some(obs) = &self.config.obs {
                obs.event(
                    Severity::Warn,
                    EventKind::PeerDisconnected { conn: conn as u64 },
                );
            }
        }
    }

    fn keepalive_pass(&mut self) {
        let mut dead = Vec::new();
        let mut echoes = Vec::new();
        for (&conn, io) in &mut self.conns {
            if io.last_heard.elapsed() > self.config.liveness_timeout {
                dead.push(conn);
            } else if io.last_echo.elapsed() >= self.config.echo_interval {
                io.last_echo = Instant::now();
                echoes.push(conn);
            }
        }
        for conn in dead {
            self.server_metrics.add_dead_declared();
            if let Some(io) = self.conns.get(&conn) {
                io.metrics.add_dead_declared();
            }
            self.disconnect(conn);
        }
        for conn in echoes {
            let payload = encode_echo_payload(self.now_micros());
            let bytes = self.controller.lock().send_echo(conn, payload);
            if let Some(bytes) = bytes {
                self.queue_write(conn, bytes);
            }
        }
    }
}

/// ECHO payloads carry the send instant (µs since server start) so the
/// reply alone is enough to compute the RTT.
fn encode_echo_payload(micros: u64) -> Vec<u8> {
    micros.to_le_bytes().to_vec()
}

fn decode_echo_payload(payload: &[u8]) -> Option<u64> {
    Some(u64::from_le_bytes(payload.get(..8)?.try_into().ok()?))
}

fn reader_loop(
    conn: ConnId,
    mut stream: TcpStream,
    event_tx: Sender<Event>,
    _metrics: ChannelMetrics,
) {
    let mut buf = [0u8; 8192];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {
                let _ = event_tx.send(Event::Closed(conn));
                return;
            }
            Ok(n) => {
                if event_tx
                    .send(Event::Bytes(conn, buf[..n].to_vec()))
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

fn writer_loop(
    mut stream: TcpStream,
    writer_rx: Receiver<Vec<u8>>,
    metrics: ChannelMetrics,
    obs: Option<Obs>,
) {
    while let Ok(bytes) = writer_rx.recv() {
        let span = obs.as_ref().map(|o| o.span("southbound_send"));
        if stream.write_all(&bytes).is_err() {
            return;
        }
        drop(span);
        metrics.add_bytes_out(bytes.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_payload_roundtrip() {
        assert_eq!(
            decode_echo_payload(&encode_echo_payload(12345)),
            Some(12345)
        );
        assert_eq!(decode_echo_payload(b"short"), None);
    }

    #[test]
    fn bind_and_shutdown_cleanly() {
        let server = SouthboundServer::bind(
            "127.0.0.1:0",
            ServerConfig::default(),
            Controller::new(vec![]),
        )
        .unwrap();
        let addr = server.local_addr();
        assert_ne!(addr.port(), 0);
        server.shutdown();
    }
}
