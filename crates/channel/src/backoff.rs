//! Capped exponential backoff with deterministic jitter.
//!
//! Reconnecting switches must not hammer a controller that just restarted,
//! and a fleet of switches must not reconnect in lockstep (the thundering
//! herd the jitter breaks up). The schedule is seeded so tests can assert
//! exact delays.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Reconnect delay policy: `base * 2^attempt` capped at `cap`, plus a
/// jitter uniform in `[0, delay/2]`.
#[derive(Debug, Clone)]
pub struct BackoffPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Upper bound on the un-jittered delay.
    pub cap: Duration,
    /// Seed for the jitter stream (deterministic per switch).
    pub seed: u64,
}

impl Default for BackoffPolicy {
    fn default() -> BackoffPolicy {
        BackoffPolicy {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(10),
            seed: 0,
        }
    }
}

impl BackoffPolicy {
    /// Start a backoff schedule under this policy.
    pub fn start(&self) -> Backoff {
        Backoff {
            policy: self.clone(),
            attempt: 0,
            total_attempts: 0,
        }
    }
}

/// One switch's live backoff state.
pub struct Backoff {
    policy: BackoffPolicy,
    attempt: u32,
    /// Attempts since this schedule was created — unlike `attempt`, never
    /// reset, so every attempt over the client's whole lifetime draws a
    /// fresh jitter instead of replaying the sequence fixed at
    /// construction time.
    total_attempts: u64,
}

impl Backoff {
    /// Delay to sleep before the next connect attempt (advances the
    /// schedule).
    pub fn next_delay(&mut self) -> Duration {
        let exp = self.attempt.min(20); // 2^20 * base already dwarfs any cap
        self.attempt = self.attempt.saturating_add(1);
        let nth = self.total_attempts;
        self.total_attempts = self.total_attempts.wrapping_add(1);
        let raw = self
            .policy
            .base
            .saturating_mul(1u32 << exp)
            .min(self.policy.cap);
        let jitter_ns = raw.as_nanos() as u64 / 2;
        let jitter = if jitter_ns == 0 {
            0
        } else {
            // Re-seed per attempt: the jitter is a pure function of
            // (policy seed, lifetime attempt index), so reconnect storms
            // stay de-synchronized across resets and tests stay exact.
            let mut rng = StdRng::seed_from_u64(
                self.policy.seed ^ 0x5bd1_e995_9e37_79b9 ^ nth.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            rng.gen_range(0..=jitter_ns)
        };
        raw + Duration::from_nanos(jitter)
    }

    /// Retries attempted since the last [`Backoff::reset`].
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// A connection succeeded: the next failure starts from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            seed: 7,
        };
        let mut b = policy.start();
        let d: Vec<Duration> = (0..8).map(|_| b.next_delay()).collect();
        // Un-jittered floors: 10, 20, 40, 80, 100, 100, ...
        assert!(d[0] >= Duration::from_millis(10) && d[0] <= Duration::from_millis(15));
        assert!(d[1] >= Duration::from_millis(20) && d[1] <= Duration::from_millis(30));
        assert!(d[2] >= Duration::from_millis(40) && d[2] <= Duration::from_millis(60));
        for late in &d[4..] {
            assert!(*late >= Duration::from_millis(100));
            assert!(*late <= Duration::from_millis(150), "cap + max jitter");
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let policy = BackoffPolicy {
            seed: 42,
            ..BackoffPolicy::default()
        };
        let a: Vec<Duration> = {
            let mut b = policy.start();
            (0..5).map(|_| b.next_delay()).collect()
        };
        let b_: Vec<Duration> = {
            let mut b = policy.start();
            (0..5).map(|_| b.next_delay()).collect()
        };
        assert_eq!(a, b_);
        let other = BackoffPolicy {
            seed: 43,
            ..BackoffPolicy::default()
        };
        let c: Vec<Duration> = {
            let mut b = other.start();
            (0..5).map(|_| b.next_delay()).collect()
        };
        assert_ne!(a, c, "different seeds must de-synchronize");
    }

    /// Jitter must be a pure per-attempt function of (seed, lifetime
    /// attempt index) — re-randomized every attempt, not a sequence fixed
    /// at construction and unaffected by resets. With base == cap the raw
    /// delay is constant, so the delays isolate the jitter draw.
    #[test]
    fn jitter_re_randomized_per_attempt() {
        let policy = BackoffPolicy {
            base: Duration::from_millis(100),
            cap: Duration::from_millis(100),
            seed: 11,
        };
        let straight: Vec<Duration> = {
            let mut b = policy.start();
            (0..6).map(|_| b.next_delay()).collect()
        };
        // Consecutive attempts draw different jitters.
        assert!(
            straight.windows(2).any(|w| w[0] != w[1]),
            "jitter frozen across attempts: {straight:?}"
        );
        // A reset mid-stream restarts the exponent but not the jitter
        // index: the nth lifetime attempt always draws the nth jitter.
        let with_reset: Vec<Duration> = {
            let mut b = policy.start();
            let mut v: Vec<Duration> = (0..3).map(|_| b.next_delay()).collect();
            b.reset();
            v.extend((0..3).map(|_| b.next_delay()));
            v
        };
        assert_eq!(straight, with_reset);
    }

    #[test]
    fn reset_restarts_schedule() {
        let mut b = BackoffPolicy::default().start();
        b.next_delay();
        b.next_delay();
        assert_eq!(b.attempts(), 2);
        b.reset();
        assert_eq!(b.attempts(), 0);
        assert!(b.next_delay() < Duration::from_millis(100));
    }
}
