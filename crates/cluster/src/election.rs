//! Deterministic lease-based leader election.
//!
//! No Raft, no external coordination service: the paper's controller is a
//! single logical process, so the replication group only needs to agree on
//! *one* writer, and safety does not depend on the election at all — it
//! rests on the switches' generation fencing (OF1.3 §6.3.6). That frees
//! the election to be simple:
//!
//! * Every node heartbeats every peer over the replication links.
//! * A node considers a peer alive while its last heartbeat is younger
//!   than the liveness lease.
//! * **The lowest alive node id is the leader.** A node claims leadership
//!   when no lower id is alive — after an initial one-lease grace so a
//!   running leader gets a chance to be heard before a freshly started
//!   standby grabs the role.
//! * Claiming bumps the generation to `max_seen + 1`; switches reject
//!   anything older, so even if a partition makes two nodes *believe*
//!   they lead, only the newest generation can program flows.
//! * Seeing a heartbeat with a newer generation deposes a leader
//!   immediately (it was fenced while partitioned).
//! * Heartbeats also carry a `leading` flag: if a partition let two nodes
//!   claim the *same* generation, the higher id yields to an alive,
//!   leading lower id when the partition heals — fencing cannot break a
//!   generation tie, the deterministic id order can.
//!
//! The struct is pure — time is passed in — so the failure schedules in
//! the unit tests are exact.

use sav_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// This node's current cluster role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Owns the switches and streams its WAL to the standbys.
    Leader,
    /// Holds a hot replica; promotes itself if every lower id dies.
    Follower,
}

/// What a [`Election::tick`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Nothing changed.
    None,
    /// This node just claimed leadership at this (freshly bumped)
    /// generation.
    BecameLeader {
        /// The generation to assert toward switches.
        generation: u64,
    },
    /// This node was leading but observed a newer generation: a peer took
    /// over while we were unreachable and the switches now fence us.
    Deposed {
        /// The newer generation that displaced ours.
        by_generation: u64,
    },
}

/// Pure election state for one node.
#[derive(Debug)]
pub struct Election {
    self_id: u64,
    lease: SimDuration,
    /// Startup grace: no self-claim before this instant.
    grace_until: SimTime,
    /// Peer id → (instant of its last heartbeat, whether it claimed to
    /// be leading in that heartbeat).
    last_seen: BTreeMap<u64, (SimTime, bool)>,
    /// Highest generation observed anywhere (including our own claims).
    max_gen_seen: u64,
    role: Role,
    /// The generation of our own current/last leadership claim.
    my_generation: Option<u64>,
}

impl Election {
    /// A follower node `self_id` starting at `now` with the given liveness
    /// lease.
    pub fn new(self_id: u64, lease: SimDuration, now: SimTime) -> Election {
        Election {
            self_id,
            lease,
            grace_until: now + lease,
            last_seen: BTreeMap::new(),
            max_gen_seen: 0,
            role: Role::Follower,
            my_generation: None,
        }
    }

    /// This node's id.
    pub fn self_id(&self) -> u64 {
        self.self_id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Generation of our current leadership claim (None while follower
    /// and never led).
    pub fn generation(&self) -> Option<u64> {
        match self.role {
            Role::Leader => self.my_generation,
            Role::Follower => None,
        }
    }

    /// Highest generation observed anywhere so far.
    pub fn max_generation_seen(&self) -> u64 {
        self.max_gen_seen
    }

    /// Ids currently considered alive (peers within lease; self always).
    pub fn alive(&self, now: SimTime) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .last_seen
            .iter()
            .filter(|(_, &(t, _))| now.saturating_since(t) <= self.lease)
            .map(|(&id, _)| id)
            .collect();
        v.push(self.self_id);
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Who we believe leads right now: the lowest alive id.
    pub fn leader_hint(&self, now: SimTime) -> u64 {
        self.alive(now)[0]
    }

    /// A heartbeat from `node` carrying its generation (and whether it
    /// believes it leads) arrived at `now`.
    pub fn observe(&mut self, node: u64, generation: u64, leading: bool, now: SimTime) {
        if node == self.self_id {
            return;
        }
        self.last_seen.insert(node, (now, leading));
        if generation > self.max_gen_seen {
            self.max_gen_seen = generation;
        }
    }

    /// Re-evaluate at `now`. Call periodically (heartbeat cadence).
    pub fn tick(&mut self, now: SimTime) -> Transition {
        if self.role == Role::Leader {
            let mine = self.my_generation.unwrap_or(0);
            if self.max_gen_seen > mine {
                // A peer claimed a newer generation: the switches fence us
                // already; align our view.
                self.role = Role::Follower;
                return Transition::Deposed {
                    by_generation: self.max_gen_seen,
                };
            }
            // Symmetric split-brain: a partition let a lower id claim the
            // same generation. Generations tie, so fencing cannot break
            // it — the deterministic "lowest id leads" rule does: the
            // higher id yields.
            let lower_leading = self.last_seen.iter().any(|(&id, &(t, leading))| {
                id < self.self_id && leading && now.saturating_since(t) <= self.lease
            });
            if lower_leading {
                self.role = Role::Follower;
                return Transition::Deposed {
                    by_generation: self.max_gen_seen.max(mine),
                };
            }
            return Transition::None;
        }
        if now < self.grace_until {
            return Transition::None;
        }
        let lowest_alive = self.leader_hint(now);
        if lowest_alive == self.self_id {
            let generation = self.max_gen_seen + 1;
            self.max_gen_seen = generation;
            self.my_generation = Some(generation);
            self.role = Role::Leader;
            return Transition::BecameLeader { generation };
        }
        Transition::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEASE: SimDuration = SimDuration::from_millis(100);

    fn at(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn lowest_id_wins_initial_election_after_grace() {
        let mut a = Election::new(1, LEASE, at(0));
        let mut b = Election::new(2, LEASE, at(0));
        // Inside the grace window nobody claims.
        assert_eq!(a.tick(at(50)), Transition::None);
        assert_eq!(b.tick(at(50)), Transition::None);
        // Heartbeats cross; after grace the lower id claims, the higher
        // sees a live lower peer and stays standby.
        a.observe(2, 0, false, at(90));
        b.observe(1, 0, false, at(90));
        assert_eq!(a.tick(at(110)), Transition::BecameLeader { generation: 1 });
        assert_eq!(b.tick(at(110)), Transition::None);
        assert_eq!(a.role(), Role::Leader);
        assert_eq!(b.role(), Role::Follower);
        assert_eq!(b.leader_hint(at(110)), 1);
    }

    #[test]
    fn standby_takes_over_one_lease_after_leader_death() {
        let mut b = Election::new(2, LEASE, at(0));
        b.observe(1, 1, true, at(90)); // leader (gen 1) alive at t=90ms…
        assert_eq!(b.tick(at(150)), Transition::None, "lease not expired");
        // …then silent. One lease later the standby claims with a HIGHER
        // generation, so the switches will accept it and fence the old
        // leader.
        assert_eq!(b.tick(at(191)), Transition::BecameLeader { generation: 2 });
        assert!(b.generation() > Some(1));
    }

    #[test]
    fn healed_partition_deposes_the_stale_leader() {
        // Node 1 led at gen 1, got partitioned; node 2 took over at gen 2.
        let mut a = Election::new(1, LEASE, at(0));
        assert_eq!(a.tick(at(101)), Transition::BecameLeader { generation: 1 });
        // Partition heals: node 1 hears node 2's gen-2 heartbeat.
        a.observe(2, 2, true, at(500));
        assert_eq!(a.tick(at(500)), Transition::Deposed { by_generation: 2 });
        assert_eq!(a.role(), Role::Follower);
        // Being the lowest alive id again, it may re-claim — but only at
        // a generation newer than the one that fenced it.
        assert_eq!(a.tick(at(501)), Transition::BecameLeader { generation: 3 });
    }

    #[test]
    fn claims_never_reuse_generations() {
        let mut a = Election::new(3, LEASE, at(0));
        a.observe(1, 41, true, at(90)); // the current leader is at generation 41
        assert_eq!(a.tick(at(120)), Transition::None, "node 1 alive and lower");
        // When node 1 expires, node 3's claim must land above everything
        // it has ever seen — never reusing a fenced generation.
        assert_eq!(a.tick(at(250)), Transition::BecameLeader { generation: 42 });
    }

    #[test]
    fn lowest_alive_wins_not_lowest_configured() {
        // Node 5 knows peers 1 and 3; both die; 5 claims. Then 3 returns
        // with the newer generation and 5 is deposed.
        let mut e = Election::new(5, LEASE, at(0));
        e.observe(1, 1, true, at(50));
        e.observe(3, 0, false, at(50));
        assert_eq!(e.tick(at(120)), Transition::None, "1 and 3 alive");
        assert_eq!(e.tick(at(200)), Transition::BecameLeader { generation: 2 });
        e.observe(3, 3, true, at(210));
        assert_eq!(e.tick(at(210)), Transition::Deposed { by_generation: 3 });
    }

    #[test]
    fn symmetric_split_brain_heals_to_lowest_id() {
        // A partition lets both nodes claim generation 1 independently —
        // the generations tie, so the gen rule alone would leave two
        // leaders forever. The `leading` flag breaks the tie: when the
        // partition heals, the higher id yields to the leading lower id.
        let mut a = Election::new(1, LEASE, at(0));
        let mut b = Election::new(2, LEASE, at(0));
        assert_eq!(a.tick(at(101)), Transition::BecameLeader { generation: 1 });
        assert_eq!(b.tick(at(101)), Transition::BecameLeader { generation: 1 });
        // Heal: heartbeats cross, both flagged leading at generation 1.
        a.observe(2, 1, true, at(300));
        b.observe(1, 1, true, at(300));
        assert_eq!(
            a.tick(at(300)),
            Transition::None,
            "lowest id keeps the role"
        );
        assert_eq!(b.tick(at(300)), Transition::Deposed { by_generation: 1 });
        assert_eq!(b.role(), Role::Follower);
        // And it stays follower while node 1 keeps leading.
        b.observe(1, 1, true, at(350));
        assert_eq!(b.tick(at(350)), Transition::None);
    }
}
