//! The peer replication protocol: a tiny length-framed codec.
//!
//! Controllers in a replication group speak this over plain TCP (the same
//! loopback-friendly transport the southbound channel uses). Framing is
//! `[len: u32 LE][tag: u8][body]` where `len` counts the tag byte plus the
//! body. Bodies are fixed-layout little-endian scalars, except WAL payloads
//! which reuse [`WalOp`]'s own codec — the exact bytes the leader wrote to
//! its log are what cross the wire, so leader and follower replicas are
//! byte-comparable.
//!
//! Message flow on one link:
//!
//! ```text
//! both:      Hello{version, node_id, have_seq, applied_gen}   (once, first)
//! both:      Heartbeat{node_id, generation, seq,
//!                      applied_gen, leading}                  (periodic; liveness + lag)
//! follower:  CatchupRequest{have_seq, applied_gen}            (pull when a heartbeat
//!                                                              shows it lagging)
//! leader:    TailBegin{gen, from_seq}                         (authorizes the stream:
//!                                                              the follower's prefix was
//!                                                              vetted as a prefix of the
//!                                                              leader's history)
//! leader:    WalRecord{seq, gen, op}                          (live fan-out + tail catch-up)
//! leader:    SnapshotBegin{next_seq, gen} SnapshotEntry* SnapshotEnd
//!                                                             (truncating image transfer:
//!                                                              the follower lagged past the
//!                                                              retained window, or its
//!                                                              prefix diverged from the
//!                                                              leader's history)
//! ```
//!
//! Records are stamped with the generation of the leader that committed
//! them. Within one generation the committed stream is linear, so
//! `(gen, seq)` identifies a record globally; a follower whose
//! `(applied_gen, seq)` cannot be vetted as a prefix of the leader's
//! history — including a follower *ahead* of a newly elected leader —
//! is healed by a truncating snapshot transfer, never by silently
//! skipping records.

use sav_store::WalOp;

/// Protocol version carried in `Hello`; mismatching peers drop the link.
pub const PROTO_VERSION: u32 = 2;

/// Upper bound on one frame (tag + body). WAL payloads are tens of bytes;
/// the cap keeps a corrupt length field from allocating gigabytes.
pub const MAX_FRAME: u32 = 1 << 20;

/// One message between cluster peers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerMsg {
    /// Link opener, sent by both ends before anything else.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        version: u32,
        /// Sender's node id.
        node_id: u64,
        /// Next global WAL sequence the sender needs (its replica is
        /// complete below this). The receiving leader serves catch-up
        /// from here.
        have_seq: u64,
        /// Generation that committed the sender's last applied record
        /// (0 = state recovered from disk without a stamp, or empty).
        applied_gen: u64,
    },
    /// Periodic liveness + progress beacon, sent by both ends.
    Heartbeat {
        /// Sender's node id.
        node_id: u64,
        /// The highest leader generation the sender has observed — its own
        /// if it currently leads (0 = nothing seen yet). Carrying the
        /// maximum propagates fencing information through the mesh.
        generation: u64,
        /// Leader: head of its committed stream. Follower: its applied
        /// position — the leader derives replication lag from this.
        seq: u64,
        /// Generation that committed the sender's last applied record.
        applied_gen: u64,
        /// True if the sender currently believes it leads. Lets two
        /// same-generation leaders (symmetric partition) detect each
        /// other and yield to the lower id.
        leading: bool,
    },
    /// A lagging follower asks the leader to serve catch-up from here.
    /// Sent when a heartbeat shows the leader ahead and no stream is in
    /// flight — the pull half of catch-up (Hello is the push half).
    CatchupRequest {
        /// Next global WAL sequence the sender needs.
        have_seq: u64,
        /// Generation that committed the sender's last applied record.
        applied_gen: u64,
    },
    /// Leader's go-ahead for a tail stream: the follower's
    /// `(applied_gen, from_seq)` was vetted as a prefix of the leader's
    /// history, so `WalRecord`s from `from_seq` may extend it in place.
    /// Without a preceding `TailBegin` (or snapshot) on the same link, a
    /// follower must not apply records from a newer generation.
    TailBegin {
        /// The serving leader's generation.
        gen: u64,
        /// First sequence the stream resumes from (== follower's seq).
        from_seq: u64,
    },
    /// One committed binding-table mutation, in WAL wire format.
    WalRecord {
        /// Global sequence of this record.
        seq: u64,
        /// Generation of the leader that committed it.
        gen: u64,
        /// The mutation.
        op: WalOp,
    },
    /// Start of a full-image transfer; the follower discards its replica
    /// (including any suffix orphaned by a leader change).
    SnapshotBegin {
        /// Sequence the stream will continue from after [`PeerMsg::SnapshotEnd`].
        next_seq: u64,
        /// The serving leader's generation; stamps the rebuilt replica.
        gen: u64,
    },
    /// One binding of the image (always an upsert).
    SnapshotEntry {
        /// The binding, as an upsert op.
        op: WalOp,
    },
    /// Image complete; `WalRecord`s resume.
    SnapshotEnd,
}

const TAG_HELLO: u8 = 1;
const TAG_HEARTBEAT: u8 = 2;
const TAG_WAL_RECORD: u8 = 3;
const TAG_SNAPSHOT_BEGIN: u8 = 4;
const TAG_SNAPSHOT_ENTRY: u8 = 5;
const TAG_SNAPSHOT_END: u8 = 6;
const TAG_CATCHUP_REQUEST: u8 = 7;
const TAG_TAIL_BEGIN: u8 = 8;

/// Why a peer byte stream stopped parsing (the link must be dropped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Length field exceeds [`MAX_FRAME`] or is zero.
    BadLength(u32),
    /// Unknown message tag.
    BadTag(u8),
    /// Body shorter than its fixed fields, or a WAL payload that does not
    /// parse.
    Malformed,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadLength(n) => write!(f, "bad frame length {n}"),
            ProtoError::BadTag(t) => write!(f, "unknown peer message tag {t}"),
            ProtoError::Malformed => write!(f, "malformed peer message body"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl PeerMsg {
    /// Encode as one frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(32);
        match self {
            PeerMsg::Hello {
                version,
                node_id,
                have_seq,
                applied_gen,
            } => {
                body.push(TAG_HELLO);
                body.extend_from_slice(&version.to_le_bytes());
                body.extend_from_slice(&node_id.to_le_bytes());
                body.extend_from_slice(&have_seq.to_le_bytes());
                body.extend_from_slice(&applied_gen.to_le_bytes());
            }
            PeerMsg::Heartbeat {
                node_id,
                generation,
                seq,
                applied_gen,
                leading,
            } => {
                body.push(TAG_HEARTBEAT);
                body.extend_from_slice(&node_id.to_le_bytes());
                body.extend_from_slice(&generation.to_le_bytes());
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&applied_gen.to_le_bytes());
                body.push(u8::from(*leading));
            }
            PeerMsg::CatchupRequest {
                have_seq,
                applied_gen,
            } => {
                body.push(TAG_CATCHUP_REQUEST);
                body.extend_from_slice(&have_seq.to_le_bytes());
                body.extend_from_slice(&applied_gen.to_le_bytes());
            }
            PeerMsg::TailBegin { gen, from_seq } => {
                body.push(TAG_TAIL_BEGIN);
                body.extend_from_slice(&gen.to_le_bytes());
                body.extend_from_slice(&from_seq.to_le_bytes());
            }
            PeerMsg::WalRecord { seq, gen, op } => {
                body.push(TAG_WAL_RECORD);
                body.extend_from_slice(&seq.to_le_bytes());
                body.extend_from_slice(&gen.to_le_bytes());
                body.extend_from_slice(&op.encode());
            }
            PeerMsg::SnapshotBegin { next_seq, gen } => {
                body.push(TAG_SNAPSHOT_BEGIN);
                body.extend_from_slice(&next_seq.to_le_bytes());
                body.extend_from_slice(&gen.to_le_bytes());
            }
            PeerMsg::SnapshotEntry { op } => {
                body.push(TAG_SNAPSHOT_ENTRY);
                body.extend_from_slice(&op.encode());
            }
            PeerMsg::SnapshotEnd => body.push(TAG_SNAPSHOT_END),
        }
        let mut out = Vec::with_capacity(4 + body.len());
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(&body);
        out
    }

    /// Decode one frame body (tag + payload, length prefix stripped).
    fn decode_body(body: &[u8]) -> Result<PeerMsg, ProtoError> {
        let (&tag, rest) = body.split_first().ok_or(ProtoError::Malformed)?;
        let u32_at = |at: usize| -> Result<u32, ProtoError> {
            rest.get(at..at + 4)
                .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
                .ok_or(ProtoError::Malformed)
        };
        let u64_at = |at: usize| -> Result<u64, ProtoError> {
            rest.get(at..at + 8)
                .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                .ok_or(ProtoError::Malformed)
        };
        match tag {
            TAG_HELLO => Ok(PeerMsg::Hello {
                version: u32_at(0)?,
                node_id: u64_at(4)?,
                have_seq: u64_at(12)?,
                applied_gen: u64_at(20)?,
            }),
            TAG_HEARTBEAT => Ok(PeerMsg::Heartbeat {
                node_id: u64_at(0)?,
                generation: u64_at(8)?,
                seq: u64_at(16)?,
                applied_gen: u64_at(24)?,
                leading: *rest.get(32).ok_or(ProtoError::Malformed)? != 0,
            }),
            TAG_CATCHUP_REQUEST => Ok(PeerMsg::CatchupRequest {
                have_seq: u64_at(0)?,
                applied_gen: u64_at(8)?,
            }),
            TAG_TAIL_BEGIN => Ok(PeerMsg::TailBegin {
                gen: u64_at(0)?,
                from_seq: u64_at(8)?,
            }),
            TAG_WAL_RECORD => {
                let seq = u64_at(0)?;
                let gen = u64_at(8)?;
                let op = WalOp::decode(rest.get(16..).ok_or(ProtoError::Malformed)?)
                    .map_err(|_| ProtoError::Malformed)?;
                Ok(PeerMsg::WalRecord { seq, gen, op })
            }
            TAG_SNAPSHOT_BEGIN => Ok(PeerMsg::SnapshotBegin {
                next_seq: u64_at(0)?,
                gen: u64_at(8)?,
            }),
            TAG_SNAPSHOT_ENTRY => {
                let op = WalOp::decode(rest).map_err(|_| ProtoError::Malformed)?;
                Ok(PeerMsg::SnapshotEntry { op })
            }
            TAG_SNAPSHOT_END => Ok(PeerMsg::SnapshotEnd),
            t => Err(ProtoError::BadTag(t)),
        }
    }
}

/// Incremental frame assembler for one peer byte stream.
#[derive(Debug, Default)]
pub struct PeerDeframer {
    buf: Vec<u8>,
}

impl PeerDeframer {
    /// A fresh, empty deframer.
    pub fn new() -> PeerDeframer {
        PeerDeframer::default()
    }

    /// Feed received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete message, if one is buffered. An error poisons
    /// the stream: the caller must drop the link.
    pub fn next_message(&mut self) -> Result<Option<PeerMsg>, ProtoError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len == 0 || len > MAX_FRAME {
            return Err(ProtoError::BadLength(len));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let msg = PeerMsg::decode_body(&self.buf[4..total])?;
        self.buf.drain(..total);
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_store::{BindingRecord, RecordSource};
    use std::net::Ipv4Addr;

    fn op() -> WalOp {
        WalOp::Upsert(BindingRecord {
            ip: Ipv4Addr::new(10, 0, 0, 7),
            mac: sav_net::addr::MacAddr::from_index(7),
            dpid: 2,
            port: 3,
            source: RecordSource::Dhcp,
            expires: None,
        })
    }

    fn all() -> Vec<PeerMsg> {
        vec![
            PeerMsg::Hello {
                version: PROTO_VERSION,
                node_id: 2,
                have_seq: 17,
                applied_gen: 3,
            },
            PeerMsg::Heartbeat {
                node_id: 1,
                generation: 3,
                seq: 42,
                applied_gen: 3,
                leading: true,
            },
            PeerMsg::CatchupRequest {
                have_seq: 17,
                applied_gen: 2,
            },
            PeerMsg::TailBegin {
                gen: 3,
                from_seq: 17,
            },
            PeerMsg::WalRecord {
                seq: 42,
                gen: 3,
                op: op(),
            },
            PeerMsg::SnapshotBegin {
                next_seq: 99,
                gen: 4,
            },
            PeerMsg::SnapshotEntry { op: op() },
            PeerMsg::SnapshotEnd,
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        let mut d = PeerDeframer::new();
        for m in all() {
            d.push(&m.encode());
            assert_eq!(d.next_message().unwrap(), Some(m));
        }
        assert_eq!(d.next_message().unwrap(), None);
    }

    #[test]
    fn reassembles_across_arbitrary_splits() {
        let stream: Vec<u8> = all().iter().flat_map(|m| m.encode()).collect();
        for chunk in [1usize, 3, 7, 13] {
            let mut d = PeerDeframer::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                d.push(piece);
                while let Some(m) = d.next_message().unwrap() {
                    got.push(m);
                }
            }
            assert_eq!(got, all(), "chunk size {chunk}");
        }
    }

    #[test]
    fn bad_frames_poison_the_stream() {
        let mut d = PeerDeframer::new();
        d.push(&(MAX_FRAME + 1).to_le_bytes());
        assert_eq!(d.next_message(), Err(ProtoError::BadLength(MAX_FRAME + 1)));

        let mut d = PeerDeframer::new();
        d.push(&2u32.to_le_bytes());
        d.push(&[200u8, 0]);
        assert_eq!(d.next_message(), Err(ProtoError::BadTag(200)));

        let mut d = PeerDeframer::new();
        d.push(&3u32.to_le_bytes());
        d.push(&[TAG_HEARTBEAT, 0, 0]); // heartbeat needs 33 body bytes
        assert_eq!(d.next_message(), Err(ProtoError::Malformed));
    }
}
