//! # sav-cluster — hot-standby controller replication with role fencing
//!
//! The paper's controller is a single point of failure: when it dies, DHCP
//! snooping stops, bindings age out, and the dataplane either fails open
//! (spoofing returns) or fails closed (legitimate hosts lose service).
//! This crate removes that single point without changing the trust model:
//!
//! * [`ClusterNode`] — two or more controller processes form a
//!   replication group over a tiny length-framed TCP peer protocol
//!   ([`proto`]). The leader streams every durable binding-table WAL
//!   record to the standbys, so each follower keeps a **hot, durable
//!   replica** (its own [`sav_store::BindingStore`]) that is
//!   byte-equivalent to the leader's log.
//! * [`Election`] — deterministic lease-based election with no external
//!   coordination: the lowest alive node id leads, and every claim bumps
//!   a monotonically increasing generation.
//! * **Role fencing** — the generation is asserted to switches via
//!   OF1.3 `ROLE_REQUEST{MASTER, generation_id}`. Switches reject stale
//!   generations, so even a partitioned ex-leader that still *believes*
//!   it leads cannot program flows. Safety rests on the switch-side
//!   fence, not on the election being perfect.
//!
//! On takeover the promoted standby takes its replica
//! ([`ClusterHandle::take_store`]), hydrates the SAV app from it — the
//! same replay path a standalone controller uses after a restart — and
//! reconciles the switches' flow tables against the replicated bindings.
//! Failover therefore never *widens* filtering: a binding the old leader
//! had not yet replicated fails closed (the host re-DHCPs), never open.
//!
//! Threading model matches `sav-channel`: `std::net` + OS threads +
//! crossbeam channels, no async runtime, no new dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod election;
pub mod node;
pub mod proto;

pub use election::{Election, Role, Transition};
pub use node::{ClusterConfig, ClusterEvent, ClusterHandle, ClusterNode};
pub use proto::{PeerDeframer, PeerMsg, ProtoError, MAX_FRAME, PROTO_VERSION};
