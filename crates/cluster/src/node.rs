//! The cluster node runtime: peer links, WAL streaming, and promotion.
//!
//! A [`ClusterNode`] runs a small thread family around one shared core:
//!
//! * a **listener** accepting peer links on this node's cluster endpoint,
//! * one **dialer** per lower-id peer (higher ids dial lower ids, so each
//!   pair gets exactly one link; redials use the southbound channel's
//!   capped-jittered backoff),
//! * a **ticker** driving the [`Election`] lease clock, heartbeats, and
//!   the cluster gauges.
//!
//! While following, the node owns a *durable* replica: every streamed
//! [`PeerMsg::WalRecord`] is appended to its own [`BindingStore`], so a
//! standby that crashes and restarts recovers its copy from disk exactly
//! like a standalone controller would. On promotion the embedder calls
//! [`ClusterHandle::take_store`] and hands the replica to the SAV app —
//! replay is the recovery path that already exists; failover adds nothing
//! new to trust.
//!
//! The leader keeps a bounded in-memory window of recent records for tail
//! catch-up. A follower whose `Hello{have_seq}` predates the window gets a
//! full image transfer (`SnapshotBegin` / `SnapshotEntry*` / `SnapshotEnd`)
//! — the same snapshot-plus-tail fallback the on-disk WAL uses after
//! compaction ([`sav_store::TailError::Compacted`]).
//!
//! Catch-up is **vetted**: every record is stamped with the generation of
//! the leader that committed it, and a tail stream only extends a follower
//! whose `(applied_gen, have_seq)` the leader can prove is a prefix of its
//! own history (same generation, or the leader's own pre-claim position
//! covers it). Anything else — including a follower *ahead* of a newly
//! elected leader, whose suffix is orphaned — gets a truncating image
//! transfer. A follower only applies records after a `TailBegin` or
//! snapshot on the same link authorized the stream; a sequence mismatch
//! drops the link so the reconnect renegotiates, never skips.
//!
//! Catch-up triggers from three sides so no replica is left behind on a
//! quiet network: link setup (`Hello`), promotion (a new leader
//! immediately serves every registered standby), and a follower-side pull
//! (`CatchupRequest`) when heartbeats show lag but nothing is streaming.

use crate::election::{Election, Role, Transition};
use crate::proto::{PeerDeframer, PeerMsg, PROTO_VERSION};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sav_channel::BackoffPolicy;
use sav_obs::{EventKind, Obs, Severity};
use sav_sim::{SimDuration, SimTime};
use sav_store::{apply, BindingRecord, BindingStore, StoreConfig, WalOp, WalTap};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for one replication-group member.
#[derive(Clone)]
pub struct ClusterConfig {
    /// This node's id. **Lower ids win elections**; give the preferred
    /// primary the lowest id.
    pub node_id: u64,
    /// The cluster endpoint this node listens on for peers.
    pub listen: SocketAddr,
    /// Every other group member: `(node_id, cluster endpoint)`.
    pub peers: Vec<(u64, SocketAddr)>,
    /// Directory for this node's durable binding replica.
    pub replica_dir: PathBuf,
    /// Durability tuning for the replica store.
    pub store: StoreConfig,
    /// Liveness lease: a peer silent this long is presumed dead, and a
    /// standby waits this long at startup before self-electing.
    pub lease: Duration,
    /// Heartbeat / election-tick cadence. Keep well under `lease`.
    pub heartbeat_interval: Duration,
    /// Leader-side in-memory catch-up window (records). Followers lagging
    /// further fall back to a full image transfer.
    pub retained_ops: usize,
    /// Redial schedule for peer links.
    pub backoff: BackoffPolicy,
    /// Observability sink (role gauges, lag gauge, failover events).
    pub obs: Obs,
}

impl ClusterConfig {
    /// A config with production-ish timing defaults.
    pub fn new(
        node_id: u64,
        listen: SocketAddr,
        peers: Vec<(u64, SocketAddr)>,
        replica_dir: impl Into<PathBuf>,
    ) -> ClusterConfig {
        ClusterConfig {
            node_id,
            listen,
            peers,
            replica_dir: replica_dir.into(),
            store: StoreConfig::default(),
            lease: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(100),
            retained_ops: 4096,
            backoff: BackoffPolicy::default(),
            obs: Obs::new(),
        }
    }
}

/// Notifications the embedder must react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// This node now leads: take the replica store, hydrate the SAV app,
    /// bind the southbound listener, and assert `MASTER(generation)`.
    BecameLeader {
        /// Generation to fence the switches with.
        generation: u64,
    },
    /// A newer generation fenced us: stop serving southbound.
    Deposed {
        /// The generation that displaced ours.
        by_generation: u64,
    },
}

/// One live peer link as the core sees it.
struct LinkHandle {
    /// Epoch of the serving `link_loop` (guards stale deregistration).
    epoch: u64,
    /// Encoded-frame outbox drained by the link thread.
    tx: Sender<Vec<u8>>,
    /// Set by the core to tell the link thread to die (outbox overflow).
    evicted: Arc<AtomicBool>,
}

/// Follower-side in-flight image transfer.
struct PendingImage {
    /// Epoch of the link delivering the transfer; entries from any other
    /// link are strays.
    epoch: u64,
    /// Sequence the stream continues from after `SnapshotEnd`.
    next_seq: u64,
    /// Generation of the serving leader; stamps the rebuilt replica.
    gen: u64,
    /// The image accumulated so far.
    image: BTreeMap<Ipv4Addr, BindingRecord>,
}

/// Shared state behind every thread of one node.
struct Core {
    node_id: u64,
    started: Instant,
    election: Election,
    obs: Obs,
    events: Sender<ClusterEvent>,
    /// The durable replica; `None` after the embedder took it on
    /// promotion (the live image below remains authoritative for serving
    /// followers).
    store: Option<BindingStore>,
    /// Durability tuning, kept for replica rebuilds after an image transfer.
    store_config: StoreConfig,
    /// Always-current binding image (replica plus streamed/committed ops).
    image: BTreeMap<Ipv4Addr, BindingRecord>,
    /// Next global sequence: everything below is applied/committed here.
    seq: u64,
    /// Generation that committed our last applied/committed record
    /// (0 = state recovered from disk without a stamp, or empty).
    applied_gen: u64,
    /// Stream authorization: `(link epoch, leader generation)` set by a
    /// vetted `TailBegin`/snapshot; records are only applied from this
    /// link at up to this generation.
    auth: Option<(u64, u64)>,
    /// Our `applied_gen` at the moment of our latest leadership claim —
    /// the generation whose prefix we can vouch for below `claim_seq`.
    prev_gen: u64,
    /// Our `seq` at the moment of our latest leadership claim.
    claim_seq: u64,
    /// Liveness lease (also throttles follower-side catch-up pulls).
    lease: SimDuration,
    /// Last instant replication moved our seq forward.
    last_progress: SimTime,
    /// Last instant we sent a `CatchupRequest`.
    last_catchup_req: SimTime,
    /// Tail window: the last `retained_cap` records seen, committed or
    /// applied, as `(seq, committing generation, op)`.
    retained: VecDeque<(u64, u64, WalOp)>,
    retained_cap: usize,
    /// Live peer outboxes, by peer id.
    links: HashMap<u64, LinkHandle>,
    /// Peer progress from Hello/heartbeats: id → (seq, applied_gen).
    /// Feeds the lag gauge and the promotion-time catch-up push.
    peer_state: HashMap<u64, (u64, u64)>,
    /// Follower-side in-flight image transfer.
    pending_image: Option<PendingImage>,
    /// Set when a takeover claim happens; consumed by
    /// [`ClusterHandle::report_failover_complete`].
    takeover_started: Option<Instant>,
}

impl Core {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn role_gauge(&self) {
        let v = match self.election.role() {
            Role::Leader => 2.0,
            Role::Follower => 3.0,
        };
        self.obs
            .gauges
            .set(format!("sav_cluster_role{{node=\"{}\"}}", self.node_id), v);
    }

    /// Largest outbox backlog a link may hold. Sized so one full image
    /// transfer plus a tail window never trips it, but a genuinely
    /// stalled peer does.
    fn outbox_limit(&self) -> usize {
        2 * self.image.len() + 2 * self.retained_cap + 1024
    }

    /// Send one encoded frame to every live link, evicting any link whose
    /// outbox has grown past [`Core::outbox_limit`] — a stalled peer must
    /// not grow the leader's memory without bound; it reconnects and
    /// renegotiates catch-up instead.
    fn fanout(&mut self, bytes: Vec<u8>) {
        let limit = self.outbox_limit();
        let mut evict = Vec::new();
        for (&id, link) in &self.links {
            if link.tx.len() > limit {
                link.evicted.store(true, Ordering::Relaxed);
                evict.push(id);
            } else {
                let _ = link.tx.send(bytes.clone());
            }
        }
        for id in evict {
            self.links.remove(&id);
            self.obs.event(
                Severity::Warn,
                EventKind::ClusterLinkDropped {
                    peer: id,
                    reason: "outbox_overflow",
                },
            );
        }
    }

    /// Remember one record in the tail window. Called for *both* leader
    /// commits and follower applies, so the window stays contiguous with
    /// `seq` across role changes.
    fn retain(&mut self, seq: u64, gen: u64, op: WalOp) {
        self.retained.push_back((seq, gen, op));
        while self.retained.len() > self.retained_cap {
            self.retained.pop_front();
        }
    }

    /// Commit one op at the head of the stream (leader path: called from
    /// the store tap after the record is durable) and fan it out.
    fn commit(&mut self, op: WalOp) {
        let seq = self.seq;
        let gen = self.election.generation().unwrap_or(self.applied_gen);
        self.seq += 1;
        self.applied_gen = gen;
        apply(&mut self.image, &op);
        self.retain(seq, gen, op);
        self.fanout(PeerMsg::WalRecord { seq, gen, op }.encode());
    }

    /// Serve catch-up to a follower whose replica is complete below
    /// `have_seq` with its last record committed by `peer_gen`.
    ///
    /// A tail stream is only offered when the follower's position is
    /// provably a prefix of our history: its last record carries our own
    /// generation, or it sits at or below our pre-claim position under
    /// the generation we ourselves applied (a leader's stream is linear
    /// within one generation, so prefixes of it are comparable by
    /// length). An unstamped prefix (`peer_gen == 0`) is only trusted
    /// when empty. Everything else — lagged past the window, ahead of
    /// us, or on a diverged fork — gets a truncating image transfer.
    fn serve_catchup(&mut self, have_seq: u64, peer_gen: u64, out: &Sender<Vec<u8>>) {
        let Some(my_gen) = self.election.generation() else {
            return;
        };
        if peer_gen > my_gen {
            // The peer applied records from a leader newer than us; we
            // have no authority over its suffix. The election will fence
            // one of us shortly.
            return;
        }
        let window_base = self.seq - self.retained.len() as u64;
        let vetted = have_seq == 0
            || (peer_gen == my_gen && have_seq <= self.seq)
            || (peer_gen == self.prev_gen && peer_gen > 0 && have_seq <= self.claim_seq);
        if vetted && have_seq >= window_base {
            let _ = out.send(
                PeerMsg::TailBegin {
                    gen: my_gen,
                    from_seq: have_seq,
                }
                .encode(),
            );
            for (seq, gen, op) in self.retained.iter().filter(|(s, _, _)| *s >= have_seq) {
                let _ = out.send(
                    PeerMsg::WalRecord {
                        seq: *seq,
                        gen: *gen,
                        op: *op,
                    }
                    .encode(),
                );
            }
        } else {
            // Same shape as a WAL reader lagging past a compaction:
            // snapshot, then tail. Also the divergence healer — the
            // follower replaces its replica wholesale, truncating any
            // suffix a dead leader left orphaned.
            let _ = out.send(
                PeerMsg::SnapshotBegin {
                    next_seq: self.seq,
                    gen: my_gen,
                }
                .encode(),
            );
            for rec in self.image.values() {
                let _ = out.send(
                    PeerMsg::SnapshotEntry {
                        op: WalOp::Upsert(*rec),
                    }
                    .encode(),
                );
            }
            let _ = out.send(PeerMsg::SnapshotEnd.encode());
        }
    }

    /// Apply one streamed record (follower path): durable replica first,
    /// then the live image. Returns `false` if the stream is not
    /// authorized for this link or does not land exactly at our head —
    /// the link must be dropped so the reconnect renegotiates catch-up.
    /// Nothing is ever silently skipped: a follower ahead of the stream
    /// fails the `seq` check and is healed by a truncating snapshot on
    /// the next negotiation.
    fn apply_record(&mut self, epoch: u64, seq: u64, gen: u64, op: &WalOp) -> bool {
        let authorized = self
            .auth
            .is_some_and(|(e, g)| e == epoch && gen <= g && gen >= self.applied_gen);
        if !authorized || seq != self.seq {
            return false;
        }
        if let Some(store) = &mut self.store {
            if let Err(e) = store.append(op) {
                self.obs.event(
                    Severity::Error,
                    EventKind::WalError {
                        op: format!("replica append: {e}"),
                    },
                );
            }
        }
        apply(&mut self.image, op);
        self.retain(seq, gen, *op);
        self.seq = seq + 1;
        self.applied_gen = gen;
        self.last_progress = self.now();
        true
    }

    /// Follower image transfer: rebuild the replica from scratch.
    fn finish_snapshot(&mut self) {
        let Some(PendingImage {
            epoch,
            next_seq,
            gen,
            image,
        }) = self.pending_image.take()
        else {
            return;
        };
        let store_config = self.store_config;
        if let Some(store) = &mut self.store {
            let dir = store.wal_file().parent().map(PathBuf::from);
            if let Some(dir) = dir {
                let rebuilt =
                    BindingStore::wipe(&dir).and_then(|()| BindingStore::open(&dir, store_config));
                match rebuilt {
                    Ok(mut fresh) => {
                        for rec in image.values() {
                            let _ = fresh.append(&WalOp::Upsert(*rec));
                        }
                        // Re-anchor the rebuilt store in the leader's
                        // sequence space and persist the base via the
                        // snapshot header.
                        fresh.align_next_seq(next_seq);
                        if let Err(e) = fresh.compact() {
                            self.obs.event(
                                Severity::Error,
                                EventKind::WalError {
                                    op: format!("replica compact: {e}"),
                                },
                            );
                        }
                        *store = fresh;
                    }
                    Err(e) => self.obs.event(
                        Severity::Error,
                        EventKind::WalError {
                            op: format!("replica rebuild: {e}"),
                        },
                    ),
                }
            }
        }
        self.image = image;
        self.seq = next_seq;
        self.applied_gen = gen;
        // The image transfer authorizes the live stream that follows it.
        self.auth = Some((epoch, gen));
        self.retained.clear();
        self.last_progress = self.now();
    }

    /// Handle one peer message arriving on the link with `epoch`, able to
    /// reply on `out`. Returns `false` if the link must be dropped
    /// (unauthorized or misaligned stream — reconnecting renegotiates).
    fn handle_peer_msg(&mut self, msg: PeerMsg, epoch: u64, out: &Sender<Vec<u8>>) -> bool {
        let now = self.now();
        match msg {
            PeerMsg::Hello { .. } => {} // handled at link setup
            PeerMsg::Heartbeat {
                node_id,
                generation,
                seq,
                applied_gen,
                leading,
            } => {
                self.election.observe(node_id, generation, leading, now);
                self.peer_state.insert(node_id, (seq, applied_gen));
                // Follower pull: the leader's head differs from ours and
                // nothing has streamed for a lease — ask for catch-up
                // (throttled to one request per lease).
                if leading
                    && self.election.role() == Role::Follower
                    && self.pending_image.is_none()
                    && self.election.leader_hint(now) == node_id
                    && seq != self.seq
                    && now.saturating_since(self.last_progress) > self.lease
                    && now.saturating_since(self.last_catchup_req) > self.lease
                {
                    self.last_catchup_req = now;
                    let _ = out.send(
                        PeerMsg::CatchupRequest {
                            have_seq: self.seq,
                            applied_gen: self.applied_gen,
                        }
                        .encode(),
                    );
                }
            }
            PeerMsg::CatchupRequest {
                have_seq,
                applied_gen,
            } => {
                if self.election.role() == Role::Leader {
                    self.serve_catchup(have_seq, applied_gen, out);
                }
            }
            PeerMsg::TailBegin { gen, from_seq } => {
                if self.election.role() != Role::Follower || self.pending_image.is_some() {
                    return true; // stale go-ahead (we promoted meanwhile)
                }
                if from_seq != self.seq || gen < self.applied_gen {
                    // The leader vetted a position we no longer hold;
                    // reconnect and renegotiate from the current one.
                    return false;
                }
                self.auth = Some((epoch, gen));
            }
            PeerMsg::WalRecord { seq, gen, op } => {
                if self.election.role() == Role::Follower && self.pending_image.is_none() {
                    return self.apply_record(epoch, seq, gen, &op);
                }
            }
            PeerMsg::SnapshotBegin { next_seq, gen } => {
                if self.election.role() == Role::Follower && gen >= self.applied_gen {
                    self.pending_image = Some(PendingImage {
                        epoch,
                        next_seq,
                        gen,
                        image: BTreeMap::new(),
                    });
                }
            }
            PeerMsg::SnapshotEntry { op } => {
                if let Some(p) = &mut self.pending_image {
                    if p.epoch == epoch {
                        apply(&mut p.image, &op);
                    }
                }
            }
            PeerMsg::SnapshotEnd => {
                if self
                    .pending_image
                    .as_ref()
                    .is_some_and(|p| p.epoch == epoch)
                {
                    self.finish_snapshot();
                }
            }
        }
        true
    }

    /// One election/heartbeat tick. Returns the encoded heartbeat to
    /// broadcast.
    fn tick(&mut self) -> Vec<u8> {
        let now = self.now();
        match self.election.tick(now) {
            Transition::BecameLeader { generation } => {
                // Anchor the vetting boundary: below `claim_seq` our
                // history is the `prev_gen` leader's; above it, ours.
                self.prev_gen = self.applied_gen;
                self.claim_seq = self.seq;
                self.pending_image = None;
                self.auth = None;
                self.obs.event(
                    Severity::Info,
                    EventKind::LeaderElected {
                        node: self.node_id,
                        generation,
                    },
                );
                if generation > 1 {
                    // Not the group's first election: this is a takeover.
                    self.takeover_started = Some(Instant::now());
                }
                let _ = self.events.send(ClusterEvent::BecameLeader { generation });
                // Back-fill every registered standby now: on a quiet
                // network (no fresh commits) a replica that linked up
                // before we won would otherwise never catch up. A stale
                // peer position is harmless — a misaligned TailBegin
                // makes the follower reconnect and renegotiate.
                let targets: Vec<(u64, Sender<Vec<u8>>)> = self
                    .links
                    .iter()
                    .map(|(&id, l)| (id, l.tx.clone()))
                    .collect();
                for (id, tx) in targets {
                    let (have_seq, peer_gen) = self.peer_state.get(&id).copied().unwrap_or((0, 0));
                    self.serve_catchup(have_seq, peer_gen, &tx);
                }
            }
            Transition::Deposed { by_generation } => {
                let _ = self.events.send(ClusterEvent::Deposed { by_generation });
            }
            Transition::None => {}
        }
        self.role_gauge();
        if self.election.role() == Role::Leader {
            let lag = self
                .peer_state
                .iter()
                .filter(|(id, _)| self.links.contains_key(id))
                .map(|(_, &(s, _))| self.seq.saturating_sub(s))
                .max()
                .unwrap_or(0);
            self.obs
                .gauges
                .set("sav_cluster_replication_lag_records", lag as f64);
        }
        let generation = self
            .election
            .generation()
            .unwrap_or_else(|| self.election.max_generation_seen());
        PeerMsg::Heartbeat {
            node_id: self.node_id,
            generation,
            seq: self.seq,
            applied_gen: self.applied_gen,
            leading: self.election.role() == Role::Leader,
        }
        .encode()
    }
}

/// A running cluster node.
pub struct ClusterHandle {
    core: Arc<Mutex<Core>>,
    stop: Arc<AtomicBool>,
    events: Receiver<ClusterEvent>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ClusterHandle {
    /// Promotion/deposition notifications, in order.
    pub fn events(&self) -> &Receiver<ClusterEvent> {
        &self.events
    }

    /// This node's current role.
    pub fn role(&self) -> Role {
        self.core.lock().unwrap().election.role()
    }

    /// Our leadership generation (None unless leading).
    pub fn generation(&self) -> Option<u64> {
        self.core.lock().unwrap().election.generation()
    }

    /// Head of the applied/committed stream.
    pub fn seq(&self) -> u64 {
        self.core.lock().unwrap().seq
    }

    /// Current replica image (clone).
    pub fn bindings(&self) -> BTreeMap<Ipv4Addr, BindingRecord> {
        self.core.lock().unwrap().image.clone()
    }

    /// Take the durable replica on promotion; the SAV app should be
    /// hydrated from it and must then feed commits back via
    /// [`ClusterHandle::wal_tap`]. Returns `None` if already taken.
    pub fn take_store(&self) -> Option<BindingStore> {
        self.core.lock().unwrap().store.take()
    }

    /// A [`WalTap`] that replicates every durable append to the standbys.
    /// Install it on the promoted store:
    /// `store.set_tap(handle.wal_tap())`.
    pub fn wal_tap(&self) -> WalTap {
        let core = self.core.clone();
        Box::new(move |_local_seq, op| {
            core.lock().unwrap().commit(*op);
        })
    }

    /// The embedder finished its takeover (store taken, app hydrated,
    /// southbound serving as master): emit `failover_completed` with the
    /// claim-to-now latency and bump `sav_failover_total`. No-op for the
    /// group's first election.
    pub fn report_failover_complete(&self) {
        let mut core = self.core.lock().unwrap();
        let Some(t0) = core.takeover_started.take() else {
            return;
        };
        let generation = core.election.generation().unwrap_or(0);
        let node = core.node_id;
        core.obs.counters.incr("sav_failover_total");
        core.obs.event(
            Severity::Info,
            EventKind::FailoverCompleted {
                node,
                generation,
                takeover_ms: t0.elapsed().as_millis() as u64,
            },
        );
    }

    /// Stop every thread and join them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The cluster subsystem entry point: open (or recover) the replica and
/// start the thread family.
pub struct ClusterNode;

impl ClusterNode {
    /// Spawn a node. Fails only if the replica store or the listener
    /// cannot be set up.
    pub fn spawn(config: ClusterConfig) -> std::io::Result<ClusterHandle> {
        let store = BindingStore::open(&config.replica_dir, config.store)?;
        let listener = TcpListener::bind(config.listen)?;
        listener.set_nonblocking(true)?;
        let started = Instant::now();
        let lease = SimDuration::from_nanos(config.lease.as_nanos() as u64);
        let (events_tx, events_rx) = unbounded();
        config.obs.counters.add("sav_failover_total", 0);
        let core = Arc::new(Mutex::new(Core {
            node_id: config.node_id,
            started,
            election: Election::new(config.node_id, lease, SimTime::ZERO),
            obs: config.obs.clone(),
            events: events_tx,
            seq: store.seq(),
            image: store.bindings().clone(),
            store: Some(store),
            store_config: config.store,
            applied_gen: 0,
            auth: None,
            prev_gen: 0,
            claim_seq: 0,
            lease,
            last_progress: SimTime::ZERO,
            last_catchup_req: SimTime::ZERO,
            retained: VecDeque::new(),
            retained_cap: config.retained_ops.max(1),
            links: HashMap::new(),
            peer_state: HashMap::new(),
            pending_image: None,
            takeover_started: None,
        }));
        core.lock().unwrap().role_gauge();

        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        // Listener: accept links from higher-id peers.
        {
            let core = core.clone();
            let stop = stop.clone();
            let epoch = epoch.clone();
            threads.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let core = core.clone();
                            let stop = stop.clone();
                            let epoch = epoch.clone();
                            thread::spawn(move || link_loop(stream, core, stop, epoch));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        // Dialers: one per lower-id peer (higher ids dial lower ids).
        for (peer_id, addr) in config
            .peers
            .iter()
            .filter(|(id, _)| *id < config.node_id)
            .cloned()
        {
            let core = core.clone();
            let stop = stop.clone();
            let epoch = epoch.clone();
            let policy = BackoffPolicy {
                seed: config.backoff.seed ^ peer_id,
                ..config.backoff.clone()
            };
            threads.push(thread::spawn(move || {
                let mut backoff = policy.start();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(stream) = TcpStream::connect(addr) {
                        backoff.reset();
                        link_loop(stream, core.clone(), stop.clone(), epoch.clone());
                    }
                    let wait = backoff.next_delay();
                    let deadline = Instant::now() + wait;
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        thread::sleep(Duration::from_millis(5));
                    }
                }
            }));
        }

        // Ticker: election clock, heartbeats, gauges.
        {
            let core = core.clone();
            let stop = stop.clone();
            let interval = config.heartbeat_interval;
            threads.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    {
                        let mut c = core.lock().unwrap();
                        let hb = c.tick();
                        // Through fanout, so heartbeats count against the
                        // outbox bound too.
                        c.fanout(hb);
                    }
                    thread::sleep(interval);
                }
            }));
        }

        Ok(ClusterHandle {
            core,
            stop,
            events: events_rx,
            threads,
        })
    }
}

/// Serve one established peer link until it dies or the node stops.
fn link_loop(
    mut stream: TcpStream,
    core: Arc<Mutex<Core>>,
    stop: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    let my_epoch = epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let (out_tx, out_rx) = unbounded::<Vec<u8>>();
    let evicted = Arc::new(AtomicBool::new(false));

    // Opener: who we are and where our replica ends.
    {
        let c = core.lock().unwrap();
        let hello = PeerMsg::Hello {
            version: PROTO_VERSION,
            node_id: c.node_id,
            have_seq: c.seq,
            applied_gen: c.applied_gen,
        };
        drop(c);
        if stream.write_all(&hello.encode()).is_err() {
            return;
        }
    }

    let mut deframer = PeerDeframer::new();
    let mut buf = [0u8; 8192];
    let mut peer_id: Option<u64> = None;
    loop {
        if stop.load(Ordering::Relaxed) || evicted.load(Ordering::Relaxed) {
            break;
        }
        // Outbound first: heartbeats, records, catch-up.
        let mut dead = false;
        while let Ok(frame) = out_rx.try_recv() {
            if stream.write_all(&frame).is_err() {
                dead = true;
                break;
            }
        }
        if dead {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                deframer.push(&buf[..n]);
                loop {
                    match deframer.next_message() {
                        Ok(Some(PeerMsg::Hello {
                            version,
                            node_id,
                            have_seq,
                            applied_gen,
                        })) => {
                            if version != PROTO_VERSION {
                                let _ = stream.shutdown(Shutdown::Both);
                                deregister(&core, peer_id, my_epoch, None);
                                return;
                            }
                            peer_id = Some(node_id);
                            let mut c = core.lock().unwrap();
                            c.links.insert(
                                node_id,
                                LinkHandle {
                                    epoch: my_epoch,
                                    tx: out_tx.clone(),
                                    evicted: evicted.clone(),
                                },
                            );
                            c.peer_state.insert(node_id, (have_seq, applied_gen));
                            if c.election.role() == Role::Leader {
                                c.serve_catchup(have_seq, applied_gen, &out_tx);
                            }
                        }
                        Ok(Some(msg)) => {
                            if !core.lock().unwrap().handle_peer_msg(msg, my_epoch, &out_tx) {
                                let _ = stream.shutdown(Shutdown::Both);
                                deregister(&core, peer_id, my_epoch, Some("stream_mismatch"));
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let _ = stream.shutdown(Shutdown::Both);
                            deregister(&core, peer_id, my_epoch, Some("protocol_error"));
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    deregister(&core, peer_id, my_epoch, None);
}

/// Remove this link's outbox unless a newer link already replaced it, and
/// abandon any image transfer this link was delivering (a half-received
/// image must not wedge the follower — the next negotiation restarts it).
/// A `reason` means the link was severed by policy, worth a journal line.
fn deregister(
    core: &Arc<Mutex<Core>>,
    peer_id: Option<u64>,
    my_epoch: u64,
    reason: Option<&'static str>,
) {
    let mut c = core.lock().unwrap();
    if let Some(id) = peer_id {
        if c.links.get(&id).is_some_and(|l| l.epoch == my_epoch) {
            c.links.remove(&id);
        }
        if let Some(reason) = reason {
            c.obs.event(
                Severity::Warn,
                EventKind::ClusterLinkDropped { peer: id, reason },
            );
        }
    }
    if c.pending_image
        .as_ref()
        .is_some_and(|p| p.epoch == my_epoch)
    {
        c.pending_image = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_store::{FsyncPolicy, RecordSource};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sav-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn free_addr() -> SocketAddr {
        TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
    }

    fn fast(
        node_id: u64,
        listen: SocketAddr,
        peers: Vec<(u64, SocketAddr)>,
        dir: PathBuf,
    ) -> ClusterConfig {
        let mut c = ClusterConfig::new(node_id, listen, peers, dir);
        c.store.fsync = FsyncPolicy::Never;
        c.lease = Duration::from_millis(250);
        c.heartbeat_interval = Duration::from_millis(25);
        c.backoff.base = Duration::from_millis(20);
        c.backoff.cap = Duration::from_millis(100);
        c
    }

    fn rec(i: u8) -> BindingRecord {
        BindingRecord {
            ip: Ipv4Addr::new(10, 0, 0, i),
            mac: sav_net::addr::MacAddr::from_index(i as u64),
            dpid: 1,
            port: u32::from(i),
            source: RecordSource::Dhcp,
            expires: None,
        }
    }

    fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if f() {
                return;
            }
            thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    /// Simulate the embedder's promotion step: take the replica, install
    /// the replication tap, return the store ready for the SAV app.
    fn promote(h: &ClusterHandle) -> BindingStore {
        let mut store = h.take_store().expect("store already taken");
        store.set_tap(h.wal_tap());
        store
    }

    #[test]
    fn lowest_id_leads_and_streams_records_to_the_standby() {
        let (a1, a2) = (free_addr(), free_addr());
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], tmp("stream-1"))).unwrap();
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], tmp("stream-2"))).unwrap();

        let ev = h1.events().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(ev, ClusterEvent::BecameLeader { generation: 1 });
        assert_eq!(h2.role(), Role::Follower);

        let mut store = promote(&h1);
        for i in 1..=3 {
            store.append(&WalOp::Upsert(rec(i))).unwrap();
        }
        wait_until("standby to replicate 3 records", || h2.seq() == 3);
        assert_eq!(h2.bindings().len(), 3);
        assert_eq!(h2.bindings(), h1.bindings());
        assert!(
            h2.events().try_recv().is_err(),
            "standby must not promote while the leader lives"
        );
        drop((h1, h2));
    }

    #[test]
    fn standby_promotes_with_the_full_replica_after_leader_death() {
        let (a1, a2) = (free_addr(), free_addr());
        let obs2 = Obs::new();
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], tmp("fo-1"))).unwrap();
        let mut cfg2 = fast(2, a2, vec![(1, a1)], tmp("fo-2"));
        cfg2.obs = obs2.clone();
        let h2 = ClusterNode::spawn(cfg2).unwrap();

        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();
        let mut store = promote(&h1);
        store.append(&WalOp::Upsert(rec(1))).unwrap();
        store.append(&WalOp::Upsert(rec(2))).unwrap();
        wait_until("replication", || h2.seq() == 2);

        // Kill the leader: the standby must claim a strictly newer
        // generation within ~one lease.
        h1.shutdown();
        let ev = h2.events().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(ev, ClusterEvent::BecameLeader { generation: 2 });

        // Its replica already holds both bindings — zero re-learning.
        let replica = promote(&h2);
        assert_eq!(replica.bindings().len(), 2);
        assert_eq!(
            replica.bindings().get(&Ipv4Addr::new(10, 0, 0, 1)),
            Some(&rec(1))
        );

        h2.report_failover_complete();
        assert_eq!(obs2.counters.get("sav_failover_total"), 1);
        let journal = obs2.journal.tail_jsonl(10);
        assert!(journal.contains("leader_elected"), "journal: {journal}");
        assert!(journal.contains("failover_completed"), "journal: {journal}");
        drop(h2);
    }

    #[test]
    fn late_follower_catches_up_via_image_transfer() {
        let (a1, a2) = (free_addr(), free_addr());
        let mut cfg1 = fast(1, a1, vec![(2, a2)], tmp("snap-1"));
        cfg1.retained_ops = 2; // force the window to forget early records
        let h1 = ClusterNode::spawn(cfg1).unwrap();
        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();

        let mut store = promote(&h1);
        for i in 1..=5 {
            store.append(&WalOp::Upsert(rec(i))).unwrap();
        }
        assert_eq!(h1.seq(), 5);

        // A brand-new standby joins at have_seq 0, far behind the 2-record
        // window: it must get SnapshotBegin/Entry*/End then live records.
        let dir2 = tmp("snap-2");
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], dir2.clone())).unwrap();
        wait_until("image transfer", || h2.seq() == 5);
        assert_eq!(h2.bindings(), h1.bindings());

        // And the transfer is durable: the rebuilt replica recovers from
        // disk like any standalone store.
        store
            .append(&WalOp::Remove(Ipv4Addr::new(10, 0, 0, 3)))
            .unwrap();
        wait_until("live tail after image", || h2.seq() == 6);
        drop(h2);
        let reopened = BindingStore::open(&dir2, StoreConfig::default()).unwrap();
        assert_eq!(reopened.bindings().len(), 4);
        assert!(!reopened
            .bindings()
            .contains_key(&Ipv4Addr::new(10, 0, 0, 3)));
        drop(h1);
    }

    /// Review finding: a leader that wins with pre-existing WAL state must
    /// back-fill standbys even if no new commit ever happens — the Hellos
    /// were exchanged during the election grace, before it could serve.
    #[test]
    fn standby_backfills_preexisting_state_without_new_commits() {
        let dir1 = tmp("backfill-1");
        {
            let mut seed = BindingStore::open(&dir1, StoreConfig::default()).unwrap();
            for i in 1..=3 {
                seed.append(&WalOp::Upsert(rec(i))).unwrap();
            }
        }
        let (a1, a2) = (free_addr(), free_addr());
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], dir1)).unwrap();
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], tmp("backfill-2"))).unwrap();
        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();
        // Deliberately no promote()/append: the network stays quiet.
        wait_until("standby back-fill of recovered state", || h2.seq() == 3);
        assert_eq!(h2.bindings(), h1.bindings());
        assert_eq!(h2.bindings().len(), 3);
        drop((h1, h2));
    }

    /// Review finding: a follower *ahead* of a newly elected leader (its
    /// suffix was orphaned by the old leader's death) must be truncated to
    /// the leader's history, not left silently diverged while the
    /// leader's fresh commits are discarded as "duplicates".
    #[test]
    fn diverged_standby_is_truncated_to_the_leaders_history() {
        let dir1 = tmp("diverge-1");
        let dir2 = tmp("diverge-2");
        {
            let mut s1 = BindingStore::open(&dir1, StoreConfig::default()).unwrap();
            s1.append(&WalOp::Upsert(rec(1))).unwrap();
            let mut s2 = BindingStore::open(&dir2, StoreConfig::default()).unwrap();
            for i in 11..=13 {
                s2.append(&WalOp::Upsert(rec(i))).unwrap();
            }
        }
        let (a1, a2) = (free_addr(), free_addr());
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], dir1)).unwrap();
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], dir2.clone())).unwrap();
        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();

        // The ahead-standby converges DOWN to the leader's single record.
        wait_until("diverged standby truncation", || {
            h2.seq() == 1 && h2.bindings().len() == 1
        });
        assert_eq!(h2.bindings(), h1.bindings());
        assert!(!h2.bindings().contains_key(&rec(11).ip), "orphan kept");

        // And it tracks the leader's new commits from there.
        let mut store = promote(&h1);
        store.append(&WalOp::Upsert(rec(2))).unwrap();
        wait_until("post-truncation streaming", || h2.seq() == 2);
        assert_eq!(h2.bindings(), h1.bindings());

        // The truncation is durable: the replica on disk matches too.
        drop(h2);
        let reopened = BindingStore::open(&dir2, StoreConfig::default()).unwrap();
        assert_eq!(reopened.bindings().len(), 2);
        assert!(!reopened.bindings().contains_key(&rec(11).ip));
        assert_eq!(reopened.seq(), 2, "leader's sequence space adopted");
        drop(h1);
    }

    /// Review finding: a stalled peer must not grow the leader's fan-out
    /// queue without bound — past the outbox limit the link is evicted
    /// (and journalled), forcing a reconnect + catch-up instead.
    #[test]
    fn stalled_outbox_evicts_the_link() {
        let obs = Obs::new();
        let (events_tx, _events_rx) = unbounded();
        let mut core = Core {
            node_id: 1,
            started: Instant::now(),
            election: Election::new(1, SimDuration::from_millis(50), SimTime::ZERO),
            obs: obs.clone(),
            events: events_tx,
            store: None,
            store_config: StoreConfig::default(),
            image: BTreeMap::new(),
            seq: 0,
            applied_gen: 0,
            auth: None,
            prev_gen: 0,
            claim_seq: 0,
            lease: SimDuration::from_millis(50),
            last_progress: SimTime::ZERO,
            last_catchup_req: SimTime::ZERO,
            retained: VecDeque::new(),
            retained_cap: 4,
            links: HashMap::new(),
            peer_state: HashMap::new(),
            pending_image: None,
            takeover_started: None,
        };
        let (tx, rx) = unbounded();
        let evicted = Arc::new(AtomicBool::new(false));
        core.links.insert(
            2,
            LinkHandle {
                epoch: 1,
                tx,
                evicted: evicted.clone(),
            },
        );
        // Nobody drains the outbox: commits pile up until the bound trips.
        let budget = core.outbox_limit() + 10;
        for i in 0..=budget {
            core.commit(WalOp::Upsert(rec(1)));
            if core.links.is_empty() {
                break;
            }
            assert!(i < budget, "link never evicted");
        }
        assert!(evicted.load(Ordering::Relaxed), "link thread not signalled");
        assert!(
            obs.journal.tail_jsonl(3).contains("cluster_link_dropped"),
            "eviction must reach the journal"
        );
        drop(rx);
    }
}
