//! The cluster node runtime: peer links, WAL streaming, and promotion.
//!
//! A [`ClusterNode`] runs a small thread family around one shared core:
//!
//! * a **listener** accepting peer links on this node's cluster endpoint,
//! * one **dialer** per lower-id peer (higher ids dial lower ids, so each
//!   pair gets exactly one link; redials use the southbound channel's
//!   capped-jittered backoff),
//! * a **ticker** driving the [`Election`] lease clock, heartbeats, and
//!   the cluster gauges.
//!
//! While following, the node owns a *durable* replica: every streamed
//! [`PeerMsg::WalRecord`] is appended to its own [`BindingStore`], so a
//! standby that crashes and restarts recovers its copy from disk exactly
//! like a standalone controller would. On promotion the embedder calls
//! [`ClusterHandle::take_store`] and hands the replica to the SAV app —
//! replay is the recovery path that already exists; failover adds nothing
//! new to trust.
//!
//! The leader keeps a bounded in-memory window of recent records for tail
//! catch-up. A follower whose `Hello{have_seq}` predates the window gets a
//! full image transfer (`SnapshotBegin` / `SnapshotEntry*` / `SnapshotEnd`)
//! — the same snapshot-plus-tail fallback the on-disk WAL uses after
//! compaction ([`sav_store::TailError::Compacted`]).

use crate::election::{Election, Role, Transition};
use crate::proto::{PeerDeframer, PeerMsg, PROTO_VERSION};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sav_channel::BackoffPolicy;
use sav_obs::{EventKind, Obs, Severity};
use sav_sim::{SimDuration, SimTime};
use sav_store::{apply, BindingRecord, BindingStore, StoreConfig, WalOp, WalTap};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Tuning for one replication-group member.
#[derive(Clone)]
pub struct ClusterConfig {
    /// This node's id. **Lower ids win elections**; give the preferred
    /// primary the lowest id.
    pub node_id: u64,
    /// The cluster endpoint this node listens on for peers.
    pub listen: SocketAddr,
    /// Every other group member: `(node_id, cluster endpoint)`.
    pub peers: Vec<(u64, SocketAddr)>,
    /// Directory for this node's durable binding replica.
    pub replica_dir: PathBuf,
    /// Durability tuning for the replica store.
    pub store: StoreConfig,
    /// Liveness lease: a peer silent this long is presumed dead, and a
    /// standby waits this long at startup before self-electing.
    pub lease: Duration,
    /// Heartbeat / election-tick cadence. Keep well under `lease`.
    pub heartbeat_interval: Duration,
    /// Leader-side in-memory catch-up window (records). Followers lagging
    /// further fall back to a full image transfer.
    pub retained_ops: usize,
    /// Redial schedule for peer links.
    pub backoff: BackoffPolicy,
    /// Observability sink (role gauges, lag gauge, failover events).
    pub obs: Obs,
}

impl ClusterConfig {
    /// A config with production-ish timing defaults.
    pub fn new(
        node_id: u64,
        listen: SocketAddr,
        peers: Vec<(u64, SocketAddr)>,
        replica_dir: impl Into<PathBuf>,
    ) -> ClusterConfig {
        ClusterConfig {
            node_id,
            listen,
            peers,
            replica_dir: replica_dir.into(),
            store: StoreConfig::default(),
            lease: Duration::from_millis(500),
            heartbeat_interval: Duration::from_millis(100),
            retained_ops: 4096,
            backoff: BackoffPolicy::default(),
            obs: Obs::new(),
        }
    }
}

/// Notifications the embedder must react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// This node now leads: take the replica store, hydrate the SAV app,
    /// bind the southbound listener, and assert `MASTER(generation)`.
    BecameLeader {
        /// Generation to fence the switches with.
        generation: u64,
    },
    /// A newer generation fenced us: stop serving southbound.
    Deposed {
        /// The generation that displaced ours.
        by_generation: u64,
    },
}

/// Shared state behind every thread of one node.
struct Core {
    node_id: u64,
    started: Instant,
    election: Election,
    obs: Obs,
    events: Sender<ClusterEvent>,
    /// The durable replica; `None` after the embedder took it on
    /// promotion (the live image below remains authoritative for serving
    /// followers).
    store: Option<BindingStore>,
    /// Durability tuning, kept for replica rebuilds after an image transfer.
    store_config: StoreConfig,
    /// Always-current binding image (replica plus streamed/committed ops).
    image: BTreeMap<Ipv4Addr, BindingRecord>,
    /// Next global sequence: everything below is applied/committed here.
    seq: u64,
    /// Leader-side tail window: the last `retained_cap` committed records.
    retained: VecDeque<(u64, WalOp)>,
    retained_cap: usize,
    /// Live peer outboxes: peer id → (link epoch, encoded-frame sender).
    links: HashMap<u64, (u64, Sender<Vec<u8>>)>,
    /// Follower progress from heartbeats (leader side, for the lag gauge).
    follower_seq: HashMap<u64, u64>,
    /// Follower-side in-flight image transfer.
    pending_image: Option<(u64, BTreeMap<Ipv4Addr, BindingRecord>)>,
    /// Set when a takeover claim happens; consumed by
    /// [`ClusterHandle::report_failover_complete`].
    takeover_started: Option<Instant>,
}

impl Core {
    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn role_gauge(&self) {
        let v = match self.election.role() {
            Role::Leader => 2.0,
            Role::Follower => 3.0,
        };
        self.obs
            .gauges
            .set(format!("sav_cluster_role{{node=\"{}\"}}", self.node_id), v);
    }

    /// Commit one op at the head of the stream (leader path: called from
    /// the store tap after the record is durable) and fan it out.
    fn commit(&mut self, op: WalOp) {
        let seq = self.seq;
        self.seq += 1;
        apply(&mut self.image, &op);
        let bytes = PeerMsg::WalRecord { seq, op }.encode();
        self.retained.push_back((seq, op));
        while self.retained.len() > self.retained_cap {
            self.retained.pop_front();
        }
        for (_, tx) in self.links.values() {
            let _ = tx.send(bytes.clone());
        }
    }

    /// Serve catch-up to a follower that has everything below `have_seq`:
    /// tail records if the window still covers it, else a full image.
    fn serve_catchup(&mut self, have_seq: u64, out: &Sender<Vec<u8>>) {
        let window_base = self.seq - self.retained.len() as u64;
        if have_seq >= window_base {
            for (seq, op) in self.retained.iter().filter(|(s, _)| *s >= have_seq) {
                let _ = out.send(PeerMsg::WalRecord { seq: *seq, op: *op }.encode());
            }
        } else {
            // The follower lagged past the retained window — same shape as
            // a WAL reader lagging past a compaction: snapshot, then tail.
            let _ = out.send(PeerMsg::SnapshotBegin { next_seq: self.seq }.encode());
            for rec in self.image.values() {
                let _ = out.send(
                    PeerMsg::SnapshotEntry {
                        op: WalOp::Upsert(*rec),
                    }
                    .encode(),
                );
            }
            let _ = out.send(PeerMsg::SnapshotEnd.encode());
        }
    }

    /// Apply one streamed record (follower path): durable replica first,
    /// then the live image. Returns `false` on a sequence gap — the link
    /// must be dropped so the follower re-`Hello`s and gets catch-up.
    fn apply_record(&mut self, seq: u64, op: &WalOp) -> bool {
        if seq < self.seq {
            return true; // duplicate from a catch-up overlap
        }
        if seq > self.seq {
            // We missed records (e.g. the old leader died mid-broadcast and
            // this peer — promoted since — has commits we never saw).
            // Reconnecting replays the Hello/catch-up handshake.
            return false;
        }
        if let Some(store) = &mut self.store {
            if let Err(e) = store.append(op) {
                self.obs.event(
                    Severity::Error,
                    EventKind::WalError {
                        op: format!("replica append: {e}"),
                    },
                );
            }
        }
        apply(&mut self.image, op);
        self.seq = seq + 1;
        true
    }

    /// Follower image transfer: rebuild the replica from scratch.
    fn finish_snapshot(&mut self) {
        let Some((next_seq, image)) = self.pending_image.take() else {
            return;
        };
        let store_config = self.store_config;
        if let Some(store) = &mut self.store {
            let dir = store.wal_file().parent().map(PathBuf::from);
            if let Some(dir) = dir {
                let rebuilt =
                    BindingStore::wipe(&dir).and_then(|()| BindingStore::open(&dir, store_config));
                match rebuilt {
                    Ok(mut fresh) => {
                        for rec in image.values() {
                            let _ = fresh.append(&WalOp::Upsert(*rec));
                        }
                        *store = fresh;
                    }
                    Err(e) => self.obs.event(
                        Severity::Error,
                        EventKind::WalError {
                            op: format!("replica rebuild: {e}"),
                        },
                    ),
                }
            }
        }
        self.image = image;
        self.seq = next_seq;
    }

    /// Handle one peer message. Returns `false` if the link must be
    /// dropped (replication gap — reconnecting triggers catch-up).
    fn handle_peer_msg(&mut self, msg: PeerMsg) -> bool {
        let now = self.now();
        match msg {
            PeerMsg::Hello { .. } => {} // handled at link setup
            PeerMsg::Heartbeat {
                node_id,
                generation,
                seq,
            } => {
                self.election.observe(node_id, generation, now);
                self.follower_seq.insert(node_id, seq);
            }
            PeerMsg::WalRecord { seq, op } => {
                if self.election.role() == Role::Follower && self.pending_image.is_none() {
                    return self.apply_record(seq, &op);
                }
            }
            PeerMsg::SnapshotBegin { next_seq } => {
                if self.election.role() == Role::Follower {
                    self.pending_image = Some((next_seq, BTreeMap::new()));
                }
            }
            PeerMsg::SnapshotEntry { op } => {
                if let Some((_, image)) = &mut self.pending_image {
                    apply(image, &op);
                }
            }
            PeerMsg::SnapshotEnd => self.finish_snapshot(),
        }
        true
    }

    /// One election/heartbeat tick. Returns encoded frames to broadcast.
    fn tick(&mut self) -> Vec<u8> {
        let now = self.now();
        match self.election.tick(now) {
            Transition::BecameLeader { generation } => {
                self.obs.event(
                    Severity::Info,
                    EventKind::LeaderElected {
                        node: self.node_id,
                        generation,
                    },
                );
                if generation > 1 {
                    // Not the group's first election: this is a takeover.
                    self.takeover_started = Some(Instant::now());
                }
                let _ = self.events.send(ClusterEvent::BecameLeader { generation });
            }
            Transition::Deposed { by_generation } => {
                let _ = self.events.send(ClusterEvent::Deposed { by_generation });
            }
            Transition::None => {}
        }
        self.role_gauge();
        if self.election.role() == Role::Leader {
            let lag = self
                .follower_seq
                .iter()
                .filter(|(id, _)| self.links.contains_key(id))
                .map(|(_, &s)| self.seq.saturating_sub(s))
                .max()
                .unwrap_or(0);
            self.obs
                .gauges
                .set("sav_cluster_replication_lag_records", lag as f64);
        }
        let generation = self
            .election
            .generation()
            .unwrap_or_else(|| self.election.max_generation_seen());
        PeerMsg::Heartbeat {
            node_id: self.node_id,
            generation,
            seq: self.seq,
        }
        .encode()
    }
}

/// A running cluster node.
pub struct ClusterHandle {
    core: Arc<Mutex<Core>>,
    stop: Arc<AtomicBool>,
    events: Receiver<ClusterEvent>,
    threads: Vec<thread::JoinHandle<()>>,
}

impl ClusterHandle {
    /// Promotion/deposition notifications, in order.
    pub fn events(&self) -> &Receiver<ClusterEvent> {
        &self.events
    }

    /// This node's current role.
    pub fn role(&self) -> Role {
        self.core.lock().unwrap().election.role()
    }

    /// Our leadership generation (None unless leading).
    pub fn generation(&self) -> Option<u64> {
        self.core.lock().unwrap().election.generation()
    }

    /// Head of the applied/committed stream.
    pub fn seq(&self) -> u64 {
        self.core.lock().unwrap().seq
    }

    /// Current replica image (clone).
    pub fn bindings(&self) -> BTreeMap<Ipv4Addr, BindingRecord> {
        self.core.lock().unwrap().image.clone()
    }

    /// Take the durable replica on promotion; the SAV app should be
    /// hydrated from it and must then feed commits back via
    /// [`ClusterHandle::wal_tap`]. Returns `None` if already taken.
    pub fn take_store(&self) -> Option<BindingStore> {
        self.core.lock().unwrap().store.take()
    }

    /// A [`WalTap`] that replicates every durable append to the standbys.
    /// Install it on the promoted store:
    /// `store.set_tap(handle.wal_tap())`.
    pub fn wal_tap(&self) -> WalTap {
        let core = self.core.clone();
        Box::new(move |_local_seq, op| {
            core.lock().unwrap().commit(*op);
        })
    }

    /// The embedder finished its takeover (store taken, app hydrated,
    /// southbound serving as master): emit `failover_completed` with the
    /// claim-to-now latency and bump `sav_failover_total`. No-op for the
    /// group's first election.
    pub fn report_failover_complete(&self) {
        let mut core = self.core.lock().unwrap();
        let Some(t0) = core.takeover_started.take() else {
            return;
        };
        let generation = core.election.generation().unwrap_or(0);
        let node = core.node_id;
        core.obs.counters.incr("sav_failover_total");
        core.obs.event(
            Severity::Info,
            EventKind::FailoverCompleted {
                node,
                generation,
                takeover_ms: t0.elapsed().as_millis() as u64,
            },
        );
    }

    /// Stop every thread and join them.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ClusterHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The cluster subsystem entry point: open (or recover) the replica and
/// start the thread family.
pub struct ClusterNode;

impl ClusterNode {
    /// Spawn a node. Fails only if the replica store or the listener
    /// cannot be set up.
    pub fn spawn(config: ClusterConfig) -> std::io::Result<ClusterHandle> {
        let store = BindingStore::open(&config.replica_dir, config.store)?;
        let listener = TcpListener::bind(config.listen)?;
        listener.set_nonblocking(true)?;
        let started = Instant::now();
        let lease = SimDuration::from_nanos(config.lease.as_nanos() as u64);
        let (events_tx, events_rx) = unbounded();
        config.obs.counters.add("sav_failover_total", 0);
        let core = Arc::new(Mutex::new(Core {
            node_id: config.node_id,
            started,
            election: Election::new(config.node_id, lease, SimTime::ZERO),
            obs: config.obs.clone(),
            events: events_tx,
            seq: store.seq(),
            image: store.bindings().clone(),
            store: Some(store),
            store_config: config.store,
            retained: VecDeque::new(),
            retained_cap: config.retained_ops.max(1),
            links: HashMap::new(),
            follower_seq: HashMap::new(),
            pending_image: None,
            takeover_started: None,
        }));
        core.lock().unwrap().role_gauge();

        let stop = Arc::new(AtomicBool::new(false));
        let epoch = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();

        // Listener: accept links from higher-id peers.
        {
            let core = core.clone();
            let stop = stop.clone();
            let epoch = epoch.clone();
            threads.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let core = core.clone();
                            let stop = stop.clone();
                            let epoch = epoch.clone();
                            thread::spawn(move || link_loop(stream, core, stop, epoch));
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            }));
        }

        // Dialers: one per lower-id peer (higher ids dial lower ids).
        for (peer_id, addr) in config
            .peers
            .iter()
            .filter(|(id, _)| *id < config.node_id)
            .cloned()
        {
            let core = core.clone();
            let stop = stop.clone();
            let epoch = epoch.clone();
            let policy = BackoffPolicy {
                seed: config.backoff.seed ^ peer_id,
                ..config.backoff.clone()
            };
            threads.push(thread::spawn(move || {
                let mut backoff = policy.start();
                while !stop.load(Ordering::Relaxed) {
                    if let Ok(stream) = TcpStream::connect(addr) {
                        backoff.reset();
                        link_loop(stream, core.clone(), stop.clone(), epoch.clone());
                    }
                    let wait = backoff.next_delay();
                    let deadline = Instant::now() + wait;
                    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
                        thread::sleep(Duration::from_millis(5));
                    }
                }
            }));
        }

        // Ticker: election clock, heartbeats, gauges.
        {
            let core = core.clone();
            let stop = stop.clone();
            let interval = config.heartbeat_interval;
            threads.push(thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let (hb, targets) = {
                        let mut c = core.lock().unwrap();
                        let hb = c.tick();
                        let targets: Vec<Sender<Vec<u8>>> =
                            c.links.values().map(|(_, tx)| tx.clone()).collect();
                        (hb, targets)
                    };
                    for tx in targets {
                        let _ = tx.send(hb.clone());
                    }
                    thread::sleep(interval);
                }
            }));
        }

        Ok(ClusterHandle {
            core,
            stop,
            events: events_rx,
            threads,
        })
    }
}

/// Serve one established peer link until it dies or the node stops.
fn link_loop(
    mut stream: TcpStream,
    core: Arc<Mutex<Core>>,
    stop: Arc<AtomicBool>,
    epoch: Arc<AtomicU64>,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(5)));
    let my_epoch = epoch.fetch_add(1, Ordering::Relaxed) + 1;
    let (out_tx, out_rx) = unbounded::<Vec<u8>>();

    // Opener: who we are and where our replica ends.
    {
        let c = core.lock().unwrap();
        let hello = PeerMsg::Hello {
            version: PROTO_VERSION,
            node_id: c.node_id,
            have_seq: c.seq,
        };
        drop(c);
        if stream.write_all(&hello.encode()).is_err() {
            return;
        }
    }

    let mut deframer = PeerDeframer::new();
    let mut buf = [0u8; 8192];
    let mut peer_id: Option<u64> = None;
    loop {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        // Outbound first: heartbeats, records, catch-up.
        let mut dead = false;
        while let Ok(frame) = out_rx.try_recv() {
            if stream.write_all(&frame).is_err() {
                dead = true;
                break;
            }
        }
        if dead {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                deframer.push(&buf[..n]);
                loop {
                    match deframer.next_message() {
                        Ok(Some(PeerMsg::Hello {
                            version,
                            node_id,
                            have_seq,
                        })) => {
                            if version != PROTO_VERSION {
                                let _ = stream.shutdown(Shutdown::Both);
                                deregister(&core, peer_id, my_epoch);
                                return;
                            }
                            peer_id = Some(node_id);
                            let mut c = core.lock().unwrap();
                            c.links.insert(node_id, (my_epoch, out_tx.clone()));
                            if c.election.role() == Role::Leader {
                                c.serve_catchup(have_seq, &out_tx);
                            }
                        }
                        Ok(Some(msg)) => {
                            if !core.lock().unwrap().handle_peer_msg(msg) {
                                let _ = stream.shutdown(Shutdown::Both);
                                deregister(&core, peer_id, my_epoch);
                                return;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => {
                            let _ = stream.shutdown(Shutdown::Both);
                            deregister(&core, peer_id, my_epoch);
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {}
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    deregister(&core, peer_id, my_epoch);
}

/// Remove this link's outbox unless a newer link already replaced it.
fn deregister(core: &Arc<Mutex<Core>>, peer_id: Option<u64>, my_epoch: u64) {
    if let Some(id) = peer_id {
        let mut c = core.lock().unwrap();
        if c.links.get(&id).is_some_and(|(e, _)| *e == my_epoch) {
            c.links.remove(&id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_store::{FsyncPolicy, RecordSource};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sav-cluster-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn free_addr() -> SocketAddr {
        TcpListener::bind("127.0.0.1:0")
            .unwrap()
            .local_addr()
            .unwrap()
    }

    fn fast(
        node_id: u64,
        listen: SocketAddr,
        peers: Vec<(u64, SocketAddr)>,
        dir: PathBuf,
    ) -> ClusterConfig {
        let mut c = ClusterConfig::new(node_id, listen, peers, dir);
        c.store.fsync = FsyncPolicy::Never;
        c.lease = Duration::from_millis(250);
        c.heartbeat_interval = Duration::from_millis(25);
        c.backoff.base = Duration::from_millis(20);
        c.backoff.cap = Duration::from_millis(100);
        c
    }

    fn rec(i: u8) -> BindingRecord {
        BindingRecord {
            ip: Ipv4Addr::new(10, 0, 0, i),
            mac: sav_net::addr::MacAddr::from_index(i as u64),
            dpid: 1,
            port: u32::from(i),
            source: RecordSource::Dhcp,
            expires: None,
        }
    }

    fn wait_until(what: &str, mut f: impl FnMut() -> bool) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if f() {
                return;
            }
            thread::sleep(Duration::from_millis(10));
        }
        panic!("timed out waiting for {what}");
    }

    /// Simulate the embedder's promotion step: take the replica, install
    /// the replication tap, return the store ready for the SAV app.
    fn promote(h: &ClusterHandle) -> BindingStore {
        let mut store = h.take_store().expect("store already taken");
        store.set_tap(h.wal_tap());
        store
    }

    #[test]
    fn lowest_id_leads_and_streams_records_to_the_standby() {
        let (a1, a2) = (free_addr(), free_addr());
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], tmp("stream-1"))).unwrap();
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], tmp("stream-2"))).unwrap();

        let ev = h1.events().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(ev, ClusterEvent::BecameLeader { generation: 1 });
        assert_eq!(h2.role(), Role::Follower);

        let mut store = promote(&h1);
        for i in 1..=3 {
            store.append(&WalOp::Upsert(rec(i))).unwrap();
        }
        wait_until("standby to replicate 3 records", || h2.seq() == 3);
        assert_eq!(h2.bindings().len(), 3);
        assert_eq!(h2.bindings(), h1.bindings());
        assert!(
            h2.events().try_recv().is_err(),
            "standby must not promote while the leader lives"
        );
        drop((h1, h2));
    }

    #[test]
    fn standby_promotes_with_the_full_replica_after_leader_death() {
        let (a1, a2) = (free_addr(), free_addr());
        let obs2 = Obs::new();
        let h1 = ClusterNode::spawn(fast(1, a1, vec![(2, a2)], tmp("fo-1"))).unwrap();
        let mut cfg2 = fast(2, a2, vec![(1, a1)], tmp("fo-2"));
        cfg2.obs = obs2.clone();
        let h2 = ClusterNode::spawn(cfg2).unwrap();

        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();
        let mut store = promote(&h1);
        store.append(&WalOp::Upsert(rec(1))).unwrap();
        store.append(&WalOp::Upsert(rec(2))).unwrap();
        wait_until("replication", || h2.seq() == 2);

        // Kill the leader: the standby must claim a strictly newer
        // generation within ~one lease.
        h1.shutdown();
        let ev = h2.events().recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(ev, ClusterEvent::BecameLeader { generation: 2 });

        // Its replica already holds both bindings — zero re-learning.
        let replica = promote(&h2);
        assert_eq!(replica.bindings().len(), 2);
        assert_eq!(
            replica.bindings().get(&Ipv4Addr::new(10, 0, 0, 1)),
            Some(&rec(1))
        );

        h2.report_failover_complete();
        assert_eq!(obs2.counters.get("sav_failover_total"), 1);
        let journal = obs2.journal.tail_jsonl(10);
        assert!(journal.contains("leader_elected"), "journal: {journal}");
        assert!(journal.contains("failover_completed"), "journal: {journal}");
        drop(h2);
    }

    #[test]
    fn late_follower_catches_up_via_image_transfer() {
        let (a1, a2) = (free_addr(), free_addr());
        let mut cfg1 = fast(1, a1, vec![(2, a2)], tmp("snap-1"));
        cfg1.retained_ops = 2; // force the window to forget early records
        let h1 = ClusterNode::spawn(cfg1).unwrap();
        h1.events().recv_timeout(Duration::from_secs(10)).unwrap();

        let mut store = promote(&h1);
        for i in 1..=5 {
            store.append(&WalOp::Upsert(rec(i))).unwrap();
        }
        assert_eq!(h1.seq(), 5);

        // A brand-new standby joins at have_seq 0, far behind the 2-record
        // window: it must get SnapshotBegin/Entry*/End then live records.
        let dir2 = tmp("snap-2");
        let h2 = ClusterNode::spawn(fast(2, a2, vec![(1, a1)], dir2.clone())).unwrap();
        wait_until("image transfer", || h2.seq() == 5);
        assert_eq!(h2.bindings(), h1.bindings());

        // And the transfer is durable: the rebuilt replica recovers from
        // disk like any standalone store.
        store
            .append(&WalOp::Remove(Ipv4Addr::new(10, 0, 0, 3)))
            .unwrap();
        wait_until("live tail after image", || h2.seq() == 6);
        drop(h2);
        let reopened = BindingStore::open(&dir2, StoreConfig::default()).unwrap();
        assert_eq!(reopened.bindings().len(), 4);
        assert!(!reopened
            .bindings()
            .contains_key(&Ipv4Addr::new(10, 0, 0, 3)));
        drop(h1);
    }
}
