//! # sav-core — Source Address Validation for Software Defined Networks
//!
//! The paper's contribution: an SDN controller application that enforces
//! SAV (RFC 2827 ingress filtering, SAVI-style binding enforcement) by
//! compiling a **binding table** — `IP ↔ (switch, port, MAC)` — into
//! OpenFlow rules at the network edge, and keeping those rules current as
//! the network changes (DHCP churn, host migration, link events).
//!
//! ## Mechanism
//!
//! Table 0 of every switch is the validation table (the forwarding app
//! bridges it at priority 1). The SAV app overlays:
//!
//! | priority | where | match | action |
//! |---|---|---|---|
//! | 40000 `PRIO_ALLOW` | edge | `(in_port, [eth_src,] ipv4_src)` per binding | `goto` forwarding |
//! | 37000 `PRIO_DHCP_TRUST` | DHCP server port | `udp 67→68` | copy to controller + `goto` |
//! | 36000 `PRIO_DHCP_CLIENT` | edge | `udp 68→67` | copy to controller + `goto` |
//! | 35000 `PRIO_ISAV_DENY` | border ports | `ipv4_src ∈ internal prefix` | drop |
//! | 30000 `PRIO_TRUNK` | trunk ports | `in_port` | `goto` forwarding |
//! | 20000 `PRIO_OSAV_DENY` | edge | `eth_type=IPv4` | drop (proactive) / punt (reactive & FCFS) |
//!
//! Everything else (ARP in particular) falls through the priority-1 bridge.
//! Binding sources: the **static plan**, **DHCP snooping** (the copy rules
//! above observe the real DORA exchange crossing the data plane, including
//! the server ACK — rogue-DHCP ACKs from untrusted ports never reach
//! clients because they fail source validation), and **FCFS** (first
//! packet claims the address, SAVI §FCFS style). Migration is handled by
//! gratuitous-ARP tracking: the binding moves, the old rule is deleted,
//! the new one installed.
//!
//! [`SavApp`] is the controller application; [`binding`] the table;
//! [`rules`] the pure binding→FlowMod compiler (unit-testable without a
//! controller); [`SavConfig`] selects modes (proactive/reactive,
//! aggregation, iSAV/oSAV, MAC matching).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod app;
pub mod binding;
pub mod compiler;
pub mod poller;
pub mod rules;

pub use app::{BorderConfig, SavApp, SavConfig, SavMode, SavStats};
pub use binding::{Binding, BindingChange, BindingSource, BindingTable};
pub use compiler::RuleCompiler;
pub use poller::{SavRecord, SpoofSource, StatsPollerApp};

/// Priority of per-binding allow rules.
pub const PRIO_ALLOW: u16 = 40_000;
/// Priority of the trusted DHCP-server snoop/permit rule.
pub const PRIO_DHCP_TRUST: u16 = 37_000;
/// Priority of the DHCP client permit (lets unbound hosts run DORA).
pub const PRIO_DHCP_CLIENT: u16 = 36_000;
/// Priority of inbound-SAV denies at border ports.
pub const PRIO_ISAV_DENY: u16 = 35_000;
/// Priority of trunk pass-through rules.
pub const PRIO_TRUNK: u16 = 30_000;
/// Priority of the edge default deny (outbound SAV).
pub const PRIO_OSAV_DENY: u16 = 20_000;
/// Cookie tag marking rules owned by the SAV app (upper 16 bits).
pub const SAV_COOKIE: u64 = 0x5a56_0000_0000_0000;
/// Mask isolating the ownership tag of [`SAV_COOKIE`] — the cookie filter
/// used when reconciling installed rules after a controller restart.
pub const SAV_COOKIE_MASK: u64 = 0xffff_0000_0000_0000;
