//! The binding table: the controller's authoritative view of which source
//! address is legitimate where.

use sav_net::addr::MacAddr;
use sav_sim::SimTime;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Where a binding came from — decides trust and lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BindingSource {
    /// Operator-configured (infrastructure, static plan). Never expires.
    Static,
    /// Learned from a snooped DHCPACK. Expires with the lease.
    Dhcp,
    /// First-come-first-served data-plane claim. Expires on idle.
    Fcfs,
}

/// One `IP ↔ (switch, port, MAC)` binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    /// The bound source address.
    pub ip: Ipv4Addr,
    /// The host's MAC.
    pub mac: MacAddr,
    /// Datapath id of the edge switch.
    pub dpid: u64,
    /// Host-facing port on that switch.
    pub port: u32,
    /// Provenance.
    pub source: BindingSource,
    /// Absolute expiry (DHCP lease end), if any.
    pub expires: Option<SimTime>,
}

/// What an upsert did — drives incremental rule updates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingChange {
    /// New binding; install its allow rule.
    Added,
    /// Same location, refreshed lease/source; rules unchanged (timeouts may
    /// need a re-install, the app decides).
    Refreshed,
    /// The host moved; the old rule must be deleted. Carries the previous
    /// binding.
    Moved(Binding),
    /// Rejected: the IP is bound to a *different MAC* that has not expired
    /// — an address-theft attempt (or a collision). Carries the holder.
    Conflict(Binding),
}

/// The table, indexed by IP (the validated field).
///
/// Keyed by a `BTreeMap` so every traversal — [`iter`](BindingTable::iter),
/// [`expire`](BindingTable::expire), rule compilation — is deterministic,
/// ascending by IP. With a hash map, two bindings sharing an expiry tick
/// swept in arbitrary order let a caller interleave `next_expiry()` between
/// the removals and observe an instant whose entry was already gone.
#[derive(Debug, Default)]
pub struct BindingTable {
    by_ip: BTreeMap<Ipv4Addr, Binding>,
}

impl BindingTable {
    /// Empty table.
    pub fn new() -> BindingTable {
        BindingTable::default()
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.by_ip.len()
    }

    /// True if no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.by_ip.is_empty()
    }

    /// Look up the binding for an IP.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&Binding> {
        self.by_ip.get(&ip)
    }

    /// Iterate all bindings, ascending by IP.
    pub fn iter(&self) -> impl Iterator<Item = &Binding> {
        self.by_ip.values()
    }

    /// Bindings anchored at a given switch, ascending by IP.
    pub fn on_switch(&self, dpid: u64) -> impl Iterator<Item = &Binding> {
        self.by_ip.values().filter(move |b| b.dpid == dpid)
    }

    /// Insert or update the binding for `b.ip` at `now`.
    ///
    /// Rules of precedence, mirroring SAVI:
    /// * an expired holder is evicted regardless of source;
    /// * the same MAC may move or refresh its binding;
    /// * a *different* MAC may take over only if the new source outranks
    ///   the holder (Static > Dhcp > Fcfs) — e.g. a DHCP ACK overrides an
    ///   FCFS squatter; otherwise the upsert is a [`BindingChange::Conflict`].
    pub fn upsert(&mut self, b: Binding, now: SimTime) -> BindingChange {
        match self.by_ip.get(&b.ip).copied() {
            None => {
                self.by_ip.insert(b.ip, b);
                BindingChange::Added
            }
            Some(old) => {
                let old_expired = old.expires.map(|t| now >= t).unwrap_or(false);
                if old.mac == b.mac {
                    let moved = old.dpid != b.dpid || old.port != b.port;
                    self.by_ip.insert(b.ip, b);
                    if moved {
                        BindingChange::Moved(old)
                    } else {
                        BindingChange::Refreshed
                    }
                } else if old_expired || rank(b.source) > rank(old.source) {
                    self.by_ip.insert(b.ip, b);
                    BindingChange::Moved(old)
                } else {
                    BindingChange::Conflict(old)
                }
            }
        }
    }

    /// Remove the binding for `ip` (DHCP release, operator action).
    pub fn remove(&mut self, ip: Ipv4Addr) -> Option<Binding> {
        self.by_ip.remove(&ip)
    }

    /// Remove and return all bindings expired at `now`, ascending by IP.
    ///
    /// The sweep is atomic with respect to [`next_expiry`]: every binding
    /// due at `now` is collected before any removal, so once this returns,
    /// `next_expiry()` can only name an instant strictly in the future —
    /// even when several bindings share the same expiry tick.
    ///
    /// [`next_expiry`]: BindingTable::next_expiry
    pub fn expire(&mut self, now: SimTime) -> Vec<Binding> {
        let dead: Vec<Ipv4Addr> = self
            .by_ip
            .values()
            .filter(|b| b.expires.map(|t| now >= t).unwrap_or(false))
            .map(|b| b.ip)
            .collect();
        dead.into_iter()
            .filter_map(|ip| self.by_ip.remove(&ip))
            .collect()
    }

    /// The soonest expiry instant, if any binding carries one.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.by_ip.values().filter_map(|b| b.expires).min()
    }
}

fn rank(s: BindingSource) -> u8 {
    match s {
        BindingSource::Fcfs => 0,
        BindingSource::Dhcp => 1,
        BindingSource::Static => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(ip: &str, mac: u64, dpid: u64, port: u32, source: BindingSource) -> Binding {
        Binding {
            ip: ip.parse().unwrap(),
            mac: MacAddr::from_index(mac),
            dpid,
            port,
            source,
            expires: None,
        }
    }

    #[test]
    fn add_get_remove() {
        let mut t = BindingTable::new();
        assert!(t.is_empty());
        let x = b("10.0.0.1", 1, 1, 2, BindingSource::Static);
        assert_eq!(t.upsert(x, SimTime::ZERO), BindingChange::Added);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get("10.0.0.1".parse().unwrap()), Some(&x));
        assert_eq!(t.remove("10.0.0.1".parse().unwrap()), Some(x));
        assert!(t.get("10.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn same_mac_moves() {
        let mut t = BindingTable::new();
        let old = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        t.upsert(old, SimTime::ZERO);
        let new = b("10.0.0.1", 1, 3, 4, BindingSource::Dhcp);
        assert_eq!(t.upsert(new, SimTime::ZERO), BindingChange::Moved(old));
        assert_eq!(t.get(new.ip).unwrap().dpid, 3);
    }

    #[test]
    fn same_everything_refreshes() {
        let mut t = BindingTable::new();
        let x = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        t.upsert(x, SimTime::ZERO);
        let mut y = x;
        y.expires = Some(SimTime::from_secs(100));
        assert_eq!(t.upsert(y, SimTime::ZERO), BindingChange::Refreshed);
        assert_eq!(t.get(x.ip).unwrap().expires, Some(SimTime::from_secs(100)));
    }

    #[test]
    fn different_mac_conflicts_at_same_rank() {
        let mut t = BindingTable::new();
        let holder = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        t.upsert(holder, SimTime::ZERO);
        let thief = b("10.0.0.1", 66, 5, 6, BindingSource::Dhcp);
        assert_eq!(
            t.upsert(thief, SimTime::ZERO),
            BindingChange::Conflict(holder)
        );
        assert_eq!(t.get(holder.ip).unwrap().mac, holder.mac);
    }

    #[test]
    fn higher_rank_overrides() {
        let mut t = BindingTable::new();
        let squatter = b("10.0.0.1", 66, 5, 6, BindingSource::Fcfs);
        t.upsert(squatter, SimTime::ZERO);
        let legit = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        assert_eq!(
            t.upsert(legit, SimTime::ZERO),
            BindingChange::Moved(squatter)
        );
        // And the reverse is refused.
        let squatter2 = b("10.0.0.1", 67, 5, 6, BindingSource::Fcfs);
        assert_eq!(
            t.upsert(squatter2, SimTime::ZERO),
            BindingChange::Conflict(legit)
        );
    }

    #[test]
    fn expired_holder_is_evicted() {
        let mut t = BindingTable::new();
        let mut holder = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        holder.expires = Some(SimTime::from_secs(10));
        t.upsert(holder, SimTime::ZERO);
        let newcomer = b("10.0.0.1", 66, 5, 6, BindingSource::Fcfs);
        // Before expiry: conflict.
        assert!(matches!(
            t.upsert(newcomer, SimTime::from_secs(9)),
            BindingChange::Conflict(_)
        ));
        // After expiry: takeover.
        assert!(matches!(
            t.upsert(newcomer, SimTime::from_secs(10)),
            BindingChange::Moved(_)
        ));
    }

    #[test]
    fn expire_sweep_and_next_expiry() {
        let mut t = BindingTable::new();
        let mut x = b("10.0.0.1", 1, 1, 2, BindingSource::Dhcp);
        x.expires = Some(SimTime::from_secs(10));
        let mut y = b("10.0.0.2", 2, 1, 3, BindingSource::Dhcp);
        y.expires = Some(SimTime::from_secs(20));
        let z = b("10.0.0.3", 3, 1, 4, BindingSource::Static);
        t.upsert(x, SimTime::ZERO);
        t.upsert(y, SimTime::ZERO);
        t.upsert(z, SimTime::ZERO);
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(10)));
        let dead = t.expire(SimTime::from_secs(15));
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].ip, x.ip);
        assert_eq!(t.len(), 2);
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(20)));
        // Static never expires.
        let dead = t.expire(SimTime::from_secs(1_000_000));
        assert_eq!(dead.len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.next_expiry(), None);
    }

    #[test]
    fn shared_expiry_tick_sweeps_both_and_clears_next_expiry() {
        // Regression: two bindings expiring on the same tick. With the old
        // hash-map table the sweep order was arbitrary, so `next_expiry()`
        // sampled mid-sweep could name the tick of an already-removed entry.
        let mut t = BindingTable::new();
        let mut x = b("10.0.0.9", 1, 1, 2, BindingSource::Dhcp);
        x.expires = Some(SimTime::from_secs(10));
        let mut y = b("10.0.0.1", 2, 1, 3, BindingSource::Dhcp);
        y.expires = Some(SimTime::from_secs(10));
        let mut z = b("10.0.0.5", 3, 1, 4, BindingSource::Dhcp);
        z.expires = Some(SimTime::from_secs(30));
        t.upsert(x, SimTime::ZERO);
        t.upsert(y, SimTime::ZERO);
        t.upsert(z, SimTime::ZERO);

        let dead = t.expire(SimTime::from_secs(10));
        // Both same-tick bindings go in one sweep, in deterministic
        // ascending-IP order.
        assert_eq!(
            dead.iter().map(|d| d.ip).collect::<Vec<_>>(),
            vec![y.ip, x.ip]
        );
        // After the sweep, next_expiry can only be strictly in the future —
        // never the just-swept tick.
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(30)));
        assert!(t.next_expiry().unwrap() > SimTime::from_secs(10));
    }

    #[test]
    fn iteration_is_sorted_by_ip() {
        let mut t = BindingTable::new();
        for (i, ip) in ["10.0.0.7", "10.0.0.2", "10.0.0.250", "10.0.0.1"]
            .iter()
            .enumerate()
        {
            t.upsert(b(ip, i as u64, 1, 1, BindingSource::Static), SimTime::ZERO);
        }
        let order: Vec<Ipv4Addr> = t.iter().map(|x| x.ip).collect();
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(order, sorted);
        assert_eq!(order[0], "10.0.0.1".parse::<Ipv4Addr>().unwrap());
        assert_eq!(order[3], "10.0.0.250".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn on_switch_filters() {
        let mut t = BindingTable::new();
        t.upsert(b("10.0.0.1", 1, 1, 1, BindingSource::Static), SimTime::ZERO);
        t.upsert(b("10.0.0.2", 2, 1, 2, BindingSource::Static), SimTime::ZERO);
        t.upsert(b("10.0.0.3", 3, 2, 1, BindingSource::Static), SimTime::ZERO);
        assert_eq!(t.on_switch(1).count(), 2);
        assert_eq!(t.on_switch(2).count(), 1);
        assert_eq!(t.on_switch(9).count(), 0);
    }
}
