//! Exact prefix compression: the optimization pass for the aggregated
//! mode's precision/state tradeoff.
//!
//! The default aggregated mode installs one *subnet* rule per port — small
//! but over-permissive (unassigned addresses in the subnet pass). This
//! module computes the **minimal exact CIDR cover** of a set of addresses:
//! the smallest list of prefixes whose union is exactly that set. Rules
//! compiled from the exact cover admit precisely the bound addresses while
//! still merging dense ranges (a port fronting `10.0.1.64/26` worth of
//! hosts costs 1 rule instead of 64).
//!
//! Algorithm: sort, fold complete sibling pairs bottom-up — the classic
//! CIDR aggregation, O(n log n).

use sav_net::addr::Ipv4Cidr;
use std::net::Ipv4Addr;

/// Compute the minimal exact CIDR cover of `addrs` (duplicates welcome).
///
/// Properties (see the property tests):
/// * the union of the result equals the input set exactly;
/// * no two output prefixes are siblings (no further merge possible);
/// * output prefixes are disjoint and sorted.
pub fn exact_cover(addrs: &[Ipv4Addr]) -> Vec<Ipv4Cidr> {
    let mut prefixes: Vec<Ipv4Cidr> = addrs.iter().map(|&a| Ipv4Cidr::host(a)).collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    // Repeatedly merge adjacent complete sibling pairs. One left-to-right
    // pass per level is enough because merging produces a parent that can
    // only merge with a *later* sibling after re-examination; loop until a
    // fixed point (at most 32 passes).
    loop {
        let mut merged = Vec::with_capacity(prefixes.len());
        let mut changed = false;
        let mut i = 0;
        while i < prefixes.len() {
            if i + 1 < prefixes.len() && prefixes[i].is_sibling(&prefixes[i + 1]) {
                merged.push(prefixes[i].parent().expect("sibling implies parent"));
                changed = true;
                i += 2;
            } else {
                merged.push(prefixes[i]);
                i += 1;
            }
        }
        prefixes = merged;
        if !changed {
            return prefixes;
        }
    }
}

/// Budgeted (adaptive) aggregation: `None` while `addrs` fit within
/// `budget` as plain host rules — precision costs nothing, keep it — and
/// the exact cover once the count exceeds the budget. `budget: None`
/// disables aggregation entirely.
///
/// The threshold is a pure function of the *current* set (no hysteresis):
/// the incremental compiler and a from-scratch compile always agree on
/// whether a port is aggregated, which the differential suite relies on.
/// Note the cover is exact, so a sparse set may still exceed the budget —
/// the budget triggers compression, it never trades precision for space.
pub fn budgeted_cover(addrs: &[Ipv4Addr], budget: Option<usize>) -> Option<Vec<Ipv4Cidr>> {
    let budget = budget?;
    if addrs.len() > budget {
        Some(exact_cover(addrs))
    } else {
        None
    }
}

/// Number of addresses covered by a prefix list (assumes disjoint).
pub fn covered(prefixes: &[Ipv4Cidr]) -> u64 {
    prefixes.iter().map(|p| p.size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(specs: &[&str]) -> Vec<Ipv4Addr> {
        specs.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(exact_cover(&[]).is_empty());
        let c = exact_cover(&ips(&["10.0.0.5"]));
        assert_eq!(c, vec!["10.0.0.5/32".parse().unwrap()]);
    }

    #[test]
    fn complete_block_merges_fully() {
        let addrs: Vec<Ipv4Addr> = (0..64u32)
            .map(|i| Ipv4Addr::from(0x0a000140 + i)) // 10.0.1.64/26
            .collect();
        let c = exact_cover(&addrs);
        assert_eq!(c, vec!["10.0.1.64/26".parse().unwrap()]);
    }

    #[test]
    fn sparse_addresses_stay_host_routes() {
        let c = exact_cover(&ips(&["10.0.0.1", "10.0.0.3", "10.0.0.5"]));
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|p| p.prefix_len() == 32));
    }

    #[test]
    fn partial_merge() {
        // .0 and .1 merge to /31; .3 stays alone.
        let c = exact_cover(&ips(&["10.0.0.0", "10.0.0.1", "10.0.0.3"]));
        assert_eq!(
            c,
            vec![
                "10.0.0.0/31".parse().unwrap(),
                "10.0.0.3/32".parse().unwrap()
            ]
        );
    }

    #[test]
    fn duplicates_are_harmless() {
        let c = exact_cover(&ips(&["10.0.0.1", "10.0.0.1", "10.0.0.0"]));
        assert_eq!(c, vec!["10.0.0.0/31".parse().unwrap()]);
        assert_eq!(covered(&c), 2);
    }

    #[test]
    fn multi_level_merge() {
        // Two /31 blocks that together form a /30.
        let c = exact_cover(&ips(&["10.0.0.4", "10.0.0.5", "10.0.0.6", "10.0.0.7"]));
        assert_eq!(c, vec!["10.0.0.4/30".parse().unwrap()]);
    }

    #[test]
    fn adjacent_pair_merges_to_slash31() {
        // Aligned neighbours merge; an unaligned pair (odd/even boundary)
        // does not — .1/.2 are adjacent but not siblings.
        let c = exact_cover(&ips(&["10.0.0.8", "10.0.0.9"]));
        assert_eq!(c, vec!["10.0.0.8/31".parse().unwrap()]);
        let c = exact_cover(&ips(&["10.0.0.1", "10.0.0.2"]));
        assert_eq!(c.len(), 2);
        assert!(c.iter().all(|p| p.prefix_len() == 32));
    }

    #[test]
    fn full_slash24_collapses_to_one_prefix() {
        let addrs: Vec<Ipv4Addr> = (0..256u32)
            .map(|i| Ipv4Addr::from(0x0a000200 + i))
            .collect();
        let c = exact_cover(&addrs);
        assert_eq!(c, vec!["10.0.2.0/24".parse().unwrap()]);
        assert_eq!(covered(&c), 256);
        // Knock one address out and the cover fragments exactly.
        let holed: Vec<Ipv4Addr> = addrs
            .iter()
            .copied()
            .filter(|a| *a != "10.0.2.77".parse::<Ipv4Addr>().unwrap())
            .collect();
        let c = exact_cover(&holed);
        assert_eq!(covered(&c), 255);
        assert!(!c.iter().any(|p| p.contains("10.0.2.77".parse().unwrap())));
    }

    #[test]
    fn budget_threshold_is_strictly_greater() {
        let addrs: Vec<Ipv4Addr> = (0..8u32).map(|i| Ipv4Addr::from(0x0a000000 + i)).collect();
        // One below and exactly at the budget: host rules stay.
        assert_eq!(budgeted_cover(&addrs, Some(9)), None);
        assert_eq!(budgeted_cover(&addrs, Some(8)), None);
        // One past the budget: compress to the exact cover.
        let c = budgeted_cover(&addrs, Some(7)).expect("over budget must compress");
        assert_eq!(c, vec!["10.0.0.0/29".parse().unwrap()]);
        // No budget at all: never compress.
        assert_eq!(budgeted_cover(&addrs, None), None);
    }

    #[test]
    fn budgeted_cover_of_sparse_set_may_exceed_budget() {
        // The cover is exact, never lossy: 4 isolated hosts over budget 3
        // still cost 4 prefixes. The budget triggers compression, it does
        // not cap the result.
        let addrs = ips(&["10.0.0.1", "10.0.0.3", "10.0.0.5", "10.0.0.7"]);
        let c = budgeted_cover(&addrs, Some(3)).expect("over budget");
        assert_eq!(c.len(), 4);
        assert!(c.iter().all(|p| p.prefix_len() == 32));
    }
}
