//! Exact prefix compression: the optimization pass for the aggregated
//! mode's precision/state tradeoff.
//!
//! The default aggregated mode installs one *subnet* rule per port — small
//! but over-permissive (unassigned addresses in the subnet pass). This
//! module computes the **minimal exact CIDR cover** of a set of addresses:
//! the smallest list of prefixes whose union is exactly that set. Rules
//! compiled from the exact cover admit precisely the bound addresses while
//! still merging dense ranges (a port fronting `10.0.1.64/26` worth of
//! hosts costs 1 rule instead of 64).
//!
//! Algorithm: sort, fold complete sibling pairs bottom-up — the classic
//! CIDR aggregation, O(n log n).

use sav_net::addr::Ipv4Cidr;
use std::net::Ipv4Addr;

/// Compute the minimal exact CIDR cover of `addrs` (duplicates welcome).
///
/// Properties (see the property tests):
/// * the union of the result equals the input set exactly;
/// * no two output prefixes are siblings (no further merge possible);
/// * output prefixes are disjoint and sorted.
pub fn exact_cover(addrs: &[Ipv4Addr]) -> Vec<Ipv4Cidr> {
    let mut prefixes: Vec<Ipv4Cidr> = addrs.iter().map(|&a| Ipv4Cidr::host(a)).collect();
    prefixes.sort_unstable();
    prefixes.dedup();
    // Repeatedly merge adjacent complete sibling pairs. One left-to-right
    // pass per level is enough because merging produces a parent that can
    // only merge with a *later* sibling after re-examination; loop until a
    // fixed point (at most 32 passes).
    loop {
        let mut merged = Vec::with_capacity(prefixes.len());
        let mut changed = false;
        let mut i = 0;
        while i < prefixes.len() {
            if i + 1 < prefixes.len() && prefixes[i].is_sibling(&prefixes[i + 1]) {
                merged.push(prefixes[i].parent().expect("sibling implies parent"));
                changed = true;
                i += 2;
            } else {
                merged.push(prefixes[i]);
                i += 1;
            }
        }
        prefixes = merged;
        if !changed {
            return prefixes;
        }
    }
}

/// Number of addresses covered by a prefix list (assumes disjoint).
pub fn covered(prefixes: &[Ipv4Cidr]) -> u64 {
    prefixes.iter().map(|p| p.size()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(specs: &[&str]) -> Vec<Ipv4Addr> {
        specs.iter().map(|s| s.parse().unwrap()).collect()
    }

    #[test]
    fn empty_and_single() {
        assert!(exact_cover(&[]).is_empty());
        let c = exact_cover(&ips(&["10.0.0.5"]));
        assert_eq!(c, vec!["10.0.0.5/32".parse().unwrap()]);
    }

    #[test]
    fn complete_block_merges_fully() {
        let addrs: Vec<Ipv4Addr> = (0..64u32)
            .map(|i| Ipv4Addr::from(0x0a000140 + i)) // 10.0.1.64/26
            .collect();
        let c = exact_cover(&addrs);
        assert_eq!(c, vec!["10.0.1.64/26".parse().unwrap()]);
    }

    #[test]
    fn sparse_addresses_stay_host_routes() {
        let c = exact_cover(&ips(&["10.0.0.1", "10.0.0.3", "10.0.0.5"]));
        assert_eq!(c.len(), 3);
        assert!(c.iter().all(|p| p.prefix_len() == 32));
    }

    #[test]
    fn partial_merge() {
        // .0 and .1 merge to /31; .3 stays alone.
        let c = exact_cover(&ips(&["10.0.0.0", "10.0.0.1", "10.0.0.3"]));
        assert_eq!(
            c,
            vec![
                "10.0.0.0/31".parse().unwrap(),
                "10.0.0.3/32".parse().unwrap()
            ]
        );
    }

    #[test]
    fn duplicates_are_harmless() {
        let c = exact_cover(&ips(&["10.0.0.1", "10.0.0.1", "10.0.0.0"]));
        assert_eq!(c, vec!["10.0.0.0/31".parse().unwrap()]);
        assert_eq!(covered(&c), 2);
    }

    #[test]
    fn multi_level_merge() {
        // Two /31 blocks that together form a /30.
        let c = exact_cover(&ips(&["10.0.0.4", "10.0.0.5", "10.0.0.6", "10.0.0.7"]));
        assert_eq!(c, vec!["10.0.0.4/30".parse().unwrap()]);
    }
}
