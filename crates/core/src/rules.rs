//! The pure binding → OpenFlow rule compiler.
//!
//! Kept free of controller state so the mapping the paper describes —
//! "the controller translates each binding into a flow entry at the edge" —
//! is a unit-testable function. The [`crate::SavApp`] calls these and ships
//! the results.

use crate::binding::Binding;
use crate::{
    PRIO_ALLOW, PRIO_DHCP_CLIENT, PRIO_DHCP_TRUST, PRIO_ISAV_DENY, PRIO_OSAV_DENY, PRIO_TRUNK,
    SAV_COOKIE,
};
use sav_controller::TABLE_FWD;
use sav_net::addr::Ipv4Cidr;
use sav_net::dhcpv4::{DHCP_CLIENT_PORT, DHCP_SERVER_PORT};
use sav_openflow::consts::{flow_mod_flags, port as ofport};
use sav_openflow::messages::{FlowMod, FlowModCommand};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::{Action, Instruction};

/// Cookie for a binding's allow rule (tagged with the low IP bits so flow
/// stats are attributable).
pub fn allow_cookie(b: &Binding) -> u64 {
    SAV_COOKIE | u64::from(u32::from(b.ip))
}

fn allow_match(b: &Binding, match_mac: bool) -> OxmMatch {
    let mut m = OxmMatch::new()
        .with(OxmField::InPort(b.port))
        .with(OxmField::EthType(0x0800));
    if match_mac {
        m.push(OxmField::EthSrc(b.mac, None));
    }
    m.with(OxmField::Ipv4Src(b.ip, None))
}

/// The allow rule for one binding: `(in_port, [eth_src,] ipv4_src)` →
/// continue to forwarding. `idle_timeout`/`hard_timeout` control lifecycle
/// (FCFS idle expiry; DHCP lease hard expiry); `SEND_FLOW_REM` is always
/// set so the app hears about expiry.
pub fn binding_allow(
    b: &Binding,
    match_mac: bool,
    idle_timeout: u16,
    hard_timeout: u16,
) -> FlowMod {
    FlowMod {
        priority: PRIO_ALLOW,
        cookie: allow_cookie(b),
        idle_timeout,
        hard_timeout,
        flags: flow_mod_flags::SEND_FLOW_REM,
        instructions: vec![Instruction::GotoTable(TABLE_FWD)],
        ..FlowMod::add(allow_match(b, match_mac))
    }
}

/// Strict delete for a binding's allow rule.
pub fn binding_delete(b: &Binding, match_mac: bool) -> FlowMod {
    FlowMod {
        priority: PRIO_ALLOW,
        command: FlowModCommand::DeleteStrict,
        ..FlowMod::add(allow_match(b, match_mac))
    }
}

/// Aggregated allow: every source within `prefix` entering `port` passes.
/// The coarse mode for ports that front an unmanaged downstream segment —
/// fewer rules, but same-prefix spoofing on that port goes undetected.
pub fn prefix_allow(port: u32, prefix: Ipv4Cidr) -> FlowMod {
    FlowMod {
        priority: PRIO_ALLOW,
        cookie: SAV_COOKIE | 0x0000_ffff_0000_0000,
        instructions: vec![Instruction::GotoTable(TABLE_FWD)],
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::InPort(port))
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src(prefix.network(), Some(prefix.netmask()))),
        )
    }
}

/// Cookie for a budgeted exact-cover rule: the `0xffff` kind (so
/// binding-expiry logic and the stats poller's per-binding records ignore
/// it, exactly like the legacy [`prefix_allow`] cookie) plus the cover's
/// network address in the low 32 bits for attribution. Disjoint covers
/// have distinct networks, so every cover on a port gets a unique cookie.
pub fn cover_cookie(prefix: Ipv4Cidr) -> u64 {
    SAV_COOKIE | 0x0000_ffff_0000_0000 | u64::from(u32::from(prefix.network()))
}

/// Budgeted exact-cover allow: like [`prefix_allow`] but with an
/// attributable per-prefix cookie. No timeouts and no `SEND_FLOW_REM` —
/// covered bindings expire under controller control (`SavApp::sweep_expired`),
/// not switch timers, since one rule stands for many leases.
pub fn cover_allow(port: u32, prefix: Ipv4Cidr) -> FlowMod {
    FlowMod {
        cookie: cover_cookie(prefix),
        ..prefix_allow(port, prefix)
    }
}

/// Strict delete for a cover rule.
pub fn cover_delete(port: u32, prefix: Ipv4Cidr) -> FlowMod {
    FlowMod {
        priority: PRIO_ALLOW,
        cookie: cover_cookie(prefix),
        command: FlowModCommand::DeleteStrict,
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::InPort(port))
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src(prefix.network(), Some(prefix.netmask()))),
        )
    }
}

/// Trunk pass-through: traffic arriving from another switch was validated
/// at its own edge.
pub fn trunk_allow(port: u32) -> FlowMod {
    FlowMod {
        priority: PRIO_TRUNK,
        cookie: SAV_COOKIE,
        instructions: vec![Instruction::GotoTable(TABLE_FWD)],
        ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(port)))
    }
}

/// The edge default deny for IPv4 (outbound SAV). In proactive mode the
/// action list is empty → drop; with `punt` the packet goes to the
/// controller instead (reactive validation and FCFS claiming).
pub fn edge_default_deny(punt: bool) -> FlowMod {
    let instructions = if punt {
        vec![Instruction::ApplyActions(vec![Action::output(
            ofport::CONTROLLER,
        )])]
    } else {
        vec![] // no instructions = drop at end of pipeline
    };
    FlowMod {
        priority: PRIO_OSAV_DENY,
        cookie: SAV_COOKIE | 0xdead,
        instructions,
        ..FlowMod::add(OxmMatch::new().with(OxmField::EthType(0x0800)))
    }
}

/// Inbound-SAV deny at a border port: packets arriving *from outside* that
/// claim a source inside `internal` are impossible and dropped.
pub fn isav_deny(border_port: u32, internal: Ipv4Cidr) -> FlowMod {
    FlowMod {
        priority: PRIO_ISAV_DENY,
        cookie: SAV_COOKIE | 0x15a5,
        instructions: vec![],
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::InPort(border_port))
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src(
                    internal.network(),
                    Some(internal.netmask()),
                )),
        )
    }
}

/// DHCP client permit + snoop: `udp 68→67` is punted to the controller,
/// which snoops it and forwards it (hop-by-hop flooding). Punt-only — a
/// `goto` here would let the forwarding table's broadcast punt generate a
/// second copy per switch and duplicate the flood exponentially.
pub fn dhcp_client_permit() -> FlowMod {
    FlowMod {
        priority: PRIO_DHCP_CLIENT,
        cookie: SAV_COOKIE | 0xdc,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(
            ofport::CONTROLLER,
        )])],
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::EthType(0x0800))
                .with(OxmField::IpProto(17))
                .with(OxmField::UdpSrc(DHCP_CLIENT_PORT))
                .with(OxmField::UdpDst(DHCP_SERVER_PORT)),
        )
    }
}

/// Trusted-server snoop: `udp 67→68` arriving on the *configured server
/// port* is copied to the controller (lease learning) and allowed. Server
/// messages from any other port get no such rule — they fall through to
/// source validation and die, which is the rogue-DHCP defence. Punt-only:
/// the controller unicasts the reply toward the client.
pub fn dhcp_server_trust(server_port: u32) -> FlowMod {
    FlowMod {
        priority: PRIO_DHCP_TRUST,
        cookie: SAV_COOKIE | 0xd5,
        instructions: vec![Instruction::ApplyActions(vec![Action::output(
            ofport::CONTROLLER,
        )])],
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::InPort(server_port))
                .with(OxmField::EthType(0x0800))
                .with(OxmField::IpProto(17))
                .with(OxmField::UdpSrc(DHCP_SERVER_PORT))
                .with(OxmField::UdpDst(DHCP_CLIENT_PORT)),
        )
    }
}

/// IPv6 variant of the binding allow: `(in_port, [eth_src,] ipv6_src)` →
/// forwarding. The binding table and dynamics engine are IPv4-first (as is
/// the paper); these compiler entry points plus the dataplane's full IPv6
/// OXM support make the v6 rule set available to deployments that manage
/// v6 bindings statically (SLAAC/DHCPv6 snooping is future work, noted in
/// DESIGN.md).
pub fn binding_allow_v6(
    port: u32,
    mac: Option<sav_net::addr::MacAddr>,
    ip: std::net::Ipv6Addr,
) -> FlowMod {
    let mut m = OxmMatch::new()
        .with(OxmField::InPort(port))
        .with(OxmField::EthType(0x86dd));
    if let Some(mac) = mac {
        m.push(OxmField::EthSrc(mac, None));
    }
    m.push(OxmField::Ipv6Src(ip, None));
    FlowMod {
        priority: PRIO_ALLOW,
        cookie: SAV_COOKIE | 0x6666,
        flags: flow_mod_flags::SEND_FLOW_REM,
        instructions: vec![Instruction::GotoTable(TABLE_FWD)],
        ..FlowMod::add(m)
    }
}

/// IPv6 edge default deny (outbound SAV for v6 traffic).
pub fn edge_default_deny_v6() -> FlowMod {
    FlowMod {
        priority: PRIO_OSAV_DENY,
        cookie: SAV_COOKIE | 0x6dead,
        instructions: vec![],
        ..FlowMod::add(OxmMatch::new().with(OxmField::EthType(0x86dd)))
    }
}

/// IPv6 inbound-SAV deny at a border port for an internal prefix.
pub fn isav_deny_v6(border_port: u32, internal: sav_net::addr::Ipv6Cidr) -> FlowMod {
    let mask = if internal.prefix_len() == 0 {
        std::net::Ipv6Addr::UNSPECIFIED
    } else {
        std::net::Ipv6Addr::from(u128::MAX << (128 - u32::from(internal.prefix_len())))
    };
    FlowMod {
        priority: PRIO_ISAV_DENY,
        cookie: SAV_COOKIE | 0x615a5,
        instructions: vec![],
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::InPort(border_port))
                .with(OxmField::EthType(0x86dd))
                .with(OxmField::Ipv6Src(internal.network(), Some(mask))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::BindingSource;
    use sav_net::addr::MacAddr;

    fn b() -> Binding {
        Binding {
            ip: "10.0.1.5".parse().unwrap(),
            mac: MacAddr::from_index(5),
            dpid: 3,
            port: 7,
            source: BindingSource::Dhcp,
            expires: None,
        }
    }

    #[test]
    fn allow_rule_shape() {
        let fm = binding_allow(&b(), true, 0, 300);
        assert_eq!(fm.priority, PRIO_ALLOW);
        assert_eq!(fm.table_id, 0);
        assert_eq!(fm.hard_timeout, 300);
        assert_eq!(fm.flags & flow_mod_flags::SEND_FLOW_REM, 1);
        assert!(fm.match_.validate_prerequisites().is_ok());
        assert_eq!(fm.match_.in_port(), Some(7));
        assert_eq!(fm.instructions, vec![Instruction::GotoTable(TABLE_FWD)]);
        assert_eq!(
            fm.match_.fields().len(),
            4,
            "in_port, eth_type, eth_src, ipv4_src"
        );
        // Without MAC matching the eth_src field disappears.
        let fm = binding_allow(&b(), false, 0, 0);
        assert_eq!(fm.match_.fields().len(), 3);
    }

    #[test]
    fn delete_matches_allow_exactly() {
        let add = binding_allow(&b(), true, 0, 0);
        let del = binding_delete(&b(), true);
        assert_eq!(del.command, FlowModCommand::DeleteStrict);
        assert_eq!(del.priority, add.priority);
        assert_eq!(del.match_, add.match_);
    }

    #[test]
    fn cookies_are_tagged_and_attributable() {
        let fm = binding_allow(&b(), true, 0, 0);
        assert_eq!(fm.cookie & 0xffff_0000_0000_0000, SAV_COOKIE);
        assert_eq!(
            (fm.cookie & 0xffff_ffff) as u32,
            u32::from("10.0.1.5".parse::<std::net::Ipv4Addr>().unwrap())
        );
    }

    #[test]
    fn prefix_allow_masks() {
        let fm = prefix_allow(4, "10.0.1.0/24".parse().unwrap());
        assert!(fm.match_.validate_prerequisites().is_ok());
        let has_masked = fm.match_.fields().iter().any(|f| {
            matches!(f, OxmField::Ipv4Src(ip, Some(mask))
                if *ip == "10.0.1.0".parse::<std::net::Ipv4Addr>().unwrap()
                && *mask == "255.255.255.0".parse::<std::net::Ipv4Addr>().unwrap())
        });
        assert!(has_masked);
    }

    #[test]
    fn default_deny_drop_vs_punt() {
        let drop = edge_default_deny(false);
        assert!(drop.instructions.is_empty());
        let punt = edge_default_deny(true);
        assert!(matches!(
            &punt.instructions[0],
            Instruction::ApplyActions(a) if a[0] == Action::output(ofport::CONTROLLER)
        ));
        assert_eq!(drop.priority, PRIO_OSAV_DENY);
    }

    #[test]
    fn isav_deny_shape() {
        let fm = isav_deny(2, "10.0.0.0/16".parse().unwrap());
        assert_eq!(fm.priority, PRIO_ISAV_DENY);
        assert!(fm.instructions.is_empty());
        assert_eq!(fm.match_.in_port(), Some(2));
        assert!(fm.match_.validate_prerequisites().is_ok());
    }

    #[test]
    fn dhcp_rules_punt_without_goto() {
        for fm in [dhcp_client_permit(), dhcp_server_trust(9)] {
            assert!(fm.match_.validate_prerequisites().is_ok());
            assert_eq!(fm.instructions.len(), 1, "punt-only, no goto");
            assert!(matches!(
                &fm.instructions[0],
                Instruction::ApplyActions(a) if a[0] == Action::output(ofport::CONTROLLER)
            ));
        }
        assert_eq!(dhcp_server_trust(9).match_.in_port(), Some(9));
        assert_eq!(dhcp_client_permit().match_.in_port(), None);
    }

    #[test]
    fn v6_rules_shape() {
        let fm = binding_allow_v6(
            3,
            Some(MacAddr::from_index(1)),
            "2001:db8::5".parse().unwrap(),
        );
        assert!(fm.match_.validate_prerequisites().is_ok());
        assert_eq!(fm.priority, PRIO_ALLOW);
        assert_eq!(fm.match_.fields().len(), 4);
        let fm = binding_allow_v6(3, None, "2001:db8::5".parse().unwrap());
        assert_eq!(fm.match_.fields().len(), 3);
        let deny = edge_default_deny_v6();
        assert!(deny.instructions.is_empty());
        let isav = isav_deny_v6(2, "2001:db8::/32".parse().unwrap());
        assert!(isav.match_.validate_prerequisites().is_ok());
        assert_eq!(isav.match_.in_port(), Some(2));
    }

    #[test]
    fn trunk_allow_is_port_only() {
        let fm = trunk_allow(1);
        assert_eq!(fm.match_.fields().len(), 1);
        assert_eq!(fm.priority, PRIO_TRUNK);
    }
}
