//! The incremental rule compiler: a per-`(switch, port)` compiled-state
//! cache that turns binding changes into **minimal flow-mod deltas**.
//!
//! [`crate::rules`] maps one binding to one rule; this module owns the next
//! layer up — *which* rules each port should hold right now, and what must
//! change on the switch to get there. Every `(dpid, port)` carries a mirror
//! of its bindings plus the rule set the switch is believed to hold; a
//! binding change re-derives the port's **desired** rule set as a pure
//! function of the mirror and emits only the difference, adds before
//! deletes, so a legitimately bound source is never without a matching rule
//! mid-transition.
//!
//! With a TCAM budget configured ([`crate::SavConfig::tcam_budget`]), a
//! port whose per-host rule count exceeds the budget is compressed to the
//! minimal exact CIDR cover of its bound addresses
//! ([`crate::aggregate::budgeted_cover`]); a release or migration inside a
//! covered block re-derives the cover, splitting it back toward host rules.
//! Because the desired set is **pure** — no hysteresis, no dependence on
//! the order changes arrived in — the incremental output always converges
//! to exactly what a from-scratch compile of the final binding table would
//! produce. That equivalence is the contract the differential suite in
//! `tests/proptests.rs` enforces.
//!
//! Cookie attribution is preserved across both shapes: host rules keep the
//! kind-0 `SAV_COOKIE | ip` cookie (readable by `on_flow_removed` and the
//! stats poller), covers carry the kind-`0xffff` prefix cookie that both
//! consumers already ignore.

use crate::aggregate;
use crate::binding::{Binding, BindingSource};
use crate::rules;
use sav_net::addr::{Ipv4Cidr, MacAddr};
use sav_openflow::messages::FlowMod;
use sav_sim::SimTime;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Identity of one compiler-owned allow rule within a `(dpid, port)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Per-host allow for this bound source address.
    Host(Ipv4Addr),
    /// Exact-cover prefix allow for this block.
    Cover(Ipv4Cidr),
}

/// The shape the switch holds for a rule — everything whose change requires
/// touching the switch. Host lifecycles are captured as the **absolute**
/// lease expiry, not the encoded `hard_timeout`: re-deriving the same lease
/// at a later `now` yields a smaller countdown but identical switch state,
/// and must not read as a change (a no-op refresh emits nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RuleSpec {
    /// A per-host allow and the fields its match/timeouts derive from.
    /// `mac` is `None` when MAC matching is off — the rule's shape is then
    /// independent of the binding's MAC, and a takeover must not churn it.
    Host {
        mac: Option<MacAddr>,
        source: BindingSource,
        expires: Option<SimTime>,
    },
    /// A prefix cover; its whole shape is in the [`RuleId`].
    Cover,
}

#[derive(Debug, Default)]
struct PortState {
    /// Mirror of the binding table restricted to this port.
    bindings: BTreeMap<Ipv4Addr, Binding>,
    /// What the switch is believed to hold for this port.
    installed: BTreeMap<RuleId, RuleSpec>,
}

/// Timeouts for a binding's host rule: static never expires, DHCP carries
/// the remaining lease as a hard timeout, FCFS idles out.
pub fn lifecycle_timeouts(b: &Binding, dynamic_idle_timeout: u16, now: SimTime) -> (u16, u16) {
    match b.source {
        BindingSource::Static => (0, 0),
        BindingSource::Dhcp => {
            let remaining = b
                .expires
                .map(|t| t.saturating_since(now).as_secs_f64().ceil() as u64)
                .unwrap_or(0);
            (0, remaining.min(u64::from(u16::MAX)) as u16)
        }
        BindingSource::Fcfs => (dynamic_idle_timeout, 0),
    }
}

/// The per-binding allow rule with lifecycle timeouts — the single shape
/// both the incremental and the wholesale compile produce for a host.
pub fn host_flow(b: &Binding, match_mac: bool, dynamic_idle_timeout: u16, now: SimTime) -> FlowMod {
    let (idle, hard) = lifecycle_timeouts(b, dynamic_idle_timeout, now);
    rules::binding_allow(b, match_mac, idle, hard)
}

/// From-scratch compile of one port's bindings: the wholesale semantics the
/// incremental path must agree with. [`crate::SavApp`] uses it to build the
/// reconciliation target set; the differential suite compares the
/// incremental compiler's net effect against exactly this output.
pub fn compile_port(
    bindings: &BTreeMap<Ipv4Addr, Binding>,
    match_mac: bool,
    dynamic_idle_timeout: u16,
    budget: Option<usize>,
    now: SimTime,
) -> Vec<FlowMod> {
    let Some(first) = bindings.values().next() else {
        return Vec::new();
    };
    let port = first.port;
    let ips: Vec<Ipv4Addr> = bindings.keys().copied().collect();
    match aggregate::budgeted_cover(&ips, budget) {
        Some(cover) => cover
            .into_iter()
            .map(|c| rules::cover_allow(port, c))
            .collect(),
        None => bindings
            .values()
            .map(|b| host_flow(b, match_mac, dynamic_idle_timeout, now))
            .collect(),
    }
}

/// The desired rule set of one port as identity → shape, derived purely
/// from the binding mirror and the budget.
fn desired_specs(
    bindings: &BTreeMap<Ipv4Addr, Binding>,
    budget: Option<usize>,
    match_mac: bool,
) -> BTreeMap<RuleId, RuleSpec> {
    let ips: Vec<Ipv4Addr> = bindings.keys().copied().collect();
    match aggregate::budgeted_cover(&ips, budget) {
        Some(cover) => cover
            .into_iter()
            .map(|c| (RuleId::Cover(c), RuleSpec::Cover))
            .collect(),
        None => bindings
            .values()
            .map(|b| {
                (
                    RuleId::Host(b.ip),
                    RuleSpec::Host {
                        mac: match_mac.then_some(b.mac),
                        source: b.source,
                        expires: b.expires,
                    },
                )
            })
            .collect(),
    }
}

/// See the module docs.
#[derive(Debug)]
pub struct RuleCompiler {
    match_mac: bool,
    dynamic_idle_timeout: u16,
    budget: Option<usize>,
    ports: BTreeMap<(u64, u32), PortState>,
}

impl RuleCompiler {
    /// A compiler with no cached state.
    pub fn new(match_mac: bool, dynamic_idle_timeout: u16, budget: Option<usize>) -> RuleCompiler {
        RuleCompiler {
            match_mac,
            dynamic_idle_timeout,
            budget,
            ports: BTreeMap::new(),
        }
    }

    /// Mirror-only upsert: record the binding without computing a delta.
    /// Used for bulk seeding at switch-up; follow with [`sync_switch`].
    ///
    /// [`sync_switch`]: RuleCompiler::sync_switch
    pub fn stage(&mut self, b: &Binding) {
        self.ports
            .entry((b.dpid, b.port))
            .or_default()
            .bindings
            .insert(b.ip, *b);
    }

    /// Upsert `b` and return the flow-mod delta for its port. Unchanged
    /// shape (a no-op refresh) returns an empty delta.
    pub fn bind(&mut self, b: &Binding, now: SimTime) -> Vec<FlowMod> {
        self.stage(b);
        self.sync_port(b.dpid, b.port, now)
    }

    /// Remove `b` and return the delta — the host-rule delete, or the
    /// cover split/re-derivation when the port is aggregated.
    pub fn unbind(&mut self, b: &Binding, now: SimTime) -> Vec<FlowMod> {
        if let Some(state) = self.ports.get_mut(&(b.dpid, b.port)) {
            state.bindings.remove(&b.ip);
        }
        self.sync_port(b.dpid, b.port, now)
    }

    /// The switch itself already removed `b`'s host rule (idle or hard
    /// timeout): evict it from the mirror *and* the installed cache, so no
    /// delete is emitted for a rule that is already gone.
    pub fn rule_expired(&mut self, b: &Binding, now: SimTime) -> Vec<FlowMod> {
        if let Some(state) = self.ports.get_mut(&(b.dpid, b.port)) {
            state.bindings.remove(&b.ip);
            state.installed.remove(&RuleId::Host(b.ip));
        }
        self.sync_port(b.dpid, b.port, now)
    }

    /// Sync every staged port of `dpid`: the delta bringing the switch from
    /// whatever the cache says it holds to the desired state.
    pub fn sync_switch(&mut self, dpid: u64, now: SimTime) -> Vec<FlowMod> {
        let ports: Vec<u32> = self
            .ports
            .range((dpid, 0)..=(dpid, u32::MAX))
            .map(|((_, p), _)| *p)
            .collect();
        let mut out = Vec::new();
        for p in ports {
            out.extend(self.sync_port(dpid, p, now));
        }
        out
    }

    /// Drop all cached state for `dpid` — the switch (re)connected and its
    /// table will be rebuilt or reconciled from scratch.
    pub fn forget_switch(&mut self, dpid: u64) {
        self.ports.retain(|(d, _), _| *d != dpid);
    }

    /// Adopt `bindings` as `dpid`'s mirror and mark the derived rule set as
    /// already installed, emitting nothing: the post-reconciliation
    /// handoff, where the flow-stats diff just brought the switch to
    /// exactly the desired state.
    pub fn prime_switch(&mut self, dpid: u64, bindings: &[Binding]) {
        self.forget_switch(dpid);
        for b in bindings {
            self.stage(b);
        }
        let (budget, match_mac) = (self.budget, self.match_mac);
        for (_, state) in self.ports.range_mut((dpid, 0)..=(dpid, u32::MAX)) {
            state.installed = desired_specs(&state.bindings, budget, match_mac);
        }
    }

    /// Number of allow rules the cache believes `dpid` holds.
    pub fn installed_on(&self, dpid: u64) -> usize {
        self.ports
            .range((dpid, 0)..=(dpid, u32::MAX))
            .map(|(_, s)| s.installed.len())
            .sum()
    }

    /// Total allow rules believed installed across all switches.
    pub fn installed_total(&self) -> usize {
        self.ports.values().map(|s| s.installed.len()).sum()
    }

    /// True if `dpid`'s port holding `ip` is currently compiled as covers.
    pub fn is_covered(&self, b: &Binding) -> bool {
        self.ports
            .get(&(b.dpid, b.port))
            .map(|s| s.installed.keys().any(|id| matches!(id, RuleId::Cover(_))))
            .unwrap_or(false)
    }

    fn add_for(&self, state: &PortState, port: u32, id: &RuleId, now: SimTime) -> FlowMod {
        match id {
            RuleId::Host(ip) => {
                let b = state.bindings.get(ip).expect("desired host has a binding");
                host_flow(b, self.match_mac, self.dynamic_idle_timeout, now)
            }
            RuleId::Cover(c) => rules::cover_allow(port, *c),
        }
    }

    fn delete_for(&self, port: u32, id: &RuleId, old: &RuleSpec) -> FlowMod {
        match (id, old) {
            (RuleId::Host(ip), RuleSpec::Host { mac, .. }) => {
                // Only the match fields matter to a strict delete; the rest
                // of the binding is a placeholder (and the MAC too, when
                // MAC matching is off).
                let ghost = Binding {
                    ip: *ip,
                    mac: mac.unwrap_or(MacAddr::ZERO),
                    dpid: 0,
                    port,
                    source: BindingSource::Fcfs,
                    expires: None,
                };
                let mut fm = rules::binding_delete(&ghost, self.match_mac);
                fm.cookie = rules::allow_cookie(&ghost);
                fm
            }
            (RuleId::Cover(c), _) => rules::cover_delete(port, *c),
            (RuleId::Host(_), RuleSpec::Cover) => unreachable!("host id never holds a cover spec"),
        }
    }

    /// Diff one port's desired rules against the cache and emit the delta.
    fn sync_port(&mut self, dpid: u64, port: u32, now: SimTime) -> Vec<FlowMod> {
        let Some(state) = self.ports.get(&(dpid, port)) else {
            return Vec::new();
        };
        let desired = desired_specs(&state.bindings, self.budget, self.match_mac);
        let mut adds = Vec::new();
        let mut dels = Vec::new();
        for (id, spec) in &desired {
            match state.installed.get(id) {
                Some(old) if old == spec => {}
                Some(old) => {
                    // Same identity, new shape. A MAC change under eth_src
                    // matching alters the *match*, so the old rule must be
                    // strict-deleted; lease/source changes keep the match,
                    // and the Add alone replaces the entry (resetting its
                    // timers, which is exactly what a renewed lease wants).
                    if let (RuleId::Host(_), RuleSpec::Host { mac: old_mac, .. }) = (id, old) {
                        let RuleSpec::Host { mac, .. } = spec else {
                            unreachable!("host id never holds a cover spec");
                        };
                        if old_mac != mac {
                            dels.push(self.delete_for(port, id, old));
                        }
                    }
                    adds.push(self.add_for(state, port, id, now));
                }
                None => adds.push(self.add_for(state, port, id, now)),
            }
        }
        for (id, old) in &state.installed {
            if !desired.contains_key(id) {
                dels.push(self.delete_for(port, id, old));
            }
        }
        // Adds before deletes: a host→cover or cover→host transition never
        // opens a window in which a bound source has no matching rule.
        let mut out = adds;
        out.append(&mut dels);
        let state = self
            .ports
            .get_mut(&(dpid, port))
            .expect("port state exists");
        state.installed = desired;
        if state.bindings.is_empty() && state.installed.is_empty() {
            self.ports.remove(&(dpid, port));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SAV_COOKIE;
    use sav_openflow::messages::FlowModCommand;

    fn b(ip: &str, mac: u64, port: u32) -> Binding {
        Binding {
            ip: ip.parse().unwrap(),
            mac: MacAddr::from_index(mac),
            dpid: 1,
            port,
            source: BindingSource::Static,
            expires: None,
        }
    }

    fn adds(delta: &[FlowMod]) -> usize {
        delta
            .iter()
            .filter(|fm| fm.command == FlowModCommand::Add)
            .count()
    }

    fn dels(delta: &[FlowMod]) -> usize {
        delta
            .iter()
            .filter(|fm| fm.command == FlowModCommand::DeleteStrict)
            .count()
    }

    #[test]
    fn bind_emits_one_add_and_noop_rebind_emits_nothing() {
        let mut c = RuleCompiler::new(true, 60, None);
        let x = b("10.0.0.1", 1, 7);
        let d = c.bind(&x, SimTime::ZERO);
        assert_eq!((adds(&d), dels(&d)), (1, 0));
        assert_eq!(d[0].cookie, SAV_COOKIE | u64::from(u32::from(x.ip)));
        // Identical shape at a later instant: nothing to do.
        let d = c.bind(&x, SimTime::from_secs(30));
        assert!(d.is_empty(), "no-op rebind must ship nothing");
    }

    #[test]
    fn mac_takeover_strict_deletes_the_old_match() {
        let mut c = RuleCompiler::new(true, 60, None);
        let x = b("10.0.0.1", 1, 7);
        c.bind(&x, SimTime::ZERO);
        let mut y = x;
        y.mac = MacAddr::from_index(2);
        let d = c.bind(&y, SimTime::ZERO);
        assert_eq!((adds(&d), dels(&d)), (1, 1));
        // Without MAC matching the match is unchanged — Add alone replaces.
        let mut c = RuleCompiler::new(false, 60, None);
        c.bind(&x, SimTime::ZERO);
        let d = c.bind(&y, SimTime::ZERO);
        assert!(
            d.is_empty(),
            "mac is not in the match nor the spec-relevant timeouts"
        );
    }

    #[test]
    fn lease_renewal_re_adds_without_delete() {
        let mut c = RuleCompiler::new(true, 60, None);
        let mut x = b("10.0.0.1", 1, 7);
        x.source = BindingSource::Dhcp;
        x.expires = Some(SimTime::from_secs(100));
        c.bind(&x, SimTime::ZERO);
        // Same lease, later now: the countdown differs but the switch state
        // doesn't — no delta.
        assert!(c.bind(&x, SimTime::from_secs(40)).is_empty());
        // Renewed lease: one Add, no delete (same match replaces).
        x.expires = Some(SimTime::from_secs(500));
        let d = c.bind(&x, SimTime::from_secs(40));
        assert_eq!((adds(&d), dels(&d)), (1, 0));
        assert_eq!(d[0].hard_timeout, 460);
    }

    #[test]
    fn crossing_the_budget_swaps_hosts_for_covers_adds_first() {
        let mut c = RuleCompiler::new(true, 60, Some(2));
        c.bind(&b("10.0.0.0", 1, 7), SimTime::ZERO);
        let d = c.bind(&b("10.0.0.1", 2, 7), SimTime::ZERO);
        assert_eq!((adds(&d), dels(&d)), (1, 0), "at the budget: still hosts");
        // One past the budget: the exact cover replaces the host rules.
        let d = c.bind(&b("10.0.0.2", 3, 7), SimTime::ZERO);
        assert_eq!(adds(&d), 2, "10.0.0.0/31 + 10.0.0.2/32");
        assert_eq!(dels(&d), 2, "both host rules retired");
        // Make-before-break: every add precedes every delete.
        let first_del = d
            .iter()
            .position(|f| f.command == FlowModCommand::DeleteStrict);
        let last_add = d.iter().rposition(|f| f.command == FlowModCommand::Add);
        assert!(last_add < first_del, "adds ship before deletes");
        assert_eq!(c.installed_on(1), 2);
    }

    #[test]
    fn release_inside_a_cover_splits_it() {
        let mut c = RuleCompiler::new(true, 60, Some(2));
        for (i, ip) in ["10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3"]
            .iter()
            .enumerate()
        {
            c.bind(&b(ip, i as u64, 7), SimTime::ZERO);
        }
        assert_eq!(c.installed_on(1), 1, "four dense hosts → one /30 cover");
        // Releasing an interior address forces the split: the /30 is
        // replaced by the exact cover of the three survivors.
        let d = c.unbind(&b("10.0.0.1", 1, 7), SimTime::ZERO);
        assert_eq!(adds(&d), 2, "10.0.0.0/32 + 10.0.0.2/31");
        assert_eq!(dels(&d), 1, "the /30 cover");
        assert_eq!(c.installed_on(1), 2);
        // Cover cookies carry the network address for attribution and the
        // 0xffff kind so binding-expiry logic ignores them.
        for fm in d.iter().filter(|f| f.command == FlowModCommand::Add) {
            assert_eq!((fm.cookie >> 32) & 0xffff, 0xffff);
        }
    }

    #[test]
    fn rule_expired_evicts_silently() {
        let mut c = RuleCompiler::new(true, 60, None);
        let x = b("10.0.0.1", 1, 7);
        c.bind(&x, SimTime::ZERO);
        let d = c.rule_expired(&x, SimTime::ZERO);
        assert!(d.is_empty(), "the switch already dropped the rule");
        assert_eq!(c.installed_total(), 0);
    }

    #[test]
    fn prime_switch_adopts_without_emitting() {
        let mut c = RuleCompiler::new(true, 60, Some(1));
        let bs = vec![b("10.0.0.0", 1, 7), b("10.0.0.1", 2, 7)];
        c.prime_switch(1, &bs);
        assert_eq!(c.installed_on(1), 1, "two hosts over budget → one /31");
        // Syncing right after priming finds nothing to do.
        assert!(c.sync_switch(1, SimTime::ZERO).is_empty());
    }
}
