//! [`StatsPollerApp`] — periodic switch statistics collection.
//!
//! Driven by [`sav_controller::Controller::poll_tick`], the poller asks
//! every ready switch for its SAV flow rules (cookie-filtered OFPMP_FLOW)
//! and all port counters (OFPMP_PORT_STATS), then turns the absolute
//! switch-side counters into:
//!
//! * **NetFlow-style SAV records** — per `(switch, port, binding-IP)`
//!   packet/byte totals, read off the per-binding allow rules (their
//!   cookie carries the bound IP, their match the port);
//! * **spoof-drop attribution** — per-switch drop totals from the
//!   default-deny rule's packet count, and per-*port* totals from each
//!   port's `rx_dropped` (the deny rule matches only `eth_type`, so port
//!   granularity must come from the port counters), exposed as a top-K
//!   table;
//! * counters, gauges, and [`EventKind::SpoofDrop`] journal entries on
//!   the shared [`Obs`] handle, so drops show up on `/metrics` and
//!   `/events` between polls.
//!
//! Deltas use saturating subtraction: a switch restart resets its
//! counters, which must read as "no new drops", not an underflow.

use crate::{PRIO_ALLOW, PRIO_OSAV_DENY, SAV_COOKIE, SAV_COOKIE_MASK};
use sav_controller::app::{App, Ctx};
use sav_obs::{EventKind, Obs, Severity};
use sav_openflow::consts::port as ofport;
use sav_openflow::messages::{FlowStatsRequest, Message, MultipartReplyBody, MultipartRequestBody};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// One NetFlow-style accounting record: how much traffic a binding has
/// sourced through its attachment point, per the switch's own counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavRecord {
    /// Switch the binding is anchored on.
    pub dpid: u64,
    /// Ingress port of the allow rule.
    pub port: u32,
    /// The bound source address.
    pub ip: Ipv4Addr,
    /// Packets the allow rule has matched (absolute).
    pub packets: u64,
    /// Bytes the allow rule has matched (absolute).
    pub bytes: u64,
}

/// One row of the spoof-drop attribution table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpoofSource {
    /// Switch observing the drops.
    pub dpid: u64,
    /// Port the spoofed packets arrived on.
    pub port: u32,
    /// Packets dropped so far (absolute).
    pub dropped: u64,
}

/// Controller app that polls switch statistics and feeds [`Obs`].
/// Register it anywhere in the chain; it only reacts to poll ticks and
/// multipart replies, and never consumes packet-ins.
pub struct StatsPollerApp {
    obs: Obs,
    export_per_binding: bool,
    /// Keep 1-in-`sample_n` per-binding flow records (1 = keep all).
    sample_n: u32,
    /// Absolute per-binding totals from allow-rule counters (sampled
    /// records only; multiply by `sample_n` for population estimates).
    records: BTreeMap<(u64, u32, Ipv4Addr), (u64, u64)>,
    /// Last absolute default-deny packet count per switch.
    deny_last: BTreeMap<u64, u64>,
    /// Last absolute `rx_dropped` per (switch, port).
    port_drops: BTreeMap<(u64, u32), u64>,
    polls: u64,
}

impl StatsPollerApp {
    /// Build a poller publishing into `obs`.
    pub fn new(obs: Obs) -> StatsPollerApp {
        obs.counters.add("sav_flow_records_sampled_total", 0);
        obs.counters.add("sav_flow_records_dropped_total", 0);
        StatsPollerApp {
            obs,
            export_per_binding: true,
            sample_n: 1,
            records: BTreeMap::new(),
            deny_last: BTreeMap::new(),
            port_drops: BTreeMap::new(),
            polls: 0,
        }
    }

    /// NetFlow-style 1-in-`n` sampling of per-binding flow records, keyed
    /// by a hash of `(dpid, port, ip)` so the kept subset is stable across
    /// polls (each kept binding accumulates correct absolute counters,
    /// and population totals are estimated as `kept × n`). Deny-rule and
    /// border-tagged counters are never sampled away — drop attribution
    /// must stay exact. `n = 1` (the default) keeps everything.
    pub fn with_sampling(mut self, n: u32) -> StatsPollerApp {
        self.sample_n = n.max(1);
        self
    }

    /// The configured 1-in-N sampling rate.
    pub fn sampling(&self) -> u32 {
        self.sample_n
    }

    /// Stable membership test: FNV-1a over the record key, so the same
    /// ~1/n of bindings is kept on every poll.
    fn keeps(&self, dpid: u64, port: u32, ip: Ipv4Addr) -> bool {
        if self.sample_n <= 1 {
            return true;
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in dpid
            .to_be_bytes()
            .into_iter()
            .chain(port.to_be_bytes())
            .chain(ip.octets())
        {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // FNV's low bits disperse poorly over sequential addresses; mix
        // before the modulus so kept fractions track 1/n closely.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h.is_multiple_of(u64::from(self.sample_n))
    }

    /// Sampling-corrected population totals `(packets, bytes)`: the sum
    /// over kept records scaled by the sampling rate.
    pub fn estimated_totals(&self) -> (f64, f64) {
        let (packets, bytes) = self
            .records
            .values()
            .fold((0u64, 0u64), |acc, &(p, b)| (acc.0 + p, acc.1 + b));
        let n = f64::from(self.sample_n);
        (packets as f64 * n, bytes as f64 * n)
    }

    /// Toggle per-binding gauge export (`sav_binding_packets{...}`). On by
    /// default; turn off when the binding table is large enough that
    /// per-binding series would swamp the scrape.
    pub fn with_per_binding_gauges(mut self, on: bool) -> StatsPollerApp {
        self.export_per_binding = on;
        self
    }

    /// Poll rounds completed (requests sent, not replies received).
    pub fn polls(&self) -> u64 {
        self.polls
    }

    /// The current SAV records, ordered by (switch, port, IP).
    pub fn records(&self) -> Vec<SavRecord> {
        self.records
            .iter()
            .map(|(&(dpid, port, ip), &(packets, bytes))| SavRecord {
                dpid,
                port,
                ip,
                packets,
                bytes,
            })
            .collect()
    }

    /// Per-switch spoof totals from the default-deny rule counters.
    pub fn switch_drop_totals(&self) -> Vec<(u64, u64)> {
        self.deny_last.iter().map(|(&d, &n)| (d, n)).collect()
    }

    /// The `k` worst spoof sources by per-port drop count, descending
    /// (ties broken by switch/port for determinism).
    pub fn top_spoofers(&self, k: usize) -> Vec<SpoofSource> {
        let mut rows: Vec<SpoofSource> = self
            .port_drops
            .iter()
            .filter(|(_, &n)| n > 0)
            .map(|(&(dpid, port), &dropped)| SpoofSource {
                dpid,
                port,
                dropped,
            })
            .collect();
        rows.sort_by(|a, b| {
            b.dropped
                .cmp(&a.dropped)
                .then(a.dpid.cmp(&b.dpid))
                .then(a.port.cmp(&b.port))
        });
        rows.truncate(k);
        rows
    }

    fn ingest_flow_stats(&mut self, dpid: u64, entries: &[sav_openflow::messages::FlowStatsEntry]) {
        let mut deny_total = 0u64;
        for e in entries {
            if e.cookie & SAV_COOKIE_MASK != SAV_COOKIE {
                continue; // not a SAV rule
            }
            if e.priority == PRIO_OSAV_DENY {
                deny_total += e.packet_count;
                continue;
            }
            // Per-binding allows carry the bound IP in the low cookie bits;
            // prefix allows tag bits 32..48 instead and have no single IP.
            if e.priority == PRIO_ALLOW && (e.cookie >> 32) & 0xffff == 0 {
                let Some(port) = e.match_.in_port() else {
                    continue;
                };
                let ip = Ipv4Addr::from((e.cookie & 0xffff_ffff) as u32);
                if !self.keeps(dpid, port, ip) {
                    self.obs.counters.incr("sav_flow_records_dropped_total");
                    continue;
                }
                self.obs.counters.incr("sav_flow_records_sampled_total");
                self.records
                    .insert((dpid, port, ip), (e.packet_count, e.byte_count));
                if self.export_per_binding {
                    self.obs.gauges.set(
                        format!(
                            "sav_binding_packets{{dpid=\"{dpid}\",port=\"{port}\",ip=\"{ip}\"}}"
                        ),
                        e.packet_count as f64,
                    );
                    self.obs.gauges.set(
                        format!("sav_binding_bytes{{dpid=\"{dpid}\",port=\"{port}\",ip=\"{ip}\"}}"),
                        e.byte_count as f64,
                    );
                }
            }
        }
        let last = self.deny_last.insert(dpid, deny_total).unwrap_or(0);
        let delta = deny_total.saturating_sub(last);
        if delta > 0 {
            self.obs.counters.add("sav_spoof_dropped_total", delta);
            self.obs
                .counters
                .add(format!("sav_spoof_dropped_total{{dpid=\"{dpid}\"}}"), delta);
            // Port 0 = whole switch; the deny rule matches only eth_type,
            // so port attribution comes from the port-stats path below.
            self.obs.event(
                Severity::Warn,
                EventKind::SpoofDrop {
                    dpid,
                    port: 0,
                    packets: delta,
                },
            );
        }
        let (est_packets, est_bytes) = self.estimated_totals();
        self.obs
            .gauges
            .set("sav_flow_packets_estimate", est_packets);
        self.obs.gauges.set("sav_flow_bytes_estimate", est_bytes);
    }

    fn ingest_port_stats(&mut self, dpid: u64, stats: &[sav_openflow::messages::PortStats]) {
        for p in stats {
            let last = self
                .port_drops
                .insert((dpid, p.port_no), p.rx_dropped)
                .unwrap_or(0);
            self.obs.gauges.set(
                format!(
                    "sav_port_rx_dropped{{dpid=\"{dpid}\",port=\"{}\"}}",
                    p.port_no
                ),
                p.rx_dropped as f64,
            );
            let delta = p.rx_dropped.saturating_sub(last);
            if delta > 0 {
                self.obs.event(
                    Severity::Warn,
                    EventKind::SpoofDrop {
                        dpid,
                        port: p.port_no,
                        packets: delta,
                    },
                );
            }
        }
    }
}

impl App for StatsPollerApp {
    fn name(&self) -> &'static str {
        "sav-stats-poller"
    }

    fn on_poll(&mut self, ctx: &mut Ctx, dpid: u64) {
        self.polls += 1;
        self.obs.counters.incr("sav_stats_polls_total");
        ctx.send(
            dpid,
            Message::MultipartRequest(MultipartRequestBody::Flow(FlowStatsRequest {
                table_id: 0,
                cookie: SAV_COOKIE,
                cookie_mask: SAV_COOKIE_MASK,
                ..FlowStatsRequest::default()
            })),
        );
        ctx.send(
            dpid,
            Message::MultipartRequest(MultipartRequestBody::PortStats {
                port_no: ofport::ANY,
            }),
        );
    }

    fn on_stats_reply(&mut self, _ctx: &mut Ctx, dpid: u64, body: &MultipartReplyBody) {
        match body {
            MultipartReplyBody::Flow(entries) => self.ingest_flow_stats(dpid, entries),
            MultipartReplyBody::PortStats(stats) => self.ingest_port_stats(dpid, stats),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{Binding, BindingSource};
    use crate::rules;
    use sav_openflow::messages::{FlowStatsEntry, PortStats};
    use sav_sim::SimTime;

    fn allow_entry(dpid_port: u32, ip: Ipv4Addr, packets: u64, bytes: u64) -> FlowStatsEntry {
        let b = Binding {
            ip,
            mac: sav_net::addr::MacAddr::from_index(1),
            dpid: 1,
            port: dpid_port,
            source: BindingSource::Static,
            expires: None,
        };
        let fm = rules::binding_allow(&b, true, 0, 0);
        FlowStatsEntry {
            table_id: 0,
            duration_sec: 1,
            duration_nsec: 0,
            priority: fm.priority,
            idle_timeout: 0,
            hard_timeout: 0,
            flags: fm.flags,
            cookie: fm.cookie,
            packet_count: packets,
            byte_count: bytes,
            match_: fm.match_,
            instructions: fm.instructions,
        }
    }

    fn deny_entry(packets: u64) -> FlowStatsEntry {
        let fm = rules::edge_default_deny(false);
        FlowStatsEntry {
            table_id: 0,
            duration_sec: 1,
            duration_nsec: 0,
            priority: fm.priority,
            idle_timeout: 0,
            hard_timeout: 0,
            flags: fm.flags,
            cookie: fm.cookie,
            packet_count: packets,
            byte_count: packets * 100,
            match_: fm.match_,
            instructions: fm.instructions,
        }
    }

    #[test]
    fn on_poll_requests_flow_and_port_stats() {
        let mut app = StatsPollerApp::new(Obs::new());
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_poll(&mut ctx, 7);
        let msgs = ctx.take();
        assert_eq!(msgs.len(), 2);
        assert!(matches!(
            &msgs[0].1,
            Message::MultipartRequest(MultipartRequestBody::Flow(req))
                if req.cookie == SAV_COOKIE && req.cookie_mask == SAV_COOKIE_MASK
        ));
        assert!(matches!(
            &msgs[1].1,
            Message::MultipartRequest(MultipartRequestBody::PortStats { port_no })
                if *port_no == ofport::ANY
        ));
        assert_eq!(app.polls(), 1);
    }

    #[test]
    fn flow_reply_builds_records_and_deny_deltas() {
        let obs = Obs::new();
        let mut app = StatsPollerApp::new(obs.clone());
        let ip: Ipv4Addr = "10.0.0.5".parse().unwrap();
        let reply = MultipartReplyBody::Flow(vec![allow_entry(3, ip, 40, 4000), deny_entry(5)]);
        app.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);

        let recs = app.records();
        assert_eq!(
            recs,
            vec![SavRecord {
                dpid: 1,
                port: 3,
                ip,
                packets: 40,
                bytes: 4000
            }]
        );
        assert_eq!(obs.counters.get("sav_spoof_dropped_total"), 5);
        assert_eq!(obs.counters.get("sav_spoof_dropped_total{dpid=\"1\"}"), 5);
        assert!(obs.journal.tail_jsonl(1).contains("spoof_drop"));

        // Second poll: counter moves by the delta, not the absolute.
        let reply = MultipartReplyBody::Flow(vec![allow_entry(3, ip, 55, 5500), deny_entry(9)]);
        app.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);
        assert_eq!(obs.counters.get("sav_spoof_dropped_total"), 9);
        assert_eq!(app.records()[0].packets, 55);
        assert_eq!(app.switch_drop_totals(), vec![(1, 9)]);

        // Switch restart: counters reset to a smaller absolute — no underflow,
        // no phantom drops.
        let reply = MultipartReplyBody::Flow(vec![deny_entry(2)]);
        app.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);
        assert_eq!(obs.counters.get("sav_spoof_dropped_total"), 9);
    }

    #[test]
    fn port_stats_drive_top_k_attribution() {
        let obs = Obs::new();
        let mut app = StatsPollerApp::new(obs.clone());
        let port = |port_no, rx_dropped| PortStats {
            port_no,
            rx_dropped,
            ..PortStats::default()
        };
        app.on_stats_reply(
            &mut Ctx::new(SimTime::ZERO),
            1,
            &MultipartReplyBody::PortStats(vec![port(1, 0), port(2, 30)]),
        );
        app.on_stats_reply(
            &mut Ctx::new(SimTime::ZERO),
            2,
            &MultipartReplyBody::PortStats(vec![port(1, 70)]),
        );
        assert_eq!(
            app.top_spoofers(1),
            vec![SpoofSource {
                dpid: 2,
                port: 1,
                dropped: 70
            }]
        );
        assert_eq!(app.top_spoofers(10).len(), 2, "zero-drop ports excluded");
        assert_eq!(
            obs.gauges.get("sav_port_rx_dropped{dpid=\"1\",port=\"2\"}"),
            Some(30.0)
        );
        // Each nonzero delta journals a port-attributed spoof_drop.
        assert!(obs.journal.tail_jsonl(2).contains("\"port\":2"));
    }

    /// A synthetic population of allow rules with uniform traffic: every
    /// binding on port `p` carries `100 + i` packets of 100 bytes each.
    fn uniform_entries(n: u32) -> Vec<FlowStatsEntry> {
        (0..n)
            .map(|i| {
                let ip = Ipv4Addr::from(0x0a00_0100 + i);
                let packets = 100 + u64::from(i);
                allow_entry(1 + (i % 4), ip, packets, packets * 100)
            })
            .collect()
    }

    #[test]
    fn sampling_keeps_a_stable_subset_and_corrects_totals() {
        let truth_obs = Obs::new();
        let mut truth = StatsPollerApp::new(truth_obs.clone());
        let obs = Obs::new();
        let mut sampled = StatsPollerApp::new(obs.clone()).with_sampling(8);
        assert_eq!(sampled.sampling(), 8);

        let entries = uniform_entries(256);
        let reply = MultipartReplyBody::Flow(entries.clone());
        truth.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);
        sampled.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);

        let kept = obs.counters.get("sav_flow_records_sampled_total");
        let dropped = obs.counters.get("sav_flow_records_dropped_total");
        assert_eq!(
            kept + dropped,
            256,
            "every record is either kept or counted"
        );
        assert!(
            kept > 0 && dropped > 0,
            "1-in-8 keeps a strict subset ({kept} kept)"
        );
        assert_eq!(sampled.records().len(), kept as usize);
        assert_eq!(truth.records().len(), 256);

        // Sampling-corrected estimate within 2× of the unsampled truth.
        let (_, truth_bytes) = truth.estimated_totals();
        let (_, est_bytes) = sampled.estimated_totals();
        assert!(
            est_bytes >= truth_bytes / 2.0 && est_bytes <= truth_bytes * 2.0,
            "1-in-8 estimate {est_bytes} vs truth {truth_bytes}"
        );
        assert_eq!(obs.gauges.get("sav_flow_bytes_estimate"), Some(est_bytes));

        // The kept subset is stable: a second poll re-selects the same
        // records (counters accumulate exactly 2× the first round).
        sampled.on_stats_reply(&mut Ctx::new(SimTime::ZERO), 1, &reply);
        assert_eq!(obs.counters.get("sav_flow_records_sampled_total"), kept * 2);
        assert_eq!(sampled.records().len(), kept as usize);
    }

    #[test]
    fn deny_counters_are_never_sampled_away() {
        let obs = Obs::new();
        let mut app = StatsPollerApp::new(obs.clone()).with_sampling(1_000_000);
        let mut entries = uniform_entries(64);
        entries.push(deny_entry(9));
        app.on_stats_reply(
            &mut Ctx::new(SimTime::ZERO),
            1,
            &MultipartReplyBody::Flow(entries),
        );
        // Virtually every per-binding record is sampled out...
        assert!(app.records().len() <= 1);
        // ...but the default-deny drop attribution stays exact.
        assert_eq!(app.switch_drop_totals(), vec![(1, 9)]);
        assert_eq!(obs.counters.get("sav_spoof_dropped_total"), 9);
    }
}
