//! [`SavApp`] — the SAV controller application.
//!
//! Ties the binding table and the rule compiler to the controller event
//! stream: seeds static bindings at switch-up, snoops DHCP through the
//! copy rules, claims FCFS bindings from punted first packets, validates
//! reactively when configured, tracks migrations via (gratuitous) ARP, and
//! retires state when rules time out or ports die.
//!
//! With a [`BindingStore`] attached ([`SavApp::with_store`]) the table is
//! durable: every mutation appends a WAL record before the derived rule
//! change ships, and after a controller restart the recovered table is
//! *reconciled* against each switch's installed SAV rules (flow-stats diff
//! by cookie) instead of blindly re-pushed — strays deleted, missing rules
//! installed, matching rules kept with their switch-side timers intact.

use crate::binding::{Binding, BindingChange, BindingSource, BindingTable};
use crate::compiler::{self, RuleCompiler};
use crate::rules;
use crate::{SAV_COOKIE, SAV_COOKIE_MASK};
use sav_controller::app::{App, Ctx, Disposition};
use sav_metrics::Counters;
use sav_net::addr::{Ipv4Cidr, Ipv6Cidr, MacAddr};
use sav_net::dhcpv4::{DhcpMessageType, DhcpRepr, DHCP_SERVER_PORT};
use sav_net::packet::{L4Info, ParsedPacket};
use sav_obs::{EventKind, Obs, Severity, Span, TraceId, TraceStageGuard};
use sav_openflow::consts::port as ofport;
use sav_openflow::messages::{
    FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason, FlowStatsEntry, FlowStatsRequest,
    Message, MultipartReplyBody, MultipartRequestBody, PacketIn, PacketOut, PortStatus,
};
use sav_openflow::prelude::Action;
use sav_sim::{SimDuration, SimTime};
use sav_store::{BindingRecord, BindingStore, RecordSource, WalOp};
use sav_topo::{SwitchId, SwitchRole, Topology};
use std::collections::{HashMap, HashSet};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn to_record(b: &Binding) -> BindingRecord {
    BindingRecord {
        ip: b.ip,
        mac: b.mac,
        dpid: b.dpid,
        port: b.port,
        source: match b.source {
            BindingSource::Static => RecordSource::Static,
            BindingSource::Dhcp => RecordSource::Dhcp,
            BindingSource::Fcfs => RecordSource::Fcfs,
        },
        expires: b.expires,
    }
}

fn source_label(s: BindingSource) -> &'static str {
    match s {
        BindingSource::Static => "static",
        BindingSource::Dhcp => "dhcp",
        BindingSource::Fcfs => "fcfs",
    }
}

fn from_record(r: &BindingRecord) -> Binding {
    Binding {
        ip: r.ip,
        mac: r.mac,
        dpid: r.dpid,
        port: r.port,
        source: match r.source {
            RecordSource::Static => BindingSource::Static,
            RecordSource::Dhcp => BindingSource::Dhcp,
            RecordSource::Fcfs => BindingSource::Fcfs,
        },
        expires: r.expires,
    }
}

/// Proactive rules vs. per-packet controller validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SavMode {
    /// Compile bindings to flow rules; the data plane filters at line rate.
    Proactive,
    /// Punt unmatched sources to the controller and validate each packet —
    /// the strawman the proactive design is evaluated against.
    Reactive,
}

/// Configuration of the SAV application.
#[derive(Debug, Clone)]
pub struct SavConfig {
    /// Proactive or reactive enforcement.
    pub mode: SavMode,
    /// Seed bindings from the topology's static address plan at switch-up.
    pub static_plan: bool,
    /// Learn bindings from snooped DHCP.
    pub dhcp_snooping: bool,
    /// First-come-first-served claiming of unbound sources.
    pub fcfs: bool,
    /// Include `eth_src` in allow rules (binds IP to MAC, not just port).
    pub match_mac: bool,
    /// Compile per-port *prefix* allows instead of per-host rules.
    pub aggregate: bool,
    /// With `aggregate`: use the minimal *exact* CIDR cover of the port's
    /// bound addresses ([`crate::aggregate::exact_cover`]) instead of the
    /// whole subnet — no unassigned address passes, dense blocks still
    /// merge.
    pub aggregate_exact: bool,
    /// Enforce outbound SAV at edge switches.
    pub outbound: bool,
    /// Enforce inbound SAV at border switches.
    pub inbound: bool,
    /// Idle timeout (seconds) of FCFS and reactive allow rules.
    pub dynamic_idle_timeout: u16,
    /// Trusted DHCP server attachment points `(dpid, port)`.
    pub trusted_dhcp_ports: Vec<(u64, u32)>,
    /// Restrict enforcement to these ASes (`None` = everywhere). Models
    /// partial deployment: e.g. only the attacker's network deploys SAV in
    /// the reflection case study.
    pub enforced_ases: Option<Vec<u32>>,
    /// IPv6 prefixes internal to each enforced network: every border port
    /// gets an `isav_deny_v6` per prefix, alongside the IPv4 denies derived
    /// from the topology's subnet plan (the v6 address plan is static
    /// configuration, as noted in [`rules::binding_allow_v6`]).
    pub internal_v6_prefixes: Vec<Ipv6Cidr>,
    /// Enable the anti-amplification border guard (the `sav-border` crate)
    /// with this configuration. `None` leaves the rule set byte-identical
    /// to a guard-less deployment.
    pub border: Option<BorderConfig>,
    /// Per-port TCAM budget for adaptive aggregation (proactive per-host
    /// mode only). A port's host allows are compressed into the exact CIDR
    /// cover of its bound addresses once their count *exceeds* this budget,
    /// and split back toward host rules when releases/migrations shrink the
    /// set. `None` (the default) keeps pure per-host rules and leaves every
    /// existing mode byte-identical.
    pub tcam_budget: Option<usize>,
}

/// Configuration of the anti-amplification border guard. Lives in sav-core
/// so [`SavConfig`] can carry it; the enforcement app consuming it is
/// `sav_border::BorderGuardApp` (sav-border depends on sav-core, not the
/// other way around).
#[derive(Debug, Clone)]
pub struct BorderConfig {
    /// `N`: quarantine a source once response bytes exceed `N×` its
    /// received bytes (RFC 9000 §8 uses 3).
    pub amplification_limit: u64,
    /// Never quarantine before this many response bytes (absorbs a single
    /// fat first response).
    pub grace_bytes: u64,
    /// Poll ticks of clean bidirectional exchange before a source is
    /// validated (exempt).
    pub validation_polls: u32,
    /// Minimum cumulative inbound bytes before validation.
    pub validation_min_bytes: u64,
    /// Poll ticks without inbound traffic after which an earned validation
    /// lapses back to unvalidated (0 = never; allowlist entries never lapse).
    pub validation_idle_polls: u32,
    /// First-offense quarantine, seconds.
    pub quarantine_base_secs: u16,
    /// Ceiling of the exponential re-offense escalation, seconds.
    pub quarantine_max_secs: u16,
    /// Idle timeout on the per-source count rules: an idle source's rules
    /// expire at the switch and its controller state is evicted with them.
    pub count_idle_secs: u16,
    /// Hard cap on tracked sources per border table; sources past the cap
    /// are not admitted, bounding state under spoofed source scans.
    pub max_sources: usize,
    /// Sources exempted up front (peering partners, monitoring probes).
    pub allowlist: Vec<Ipv4Addr>,
    /// Observability handle for guard events, counters, and gauges.
    pub obs: Option<Obs>,
}

impl Default for BorderConfig {
    fn default() -> Self {
        BorderConfig {
            amplification_limit: 3,
            grace_bytes: 1500,
            validation_polls: 5,
            validation_min_bytes: 10_000,
            validation_idle_polls: 40,
            quarantine_base_secs: 10,
            quarantine_max_secs: 600,
            count_idle_secs: 60,
            max_sources: 1024,
            allowlist: vec![],
            obs: None,
        }
    }
}

impl Default for SavConfig {
    fn default() -> Self {
        SavConfig {
            mode: SavMode::Proactive,
            static_plan: true,
            dhcp_snooping: true,
            fcfs: false,
            match_mac: true,
            aggregate: false,
            aggregate_exact: false,
            outbound: true,
            inbound: true,
            dynamic_idle_timeout: 60,
            trusted_dhcp_ports: vec![],
            enforced_ases: None,
            internal_v6_prefixes: vec![],
            border: None,
            tcam_budget: None,
        }
    }
}

/// Counters for the evaluation harness.
#[derive(Debug, Default, Clone, Copy)]
pub struct SavStats {
    /// Bindings added (any source).
    pub bindings_added: u64,
    /// Bindings that moved to a new attachment.
    pub bindings_moved: u64,
    /// Bindings dropped on rule expiry.
    pub bindings_expired: u64,
    /// Upserts refused because the address is held by another MAC.
    pub conflicts: u64,
    /// DHCP ACKs snooped into bindings.
    pub dhcp_acks: u64,
    /// DHCP releases processed.
    pub dhcp_releases: u64,
    /// Packets punted by the validation table.
    pub punts: u64,
    /// Punted packets validated and re-injected.
    pub punts_allowed: u64,
    /// Punted packets rejected as spoofed.
    pub punts_denied: u64,
    /// FCFS bindings claimed.
    pub fcfs_claims: u64,
    /// Migrations detected via ARP.
    pub migrations: u64,
    /// ARP messages whose sender contradicted an existing binding.
    pub arp_spoofs: u64,
    /// SAV flow-mods sent (rule-churn metric).
    pub rules_installed: u64,
    /// SAV rule deletions sent.
    pub rules_deleted: u64,
}

/// The SAV application. Place it *before* the forwarding app in the chain
/// so it can consume validation punts.
pub struct SavApp {
    topo: Arc<Topology>,
    config: SavConfig,
    bindings: BindingTable,
    /// Last seen client attachment from snooped client DHCP messages.
    dhcp_pending: HashMap<MacAddr, (u64, u32)>,
    /// Trunk ports per dpid (punts from these are transit, never claims).
    trunks: HashMap<u64, HashSet<u32>>,
    /// Counters.
    pub stats: SavStats,
    /// Durable store; every binding mutation is WAL-logged when present.
    store: Option<BindingStore>,
    /// True when this app was hydrated from a store — switch-ups then
    /// reconcile against installed rules instead of blindly re-pushing.
    recovered: bool,
    /// Switches with an outstanding reconciliation flow-stats request.
    reconciling: HashSet<u64>,
    /// Shared counters (`reconciled_kept` / `reconciled_deleted` /
    /// `reconciled_installed`, `wal_append_errors`).
    pub counters: Counters,
    /// Observability handle (events, spans, gauges); absent by default so
    /// the hot paths cost one branch per site when unobserved.
    obs: Option<Obs>,
    /// Switches currently up (drives the `sav_connected_switches` gauge).
    connected: HashSet<u64>,
    /// Incremental compiler: per-(dpid, port) mirror + installed-rule cache
    /// emitting minimal deltas. Owns rule placement on the proactive
    /// per-host path (see [`SavApp::compiler_active`]).
    compiler: RuleCompiler,
    /// Causal trace of the binding currently mid-upsert, with the dpid its
    /// enforcement lands on; stage hooks attach to it while set.
    active_trace: Option<(TraceId, u64)>,
    /// Whether the active trace already fenced its flow-mods with a traced
    /// barrier (completion then rides on the barrier ack).
    trace_barrier_sent: bool,
    /// Trace clock captured at packet-in entry, so a trace minted during
    /// DHCP snooping starts at the packet's arrival, not the ACK decision.
    pktin_ns: Option<u64>,
}

impl SavApp {
    /// Build the app for a topology (no durability).
    pub fn new(topo: Arc<Topology>, config: SavConfig) -> SavApp {
        let trunks = topo
            .switches()
            .iter()
            .map(|s| (s.id.dpid(), topo.trunk_ports(s.id).into_iter().collect()))
            .collect();
        let compiler = RuleCompiler::new(
            config.match_mac,
            config.dynamic_idle_timeout,
            config.tcam_budget,
        );
        SavApp {
            topo,
            config,
            bindings: BindingTable::new(),
            dhcp_pending: HashMap::new(),
            trunks,
            stats: SavStats::default(),
            store: None,
            recovered: false,
            reconciling: HashSet::new(),
            counters: Counters::new(),
            obs: None,
            connected: HashSet::new(),
            compiler,
            active_trace: None,
            trace_barrier_sent: false,
            pktin_ns: None,
        }
    }

    /// Attach an observability handle: binding and rule lifecycle events
    /// land in its journal, instrumented paths in its trace histograms,
    /// table sizes in its gauges.
    pub fn with_obs(mut self, obs: Obs) -> SavApp {
        self.set_obs(obs);
        self
    }

    /// Non-consuming variant of [`SavApp::with_obs`], for apps already
    /// wired into a controller (e.g. behind `Controller::with_app`).
    pub fn set_obs(&mut self, obs: Obs) {
        if let Some(store) = &mut self.store {
            store.set_obs(obs.clone());
        }
        self.obs = Some(obs);
        self.refresh_gauges();
    }

    /// Build the app over a durable [`BindingStore`], hydrating the binding
    /// table from the recovered image. Switches connecting afterwards are
    /// reconciled: the app asks each for its installed SAV rules and diffs
    /// them against the recovered table rather than re-pushing everything.
    pub fn with_store(topo: Arc<Topology>, config: SavConfig, store: BindingStore) -> SavApp {
        let mut app = SavApp::new(topo, config);
        for rec in store.bindings().values() {
            // Hydration replays durable state; it is not a new mutation, so
            // nothing is logged back to the WAL.
            app.bindings.upsert(from_record(rec), SimTime::ZERO);
        }
        app.counters
            .add("recovered_bindings", app.bindings.len() as u64);
        app.store = Some(store);
        app.recovered = true;
        app
    }

    /// Read access to the binding table.
    pub fn bindings(&self) -> &BindingTable {
        &self.bindings
    }

    /// The app's configuration.
    pub fn config(&self) -> &SavConfig {
        &self.config
    }

    /// The durable store, if one is attached.
    pub fn store(&self) -> Option<&BindingStore> {
        self.store.as_ref()
    }

    /// Apply one binding upsert through the full pipeline — WAL, events,
    /// stats, and the derived flow-mod delta into `ctx` — returning what
    /// the table did. The programmatic twin of the DHCP/FCFS/ARP learning
    /// paths, for operator tooling and the differential test harness.
    pub fn upsert_binding(&mut self, ctx: &mut Ctx, b: Binding) -> BindingChange {
        let now = ctx.now();
        self.apply_upsert(ctx, b, now)
    }

    /// Remove the binding for `ip` (operator action or programmatic
    /// release) and retire its rules — under a TCAM budget a release inside
    /// a covered block splits the cover. Returns the removed binding.
    pub fn release_binding(&mut self, ctx: &mut Ctx, ip: Ipv4Addr) -> Option<Binding> {
        let b = self.bindings.remove(ip)?;
        self.log_op(WalOp::Remove(ip));
        self.emit(Severity::Info, || EventKind::BindingExpired {
            ip: ip.to_string(),
            dpid: b.dpid,
        });
        let now = ctx.now();
        self.retire_rules(ctx, &b, now);
        self.refresh_gauges();
        Some(b)
    }

    /// Sweep lease-expired bindings out of the table and retire their
    /// rules, returning how many died. Cover rules carry no switch-side
    /// timers (one rule stands for many leases), so under a TCAM budget
    /// [`App::on_poll`] drives this sweep; without a budget the switch's
    /// own `FlowRemoved` remains the expiry signal and the sweep finds at
    /// most bindings whose rules are about to report the same thing.
    pub fn sweep_expired(&mut self, ctx: &mut Ctx) -> usize {
        let now = ctx.now();
        let dead = self.bindings.expire(now);
        let n = dead.len();
        for b in dead {
            self.log_op(WalOp::Expire(b.ip));
            self.stats.bindings_expired += 1;
            self.emit(Severity::Info, || EventKind::BindingExpired {
                ip: b.ip.to_string(),
                dpid: b.dpid,
            });
            self.retire_rules(ctx, &b, now);
        }
        if n > 0 {
            self.refresh_gauges();
        }
        n
    }

    /// Allow rules the incremental compiler believes are installed across
    /// all switches (hosts + covers) — the TCAM-occupancy metric the
    /// budget bounds per port.
    pub fn compiled_rule_count(&self) -> usize {
        self.compiler.installed_total()
    }

    /// Append one op to the WAL (no-op without a store). Append failures
    /// are counted, not fatal: enforcement must survive a full disk.
    fn log_op(&mut self, op: WalOp) {
        let _trace = if self.store.is_some() {
            self.trace_stage("wal_fsync")
        } else {
            None
        };
        if let Some(store) = &mut self.store {
            let _span = self.obs.as_ref().map(|o| o.span("wal_append"));
            if store.append(&op).is_err() {
                self.counters.incr("wal_append_errors");
                if let Some(obs) = &self.obs {
                    obs.event(
                        Severity::Error,
                        EventKind::WalError {
                            op: format!("{op:?}"),
                        },
                    );
                }
            } else if let Some(obs) = &self.obs {
                obs.gauges.set("sav_wal_bytes", store.wal_len() as f64);
            }
        }
    }

    /// Journal an event if observed (the closure defers payload
    /// formatting, so unobserved apps never allocate for it).
    fn emit(&self, severity: Severity, kind: impl FnOnce() -> EventKind) {
        if let Some(obs) = &self.obs {
            obs.event(severity, kind());
        }
    }

    /// Count and journal a punt verdict of "spoofed" (the reactive-path
    /// analogue of the proactive deny rule's drop counter).
    fn note_spoof_punt(&mut self, dpid: u64, port: u32) {
        self.stats.punts_denied += 1;
        if let Some(obs) = &self.obs {
            obs.counters.incr("sav_spoof_dropped_total");
            obs.counters
                .incr(format!("sav_spoof_dropped_total{{dpid=\"{dpid}\"}}"));
            obs.event(
                Severity::Warn,
                EventKind::SpoofDrop {
                    dpid,
                    port,
                    packets: 1,
                },
            );
        }
    }

    /// Start a trace span if observed.
    fn span(&self, name: &'static str) -> Option<Span> {
        self.obs.as_ref().map(|o| o.span(name))
    }

    /// Mint a causal trace for a binding about to be upserted on `dpid`.
    /// The trace starts at the packet-in that revealed the host (captured
    /// in [`on_packet_in`](App::on_packet_in)), and its first stage —
    /// `packet_in` — covers parse + snoop up to this decision point.
    fn begin_trace(&mut self, ip: Ipv4Addr, dpid: u64) {
        let Some(obs) = &self.obs else { return };
        if !obs.traces.enabled() {
            return;
        }
        let started = self.pktin_ns.take().unwrap_or_else(|| obs.traces.now_ns());
        if let Some(trace) = obs.traces.begin(ip.to_string(), dpid, started) {
            obs.traces
                .stage(trace, "packet_in", started, obs.traces.now_ns());
            self.active_trace = Some((trace, dpid));
            self.trace_barrier_sent = false;
        }
    }

    /// Deactivate the current trace. If no traced barrier went out (empty
    /// delta: refresh, conflict, reactive mode), the trace completes here
    /// instead of leaking open forever.
    fn finish_trace(&mut self) {
        let Some((trace, _)) = self.active_trace.take() else {
            return;
        };
        if !self.trace_barrier_sent {
            if let Some(obs) = &self.obs {
                obs.complete_trace(trace);
            }
        }
        self.trace_barrier_sent = false;
    }

    /// RAII stage on the active trace (`None` when no trace is active —
    /// the common, zero-cost case).
    fn trace_stage(&self, stage: &'static str) -> Option<TraceStageGuard> {
        let (trace, _) = self.active_trace?;
        let obs = self.obs.as_ref()?;
        Some(obs.traces.stage_guard(trace, stage))
    }

    /// Fence the active trace's flow-mods with a traced `BarrierRequest`
    /// on `dpid`: the barrier ack closes the trace. At most one per trace,
    /// and only on the switch the binding anchors to (a `Moved` binding
    /// also retires rules elsewhere — those don't define enforcement).
    fn fence_trace(&mut self, ctx: &mut Ctx, dpid: u64) -> bool {
        let Some((trace, trace_dpid)) = self.active_trace else {
            return false;
        };
        if self.trace_barrier_sent || trace_dpid != dpid {
            return false;
        }
        if let Some(obs) = &self.obs {
            obs.traces.stage_open(trace, "barrier_ack");
        }
        ctx.send_traced_barrier(dpid, trace);
        self.trace_barrier_sent = true;
        true
    }

    /// Re-publish the binding-table and connectivity gauges.
    fn refresh_gauges(&self) {
        let Some(obs) = &self.obs else { return };
        obs.gauges.set("sav_bindings", self.bindings.len() as f64);
        obs.gauges
            .set("sav_connected_switches", self.connected.len() as f64);
        let mut per_switch: std::collections::BTreeMap<u64, u64> =
            std::collections::BTreeMap::new();
        for b in self.bindings.iter() {
            *per_switch.entry(b.dpid).or_default() += 1;
        }
        for s in self.topo.switches() {
            let dpid = s.id.dpid();
            let n = per_switch.get(&dpid).copied().unwrap_or(0);
            obs.gauges
                .set(format!("sav_bindings{{dpid=\"{dpid}\"}}"), n as f64);
        }
    }

    fn is_trunk(&self, dpid: u64, port: u32) -> bool {
        self.trunks
            .get(&dpid)
            .map(|t| t.contains(&port))
            .unwrap_or(false)
    }

    fn punt_mode(&self) -> bool {
        self.config.mode == SavMode::Reactive || self.config.fcfs
    }

    /// Reconciliation needs a one-to-one binding↔rule mapping, which only
    /// the proactive non-aggregate mode has; other modes fall back to the
    /// blind re-push path.
    fn reconcile_enabled(&self) -> bool {
        self.recovered && self.config.mode == SavMode::Proactive && !self.config.aggregate
    }

    /// Every SAV rule this edge switch *should* have right now: trunk
    /// pass-throughs, the default deny, DHCP snoop rules, and one allow per
    /// binding anchored here. The reconciliation target set.
    fn desired_edge_rules(&self, dpid: u64, now: SimTime) -> Vec<FlowMod> {
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for port in self.topo.trunk_ports(sid) {
            out.push(rules::trunk_allow(port));
        }
        out.push(rules::edge_default_deny(self.punt_mode()));
        if self.config.dhcp_snooping {
            out.push(rules::dhcp_client_permit());
            for &(sdpid, sport) in &self.config.trusted_dhcp_ports {
                if sdpid == dpid {
                    out.push(rules::dhcp_server_trust(sport));
                }
            }
        }
        // Per-port wholesale compile — under a TCAM budget dense ports
        // come out as exact covers, exactly as the incremental path leaves
        // them, so reconciliation keeps (not churns) a recovered cover.
        let mut by_port: std::collections::BTreeMap<
            u32,
            std::collections::BTreeMap<Ipv4Addr, Binding>,
        > = std::collections::BTreeMap::new();
        for b in self.bindings.on_switch(dpid) {
            by_port.entry(b.port).or_default().insert(b.ip, *b);
        }
        for bs in by_port.values() {
            out.extend(compiler::compile_port(
                bs,
                self.config.match_mac,
                self.config.dynamic_idle_timeout,
                self.config.tcam_budget,
                now,
            ));
        }
        out
    }

    /// Diff the switch's installed SAV rules against the desired set:
    /// delete strays, install what's missing, leave matches untouched
    /// (their switch-side timers kept running through the outage, which is
    /// exactly the remaining lifetime the lease has).
    fn reconcile_rules(&mut self, ctx: &mut Ctx, dpid: u64, entries: &[FlowStatsEntry]) {
        let now = ctx.now();
        let desired = {
            let _span = self.span("rule_compile");
            self.desired_edge_rules(dpid, now)
        };
        let mut matched = vec![false; desired.len()];
        let (mut kept, mut deleted, mut installed) = (0u64, 0u64, 0u64);
        for e in entries {
            if e.cookie & SAV_COOKIE_MASK != SAV_COOKIE {
                continue; // not ours — never touch other apps' rules
            }
            let hit = desired
                .iter()
                .enumerate()
                .find(|(i, fm)| {
                    !matched[*i]
                        && fm.priority == e.priority
                        && fm.cookie == e.cookie
                        && fm.match_ == e.match_
                })
                .map(|(i, _)| i);
            match hit {
                Some(i) => {
                    matched[i] = true;
                    kept += 1;
                }
                None => {
                    // Stray: installed but no longer justified by any
                    // binding (e.g. released or superseded during the
                    // outage — or a rule this recovered table never knew).
                    ctx.install(
                        dpid,
                        FlowMod {
                            priority: e.priority,
                            table_id: e.table_id,
                            command: sav_openflow::messages::FlowModCommand::DeleteStrict,
                            ..FlowMod::add(e.match_.clone())
                        },
                    );
                    self.stats.rules_deleted += 1;
                    deleted += 1;
                }
            }
        }
        for (i, fm) in desired.into_iter().enumerate() {
            if !matched[i] {
                ctx.install(dpid, fm);
                self.stats.rules_installed += 1;
                installed += 1;
            }
        }
        self.counters.add("reconciled_kept", kept);
        self.counters.add("reconciled_deleted", deleted);
        self.counters.add("reconciled_installed", installed);
        if self.compiler_active() {
            // The switch now holds exactly the desired set: hand the
            // compiler a primed cache so the next binding change is an
            // incremental delta, not a blind reinstall.
            let on_switch: Vec<Binding> = self.bindings.on_switch(dpid).copied().collect();
            self.compiler.prime_switch(dpid, &on_switch);
        }
    }

    fn subnet_of(&self, ip: Ipv4Addr) -> Option<Ipv4Cidr> {
        self.topo
            .subnets()
            .into_iter()
            .map(|(c, _)| c)
            .find(|c| c.contains(ip))
    }

    /// RFC 6620-style prefix guard: FCFS may only claim addresses within a
    /// prefix that is actually assigned to the claiming switch's segment.
    /// Without this, the first spoofed packet would legitimize any foreign
    /// source.
    fn fcfs_prefix_ok(&self, dpid: u64, ip: Ipv4Addr) -> bool {
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return false;
        };
        self.topo.hosts_on(sid).any(|h| h.subnet.contains(ip))
    }

    /// The incremental compiler owns rule placement for the proactive
    /// per-host path, with or without a TCAM budget. Reactive mode installs
    /// no proactive allows and the legacy whole-subnet aggregate modes keep
    /// their coarse one-shot compilation.
    fn compiler_active(&self) -> bool {
        self.config.mode == SavMode::Proactive && !self.config.aggregate
    }

    /// Ship a compiled delta to `dpid`: count and journal each mod, then
    /// fence multi-mod batches with a barrier so the switch applies the
    /// whole transition before any later control message.
    fn ship_delta(&mut self, ctx: &mut Ctx, dpid: u64, delta: Vec<FlowMod>) {
        if delta.is_empty() {
            return;
        }
        let batched = delta.len() > 1;
        let send_stage = self.trace_stage("send");
        for fm in delta {
            if fm.command == FlowModCommand::Add {
                self.stats.rules_installed += 1;
                self.emit(Severity::Info, || EventKind::RuleInstalled {
                    dpid,
                    cookie: fm.cookie,
                    priority: fm.priority,
                });
                if let Some(obs) = &self.obs {
                    obs.counters.incr("sav_rules_installed_total");
                }
            } else {
                self.stats.rules_deleted += 1;
                self.emit(Severity::Info, || EventKind::RuleDeleted {
                    dpid,
                    cookie: fm.cookie,
                });
                if let Some(obs) = &self.obs {
                    obs.counters.incr("sav_rules_deleted_total");
                }
            }
            ctx.install(dpid, fm);
        }
        drop(send_stage);
        // A traced upsert always fences (even a single mod — the ack is
        // what proves enforcement); the untraced path keeps its
        // batched-only barrier, so disabled tracing emits byte-identical
        // message streams.
        if !self.fence_trace(ctx, dpid) && batched {
            ctx.send(dpid, Message::BarrierRequest);
        }
    }

    /// Place (or refresh) the rules `b` needs. On the compiler path this is
    /// a minimal delta — zero mods for a no-op refresh, a cover
    /// re-derivation when crossing the TCAM budget.
    fn place_rules(&mut self, ctx: &mut Ctx, b: &Binding, now: SimTime) {
        if self.compiler_active() {
            let delta = {
                let _span = self.span("rule_compile");
                let _trace = self.trace_stage("compile");
                self.compiler.bind(b, now)
            };
            self.ship_delta(ctx, b.dpid, delta);
        } else {
            self.install_allow(ctx, b, now);
        }
    }

    /// Retire the rules `b` no longer justifies. On the compiler path a
    /// release inside a covered block re-derives (splits) the cover.
    fn retire_rules(&mut self, ctx: &mut Ctx, b: &Binding, now: SimTime) {
        if self.compiler_active() {
            let delta = self.compiler.unbind(b, now);
            self.ship_delta(ctx, b.dpid, delta);
        } else {
            self.delete_allow(ctx, b);
        }
    }

    fn install_allow(&mut self, ctx: &mut Ctx, b: &Binding, now: SimTime) {
        if self.config.mode == SavMode::Reactive {
            return; // reactive mode keeps the table, not the rules
        }
        let _span = self.span("rule_compile");
        let fm = if self.config.aggregate {
            if self.config.aggregate_exact {
                // Incremental exactness: a dynamically learned binding gets
                // its own host-prefix rule; the dense static blocks were
                // compressed at switch-up.
                rules::prefix_allow(b.port, Ipv4Cidr::host(b.ip))
            } else if let Some(prefix) = self.subnet_of(b.ip) {
                rules::prefix_allow(b.port, prefix)
            } else {
                return;
            }
        } else {
            self.compile_allow(b, now)
        };
        self.emit(Severity::Info, || EventKind::RuleInstalled {
            dpid: b.dpid,
            cookie: fm.cookie,
            priority: fm.priority,
        });
        if let Some(obs) = &self.obs {
            obs.counters.incr("sav_rules_installed_total");
        }
        ctx.install(b.dpid, fm);
        self.stats.rules_installed += 1;
    }

    /// The per-binding allow rule with lifecycle timeouts (non-aggregate
    /// proactive shape) — shared by fresh installs and reconciliation.
    /// Delegates to the compiler's [`compiler::host_flow`] so the
    /// incremental and wholesale paths can never drift apart.
    fn compile_allow(&self, b: &Binding, now: SimTime) -> FlowMod {
        compiler::host_flow(
            b,
            self.config.match_mac,
            self.config.dynamic_idle_timeout,
            now,
        )
    }

    fn delete_allow(&mut self, ctx: &mut Ctx, b: &Binding) {
        if self.config.mode == SavMode::Reactive || self.config.aggregate {
            return;
        }
        self.emit(Severity::Info, || EventKind::RuleDeleted {
            dpid: b.dpid,
            cookie: rules::allow_cookie(b),
        });
        if let Some(obs) = &self.obs {
            obs.counters.incr("sav_rules_deleted_total");
        }
        ctx.install(b.dpid, rules::binding_delete(b, self.config.match_mac));
        self.stats.rules_deleted += 1;
    }

    fn apply_upsert(&mut self, ctx: &mut Ctx, b: Binding, now: SimTime) -> BindingChange {
        let change = self.bindings.upsert(b, now);
        match &change {
            BindingChange::Added => {
                self.log_op(WalOp::Upsert(to_record(&b)));
                self.stats.bindings_added += 1;
                // Journaled before the derived rule install so the event
                // order reads cause → effect.
                self.emit(Severity::Info, || EventKind::BindingLearned {
                    ip: b.ip.to_string(),
                    mac: b.mac.to_string(),
                    dpid: b.dpid,
                    port: b.port,
                    source: source_label(b.source),
                });
                self.place_rules(ctx, &b, now);
            }
            BindingChange::Refreshed => {
                // Logged even though the location is unchanged: a refresh
                // carries a new lease expiry that recovery must see.
                self.log_op(WalOp::Upsert(to_record(&b)));
                // Re-derive the port's rules: a refresh that changes no
                // match field or lease emits nothing; a renewed lease
                // re-Adds the same match, refreshing the hard timeout.
                self.place_rules(ctx, &b, now);
            }
            BindingChange::Moved(old) => {
                self.log_op(WalOp::Migrate(to_record(&b)));
                self.stats.bindings_moved += 1;
                let old = *old;
                self.emit(Severity::Info, || EventKind::BindingMigrated {
                    ip: b.ip.to_string(),
                    from_dpid: old.dpid,
                    from_port: old.port,
                    dpid: b.dpid,
                    port: b.port,
                });
                if self.compiler_active() {
                    // An in-place takeover (same port, new MAC) is a single
                    // port delta — the compiler strict-deletes the old-MAC
                    // rule and adds the new one itself. A genuine move also
                    // retires the old attachment's rules first.
                    if (old.dpid, old.port) != (b.dpid, b.port) {
                        self.retire_rules(ctx, &old, now);
                    }
                    self.place_rules(ctx, &b, now);
                } else {
                    self.delete_allow(ctx, &old);
                    self.install_allow(ctx, &b, now);
                }
            }
            BindingChange::Conflict(_) => {
                self.stats.conflicts += 1;
                self.emit(Severity::Warn, || EventKind::BindingConflict {
                    ip: b.ip.to_string(),
                    dpid: b.dpid,
                    port: b.port,
                });
            }
        }
        self.refresh_gauges();
        change
    }

    fn snoop_dhcp(
        &mut self,
        ctx: &mut Ctx,
        dpid: u64,
        in_port: u32,
        parsed: &ParsedPacket,
        pi: &PacketIn,
    ) {
        let _span = self.span("dhcp_handle");
        let Some(payload) = parsed.l4_payload(&pi.data) else {
            return;
        };
        let Ok(msg) = DhcpRepr::parse(payload) else {
            return;
        };
        let from_client = matches!(
            parsed.l4,
            Some(L4Info::Udp { dst, .. }) if dst == DHCP_SERVER_PORT
        );
        if from_client {
            // Copies of the broadcast arrive from every edge switch the
            // flood crosses; only the true attachment (non-trunk port)
            // defines the client's location.
            if !self.is_trunk(dpid, in_port) {
                self.dhcp_pending.insert(msg.client_mac, (dpid, in_port));
                if msg.message_type == DhcpMessageType::Release {
                    self.stats.dhcp_releases += 1;
                    if let Some(b) = self
                        .bindings
                        .get(msg.client_ip)
                        .copied()
                        .filter(|b| b.mac == msg.client_mac)
                    {
                        self.bindings.remove(b.ip);
                        self.log_op(WalOp::Remove(b.ip));
                        self.emit(Severity::Info, || EventKind::BindingExpired {
                            ip: b.ip.to_string(),
                            dpid: b.dpid,
                        });
                        let now = ctx.now();
                        self.retire_rules(ctx, &b, now);
                        self.refresh_gauges();
                    }
                }
            }
            return;
        }
        // Server → client. The copy rule only exists on the trusted port,
        // but be defensive anyway.
        if !self.config.trusted_dhcp_ports.contains(&(dpid, in_port)) {
            return;
        }
        if msg.message_type == DhcpMessageType::Ack {
            let Some(&(client_dpid, client_port)) = self.dhcp_pending.get(&msg.client_mac) else {
                return;
            };
            self.stats.dhcp_acks += 1;
            let lease = msg.lease_secs.unwrap_or(3600);
            let b = Binding {
                ip: msg.your_ip,
                mac: msg.client_mac,
                dpid: client_dpid,
                port: client_port,
                source: BindingSource::Dhcp,
                expires: Some(ctx.now() + SimDuration::from_secs(u64::from(lease))),
            };
            let now = ctx.now();
            self.begin_trace(b.ip, b.dpid);
            self.apply_upsert(ctx, b, now);
            self.finish_trace();
        }
    }

    fn handle_punt(
        &mut self,
        ctx: &mut Ctx,
        dpid: u64,
        in_port: u32,
        pi: &PacketIn,
        parsed: &ParsedPacket,
    ) {
        self.stats.punts += 1;
        let Some(ip) = parsed.ipv4_src() else {
            self.note_spoof_punt(dpid, in_port);
            return;
        };
        let mac = parsed.ethernet.src;
        let now = ctx.now();
        match self.bindings.get(ip).copied() {
            Some(b)
                if b.dpid == dpid
                    && b.port == in_port
                    && (!self.config.match_mac || b.mac == mac) =>
            {
                // Legitimate source that has no rule yet (reactive mode, or
                // a proactive race). Install a dynamic allow and re-inject.
                self.stats.punts_allowed += 1;
                if self.config.mode == SavMode::Reactive {
                    ctx.install(
                        dpid,
                        rules::binding_allow(
                            &b,
                            self.config.match_mac,
                            self.config.dynamic_idle_timeout,
                            0,
                        ),
                    );
                    self.stats.rules_installed += 1;
                }
                self.reinject(ctx, dpid, in_port, pi);
            }
            Some(_) => {
                self.note_spoof_punt(dpid, in_port);
            }
            None if self.config.fcfs
                && !self.is_trunk(dpid, in_port)
                && self.fcfs_prefix_ok(dpid, ip) =>
            {
                // First come, first served: the source claims the address.
                self.stats.fcfs_claims += 1;
                let b = Binding {
                    ip,
                    mac,
                    dpid,
                    port: in_port,
                    source: BindingSource::Fcfs,
                    expires: None,
                };
                if matches!(
                    self.apply_upsert(ctx, b, now),
                    BindingChange::Added | BindingChange::Moved(_) | BindingChange::Refreshed
                ) {
                    self.stats.punts_allowed += 1;
                    self.reinject(ctx, dpid, in_port, pi);
                } else {
                    self.note_spoof_punt(dpid, in_port);
                }
            }
            None => {
                self.note_spoof_punt(dpid, in_port);
            }
        }
    }

    fn reinject(&self, ctx: &mut Ctx, dpid: u64, in_port: u32, pi: &PacketIn) {
        // Re-run the pipeline; the freshly installed allow (or trunk rule)
        // now matches. Flow-mod and packet-out share the ordered control
        // channel, so no barrier is needed in this simulator.
        let msg = PacketOut {
            buffer_id: pi.buffer_id,
            in_port,
            actions: vec![Action::output(ofport::TABLE)],
            data: if pi.buffer_id == sav_openflow::consts::NO_BUFFER {
                pi.data.clone()
            } else {
                vec![]
            },
        };
        ctx.send(dpid, sav_openflow::messages::Message::PacketOut(msg));
    }

    fn handle_arp(&mut self, ctx: &mut Ctx, dpid: u64, in_port: u32, parsed: &ParsedPacket) {
        let Some(arp) = parsed.arp else {
            return;
        };
        if arp.sender_ip == Ipv4Addr::UNSPECIFIED || self.is_trunk(dpid, in_port) {
            return;
        }
        let now = ctx.now();
        match self.bindings.get(arp.sender_ip).copied() {
            Some(b) if b.mac == arp.sender_mac && (b.dpid, b.port) != (dpid, in_port) => {
                // The host moved: rebind and update rules.
                self.stats.migrations += 1;
                let mut nb = b;
                nb.dpid = dpid;
                nb.port = in_port;
                self.apply_upsert(ctx, nb, now);
            }
            Some(_) => {
                self.stats.arp_spoofs += 1;
            }
            None if self.config.fcfs && self.fcfs_prefix_ok(dpid, arp.sender_ip) => {
                self.stats.fcfs_claims += 1;
                let b = Binding {
                    ip: arp.sender_ip,
                    mac: arp.sender_mac,
                    dpid,
                    port: in_port,
                    source: BindingSource::Fcfs,
                    expires: None,
                };
                self.apply_upsert(ctx, b, now);
            }
            None => {}
        }
    }
}

impl App for SavApp {
    fn name(&self) -> &'static str {
        "sdn-sav"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        if self.connected.insert(dpid) {
            self.emit(Severity::Info, || EventKind::SwitchUp { dpid });
            if let Some(obs) = &self.obs {
                obs.gauges
                    .set("sav_connected_switches", self.connected.len() as f64);
            }
        }
        let Some(sid) = SwitchId::from_dpid(dpid) else {
            return;
        };
        let node = self.topo.switch(sid).clone();
        if let Some(ases) = &self.config.enforced_ases {
            if !ases.contains(&node.as_id) {
                return; // this network has not deployed SAV
            }
        }
        // Inbound SAV at borders.
        if self.config.inbound && node.role == SwitchRole::Border {
            for port in self.topo.border_ports(sid) {
                for prefix in self.topo.subnets_of_as(node.as_id) {
                    ctx.install(dpid, rules::isav_deny(port, prefix));
                    self.stats.rules_installed += 1;
                }
                for &prefix in &self.config.internal_v6_prefixes {
                    ctx.install(dpid, rules::isav_deny_v6(port, prefix));
                    self.stats.rules_installed += 1;
                }
            }
        }
        // Outbound SAV at edges.
        if !(self.config.outbound && node.role == SwitchRole::Edge) {
            return;
        }
        if self.reconcile_enabled() {
            // Recovered controller: seed/refresh the static plan into the
            // *table* only, then ask the switch what it actually has — the
            // rule pushes come out of the flow-stats diff, not a blind
            // re-install.
            if self.config.static_plan {
                let now = ctx.now();
                let seeds: Vec<Binding> = self
                    .topo
                    .hosts_on(sid)
                    .map(|h| Binding {
                        ip: h.ip,
                        mac: h.mac,
                        dpid,
                        port: h.port,
                        source: BindingSource::Static,
                        expires: None,
                    })
                    .collect();
                for b in seeds {
                    if matches!(self.bindings.upsert(b, now), BindingChange::Added) {
                        self.log_op(WalOp::Upsert(to_record(&b)));
                        self.stats.bindings_added += 1;
                    }
                }
            }
            self.refresh_gauges();
            self.reconciling.insert(dpid);
            ctx.send(
                dpid,
                Message::MultipartRequest(MultipartRequestBody::Flow(FlowStatsRequest {
                    table_id: 0,
                    cookie: SAV_COOKIE,
                    cookie_mask: SAV_COOKIE_MASK,
                    ..FlowStatsRequest::default()
                })),
            );
            return;
        }
        for port in self.topo.trunk_ports(sid) {
            ctx.install(dpid, rules::trunk_allow(port));
            self.stats.rules_installed += 1;
        }
        ctx.install(dpid, rules::edge_default_deny(self.punt_mode()));
        self.stats.rules_installed += 1;
        if self.config.dhcp_snooping {
            ctx.install(dpid, rules::dhcp_client_permit());
            self.stats.rules_installed += 1;
            for &(sdpid, sport) in &self.config.trusted_dhcp_ports {
                if sdpid == dpid {
                    ctx.install(dpid, rules::dhcp_server_trust(sport));
                    self.stats.rules_installed += 1;
                }
            }
        }
        if self.config.static_plan {
            let now = ctx.now();
            let seeds: Vec<Binding> = self
                .topo
                .hosts_on(sid)
                .map(|h| Binding {
                    ip: h.ip,
                    mac: h.mac,
                    dpid,
                    port: h.port,
                    source: BindingSource::Static,
                    expires: None,
                })
                .collect();
            if self.config.aggregate && self.config.aggregate_exact {
                // Group addresses per port and compile the minimal exact
                // cover of each group.
                let mut by_port: std::collections::BTreeMap<u32, Vec<Ipv4Addr>> =
                    std::collections::BTreeMap::new();
                for b in &seeds {
                    by_port.entry(b.port).or_default().push(b.ip);
                    self.bindings.upsert(*b, now);
                    self.log_op(WalOp::Upsert(to_record(b)));
                    self.stats.bindings_added += 1;
                }
                for (port, ips) in by_port {
                    for prefix in crate::aggregate::exact_cover(&ips) {
                        ctx.install(dpid, rules::prefix_allow(port, prefix));
                        self.stats.rules_installed += 1;
                    }
                }
            } else if self.config.aggregate {
                let mut seen_ports = HashSet::new();
                for b in seeds {
                    // One prefix rule per port, not per host.
                    let fresh = seen_ports.insert(b.port);
                    self.bindings.upsert(b, now);
                    self.log_op(WalOp::Upsert(to_record(&b)));
                    self.stats.bindings_added += 1;
                    if fresh {
                        self.install_allow(ctx, &b, now);
                    }
                }
            } else if self.compiler_active() {
                // Seed the table only; the rules ship as one switch-wide
                // batch below instead of one flow-mod round-trip per host.
                for b in seeds {
                    match self.bindings.upsert(b, now) {
                        BindingChange::Added => {
                            self.log_op(WalOp::Upsert(to_record(&b)));
                            self.stats.bindings_added += 1;
                            self.emit(Severity::Info, || EventKind::BindingLearned {
                                ip: b.ip.to_string(),
                                mac: b.mac.to_string(),
                                dpid: b.dpid,
                                port: b.port,
                                source: source_label(b.source),
                            });
                        }
                        BindingChange::Refreshed => {
                            self.log_op(WalOp::Upsert(to_record(&b)));
                        }
                        BindingChange::Moved(old) => {
                            self.log_op(WalOp::Migrate(to_record(&b)));
                            self.stats.bindings_moved += 1;
                            if old.dpid != dpid {
                                let d = self.compiler.unbind(&old, now);
                                self.ship_delta(ctx, old.dpid, d);
                            }
                        }
                        BindingChange::Conflict(_) => {
                            self.stats.conflicts += 1;
                        }
                    }
                }
            } else {
                // Reactive mode: standard path, which installs nothing.
                for b in seeds {
                    self.apply_upsert(ctx, b, now);
                }
            }
        }
        if self.compiler_active() {
            // The switch (re)connected with a table we must assume fresh:
            // rebuild its compiled state from scratch and push it as one
            // fenced batch — covering the static seeds above plus anything
            // learned dynamically before a reconnect.
            let now = ctx.now();
            let delta = {
                let _span = self.span("rule_compile");
                self.compiler.forget_switch(dpid);
                let on_switch: Vec<Binding> = self.bindings.on_switch(dpid).copied().collect();
                for b in &on_switch {
                    self.compiler.stage(b);
                }
                self.compiler.sync_switch(dpid, now)
            };
            self.ship_delta(ctx, dpid, delta);
        }
        self.refresh_gauges();
    }

    fn on_switch_down(&mut self, _ctx: &mut Ctx, dpid: u64) {
        if self.connected.remove(&dpid) {
            self.emit(Severity::Warn, || EventKind::SwitchDown { dpid });
            if let Some(obs) = &self.obs {
                obs.gauges
                    .set("sav_connected_switches", self.connected.len() as f64);
            }
        }
    }

    fn on_packet_in(&mut self, ctx: &mut Ctx, dpid: u64, pi: &PacketIn) -> Disposition {
        let _span = self.span("on_packet_in");
        // Stamp the arrival on the trace clock: if this packet-in turns
        // out to be the DHCP ACK that mints a binding, its causal trace
        // starts here, not at the snoop decision.
        if let Some(obs) = &self.obs {
            if obs.traces.enabled() {
                self.pktin_ns = Some(obs.traces.now_ns());
            }
        }
        let Some(in_port) = pi.in_port() else {
            return Disposition::Continue;
        };
        let Ok(parsed) = ParsedPacket::parse(&pi.data) else {
            return Disposition::Continue;
        };
        if parsed.arp.is_some() {
            self.handle_arp(ctx, dpid, in_port, &parsed);
            return Disposition::Continue; // forwarding may flood/proxy it
        }
        if self.config.dhcp_snooping && parsed.is_dhcp() {
            self.snoop_dhcp(ctx, dpid, in_port, &parsed, pi);
            return Disposition::Continue; // forwarding still floods DORA
        }
        // Validation punts are identified by the deny rule's cookie.
        if pi.cookie == SAV_COOKIE | 0xdead {
            self.handle_punt(ctx, dpid, in_port, pi, &parsed);
            return Disposition::Consumed;
        }
        Disposition::Continue
    }

    fn on_flow_removed(&mut self, ctx: &mut Ctx, dpid: u64, fr: &FlowRemoved) {
        if fr.cookie & SAV_COOKIE_MASK != SAV_COOKIE {
            return;
        }
        // Other SAV-tagged rules (the border guard's deny/count rules) also
        // carry an IP in the low 32 bits; only kind 0 — binding allow —
        // may be read as a binding expiry.
        if (fr.cookie >> 32) & 0xffff != 0 {
            return;
        }
        if fr.reason == FlowRemovedReason::Delete {
            return; // our own deletion
        }
        let ip = Ipv4Addr::from((fr.cookie & 0xffff_ffff) as u32);
        if let Some(b) = self.bindings.get(ip).copied() {
            if b.dpid != dpid {
                return;
            }
            // A rule timing out retires the binding only when the binding's
            // lifecycle is tied to that rule: FCFS bindings die on idle,
            // DHCP bindings on the lease (hard) timeout. Static bindings
            // outlive any rule (e.g. a reactive dynamic rule idling out
            // must not revoke the host's authorization).
            let retire = match (b.source, fr.reason) {
                (BindingSource::Static, _) => false,
                (BindingSource::Dhcp, FlowRemovedReason::HardTimeout) => true,
                (BindingSource::Dhcp, _) => false,
                (BindingSource::Fcfs, _) => true,
            };
            if retire {
                self.bindings.remove(ip);
                self.log_op(WalOp::Expire(ip));
                self.stats.bindings_expired += 1;
                self.emit(Severity::Info, || EventKind::BindingExpired {
                    ip: ip.to_string(),
                    dpid,
                });
                if self.compiler_active() {
                    // The switch already dropped the rule; evict it from
                    // the cache without a delete. Under a budget the
                    // shrunken set may re-derive the port's cover.
                    let now = ctx.now();
                    let delta = self.compiler.rule_expired(&b, now);
                    self.ship_delta(ctx, dpid, delta);
                }
                self.refresh_gauges();
            }
        }
    }

    fn on_stats_reply(&mut self, ctx: &mut Ctx, dpid: u64, body: &MultipartReplyBody) {
        let MultipartReplyBody::Flow(entries) = body else {
            return;
        };
        if !self.reconciling.remove(&dpid) {
            return;
        }
        self.reconcile_rules(ctx, dpid, entries);
    }

    fn on_port_status(&mut self, ctx: &mut Ctx, dpid: u64, ps: &PortStatus) {
        if ps.desc.is_up() {
            return;
        }
        let port = ps.desc.port_no;
        // FCFS bindings die with their port; DHCP/static bindings persist
        // (the host may reappear elsewhere and migrate its binding).
        let doomed: Vec<Binding> = self
            .bindings
            .iter()
            .filter(|b| b.dpid == dpid && b.port == port && b.source == BindingSource::Fcfs)
            .copied()
            .collect();
        for b in doomed {
            self.bindings.remove(b.ip);
            self.log_op(WalOp::Remove(b.ip));
            self.stats.bindings_expired += 1;
            self.emit(Severity::Info, || EventKind::BindingExpired {
                ip: b.ip.to_string(),
                dpid: b.dpid,
            });
            let now = ctx.now();
            self.retire_rules(ctx, &b, now);
        }
        self.refresh_gauges();
    }

    fn on_poll(&mut self, ctx: &mut Ctx, _dpid: u64) {
        // Cover rules carry no switch-side timers, so lease expiry under a
        // TCAM budget is controller-driven. Without a budget the switch's
        // FlowRemoved stays the sole expiry signal, exactly as before.
        if self.config.tcam_budget.is_some() {
            self.sweep_expired(ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_openflow::messages::{Message, PacketInReason};
    use sav_openflow::oxm::{OxmField, OxmMatch};
    use sav_topo::generators;

    fn mk(config: SavConfig) -> (Arc<Topology>, SavApp) {
        let topo = Arc::new(generators::linear(2, 2));
        let app = SavApp::new(topo.clone(), config);
        (topo, app)
    }

    fn flow_mods(ctx: Ctx) -> Vec<(u64, sav_openflow::messages::FlowMod)> {
        ctx.take()
            .into_iter()
            .filter_map(|(d, m)| match m {
                Message::FlowMod(fm) => Some((d, fm)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn switch_up_installs_edge_rule_set() {
        let (topo, mut app) = mk(SavConfig::default());
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let fms = flow_mods(ctx);
        // 1 trunk + 1 deny + 1 dhcp client + 2 static bindings = 5.
        assert_eq!(fms.len(), 5);
        let allows: Vec<_> = fms
            .iter()
            .filter(|(_, fm)| fm.priority == crate::PRIO_ALLOW)
            .collect();
        assert_eq!(allows.len(), 2);
        for (_, fm) in &allows {
            assert!(fm.match_.validate_prerequisites().is_ok());
        }
        assert!(fms
            .iter()
            .any(|(_, fm)| fm.priority == crate::PRIO_OSAV_DENY && fm.instructions.is_empty()));
        assert_eq!(app.bindings().len(), 2);
    }

    #[test]
    fn reactive_mode_installs_no_allows_but_punting_deny() {
        let (topo, mut app) = mk(SavConfig {
            mode: SavMode::Reactive,
            ..SavConfig::default()
        });
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let fms = flow_mods(ctx);
        assert!(fms.iter().all(|(_, fm)| fm.priority != crate::PRIO_ALLOW));
        let deny = fms
            .iter()
            .find(|(_, fm)| fm.priority == crate::PRIO_OSAV_DENY)
            .unwrap();
        assert!(!deny.1.instructions.is_empty(), "reactive deny punts");
        // Bindings still seeded for validation.
        assert_eq!(app.bindings().len(), 2);
    }

    #[test]
    fn aggregate_mode_installs_one_prefix_rule_per_port() {
        let (topo, mut app) = mk(SavConfig {
            aggregate: true,
            ..SavConfig::default()
        });
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let fms = flow_mods(ctx);
        let allows: Vec<_> = fms
            .iter()
            .filter(|(_, fm)| fm.priority == crate::PRIO_ALLOW)
            .collect();
        // linear(2,2): each host has its own port, so 2 ports → 2 prefix rules,
        // each carrying a masked ipv4_src.
        assert_eq!(allows.len(), 2);
        for (_, fm) in allows {
            assert!(fm
                .match_
                .fields()
                .iter()
                .any(|f| matches!(f, OxmField::Ipv4Src(_, Some(_)))));
        }
    }

    fn punt_packet_in(topo: &Topology, host_idx: usize, spoof_ip: Option<&str>) -> (u64, PacketIn) {
        let h = &topo.hosts()[host_idx];
        let src_ip: Ipv4Addr = spoof_ip.map(|s| s.parse().unwrap()).unwrap_or(h.ip);
        let udp = sav_net::udp::UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let ip =
            sav_net::ipv4::Ipv4Repr::udp(src_ip, "10.0.1.10".parse().unwrap(), udp.buffer_len());
        let eth = sav_net::ethernet::EthernetRepr {
            src: h.mac,
            dst: MacAddr::from_index(999),
            ethertype: sav_net::ethernet::EtherType::Ipv4,
        };
        let frame = sav_net::builder::build_ipv4_udp(&eth, &ip, &udp, b"");
        (
            h.switch.dpid(),
            PacketIn {
                buffer_id: sav_openflow::consts::NO_BUFFER,
                total_len: frame.len() as u16,
                reason: PacketInReason::Action,
                table_id: 0,
                cookie: SAV_COOKIE | 0xdead,
                match_: OxmMatch::new().with(OxmField::InPort(h.port)),
                data: frame,
            },
        )
    }

    #[test]
    fn reactive_punt_validates_and_reinjects() {
        let (topo, mut app) = mk(SavConfig {
            mode: SavMode::Reactive,
            ..SavConfig::default()
        });
        let dpid0 = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        drop(ctx.take());

        // Legitimate punt: allowed, rule installed, packet re-injected.
        let (dpid, pi) = punt_packet_in(&topo, 0, None);
        let mut ctx = Ctx::new(SimTime::from_millis(1));
        let disp = app.on_packet_in(&mut ctx, dpid, &pi);
        assert_eq!(disp, Disposition::Consumed);
        assert_eq!(app.stats.punts_allowed, 1);
        let msgs = ctx.take();
        assert!(msgs.iter().any(|(_, m)| matches!(m, Message::FlowMod(fm)
            if fm.priority == crate::PRIO_ALLOW && fm.idle_timeout == 60)));
        assert!(msgs.iter().any(|(_, m)| matches!(m, Message::PacketOut(po)
            if po.actions == vec![Action::output(ofport::TABLE)])));

        // Spoofed punt: denied, nothing sent.
        let (dpid, pi) = punt_packet_in(&topo, 0, Some("10.0.1.11"));
        let mut ctx = Ctx::new(SimTime::from_millis(2));
        app.on_packet_in(&mut ctx, dpid, &pi);
        assert_eq!(app.stats.punts_denied, 1);
        assert!(ctx.take().is_empty());
    }

    #[test]
    fn fcfs_claims_then_blocks_thief() {
        let (topo, mut app) = mk(SavConfig {
            static_plan: false,
            fcfs: true,
            ..SavConfig::default()
        });
        let dpid0 = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        drop(ctx.take());
        assert_eq!(app.bindings().len(), 0);

        // Host 0's first packet claims its address.
        let (dpid, pi) = punt_packet_in(&topo, 0, None);
        let mut ctx = Ctx::new(SimTime::from_millis(1));
        app.on_packet_in(&mut ctx, dpid, &pi);
        assert_eq!(app.stats.fcfs_claims, 1);
        assert_eq!(app.bindings().len(), 1);

        // Host 1 spoofing host 0's address from its own port: conflict.
        let h0_ip = topo.hosts()[0].ip;
        let (dpid, pi) = punt_packet_in(&topo, 1, Some(&h0_ip.to_string()));
        let mut ctx = Ctx::new(SimTime::from_millis(2));
        app.on_packet_in(&mut ctx, dpid, &pi);
        assert_eq!(app.stats.punts_denied, 1);
        assert_eq!(app.bindings().get(h0_ip).unwrap().mac, topo.hosts()[0].mac);
    }

    #[test]
    fn arp_migration_moves_binding_and_rules() {
        let (topo, mut app) = mk(SavConfig::default());
        let dpid0 = topo.switches()[0].id.dpid();
        let dpid1 = topo.switches()[1].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        app.on_switch_up(&mut ctx, dpid1);
        drop(ctx.take());

        let h0 = &topo.hosts()[0];
        let garp = sav_net::arp::ArpRepr {
            op: sav_net::arp::ArpOp::Request,
            sender_mac: h0.mac,
            sender_ip: h0.ip,
            target_mac: MacAddr::ZERO,
            target_ip: h0.ip,
        };
        let frame = sav_net::builder::build_arp(&garp);
        let pi = PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: frame.len() as u16,
            reason: PacketInReason::NoMatch,
            table_id: 1,
            cookie: 0,
            match_: OxmMatch::new().with(OxmField::InPort(42)),
            data: frame,
        };
        let mut ctx = Ctx::new(SimTime::from_millis(5));
        app.on_packet_in(&mut ctx, dpid1, &pi);
        assert_eq!(app.stats.migrations, 1);
        let b = app.bindings().get(h0.ip).unwrap();
        assert_eq!((b.dpid, b.port), (dpid1, 42));
        let fms = flow_mods(ctx);
        // One delete on the old switch, one add on the new one.
        assert!(fms.iter().any(|(d, fm)| *d == dpid0
            && fm.command == sav_openflow::messages::FlowModCommand::DeleteStrict));
        assert!(fms.iter().any(|(d, fm)| *d == dpid1
            && fm.command == sav_openflow::messages::FlowModCommand::Add
            && fm.priority == crate::PRIO_ALLOW));
    }

    #[test]
    fn arp_from_wrong_mac_is_flagged_not_migrated() {
        let (topo, mut app) = mk(SavConfig::default());
        let dpid0 = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        drop(ctx.take());
        let h0 = &topo.hosts()[0];
        let spoofed = sav_net::arp::ArpRepr {
            op: sav_net::arp::ArpOp::Request,
            sender_mac: MacAddr::from_index(666),
            sender_ip: h0.ip,
            target_mac: MacAddr::ZERO,
            target_ip: h0.ip,
        };
        let frame = sav_net::builder::build_arp(&spoofed);
        let pi = PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: frame.len() as u16,
            reason: PacketInReason::NoMatch,
            table_id: 1,
            cookie: 0,
            match_: OxmMatch::new().with(OxmField::InPort(9)),
            data: frame,
        };
        let mut ctx = Ctx::new(SimTime::from_millis(5));
        app.on_packet_in(&mut ctx, dpid0, &pi);
        assert_eq!(app.stats.arp_spoofs, 1);
        assert_eq!(app.stats.migrations, 0);
        assert_eq!(app.bindings().get(h0.ip).unwrap().mac, h0.mac);
    }

    #[test]
    fn flow_removed_expires_binding_per_lifecycle() {
        let (topo, mut app) = mk(SavConfig::default());
        let dpid0 = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        drop(ctx.take());
        // Overlay a DHCP binding on a fresh address.
        let db = Binding {
            ip: "10.0.0.99".parse().unwrap(),
            mac: MacAddr::from_index(99),
            dpid: dpid0,
            port: 42,
            source: BindingSource::Dhcp,
            expires: Some(SimTime::from_secs(100)),
        };
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.apply_upsert(&mut ctx, db, SimTime::ZERO);
        drop(ctx.take());

        let fr_of = |b: &Binding, reason| FlowRemoved {
            cookie: rules::allow_cookie(b),
            priority: crate::PRIO_ALLOW,
            reason,
            table_id: 0,
            duration_sec: 100,
            duration_nsec: 0,
            idle_timeout: 0,
            hard_timeout: 100,
            packet_count: 5,
            byte_count: 500,
            match_: OxmMatch::new(),
        };

        // DHCP binding dies on its lease (hard) timeout.
        let fr = fr_of(&db, FlowRemovedReason::HardTimeout);
        app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(100)), dpid0, &fr);
        assert!(app.bindings().get(db.ip).is_none());
        assert_eq!(app.stats.bindings_expired, 1);

        // Static bindings survive any rule removal (e.g. a reactive
        // dynamic rule idling out).
        let h0 = &topo.hosts()[0];
        let sb = *app.bindings().get(h0.ip).unwrap();
        let fr = fr_of(&sb, FlowRemovedReason::IdleTimeout);
        app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(1)), dpid0, &fr);
        assert!(
            app.bindings().get(h0.ip).is_some(),
            "static binding survives"
        );

        // Delete-reason removals (our own) never expire bindings.
        let fr = fr_of(&sb, FlowRemovedReason::Delete);
        app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(1)), dpid0, &fr);
        assert!(app.bindings().get(h0.ip).is_some());
        assert_eq!(app.stats.bindings_expired, 1);
    }

    #[test]
    fn flow_removed_ignores_non_binding_sav_cookies() {
        // Border guard rules are SAV-tagged and carry an IP in the low 32
        // bits too; their expiry must never be read as a binding expiry.
        let (topo, mut app) = mk(SavConfig::default());
        let dpid0 = topo.switches()[0].id.dpid();
        app.on_switch_up(&mut Ctx::new(SimTime::ZERO), dpid0);
        let h0 = &topo.hosts()[0];
        let fcfs = Binding {
            ip: h0.ip,
            mac: h0.mac,
            dpid: dpid0,
            port: 1,
            source: BindingSource::Fcfs,
            expires: None,
        };
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.apply_upsert(&mut ctx, fcfs, SimTime::ZERO);
        drop(ctx.take());

        // A border deny rule for the same address hard-times-out: FCFS
        // bindings die on any expiry reason, so this is the dangerous case.
        for kind in [0xb00du64, 0xb00e, 0xb001, 0xb002, 0xffff] {
            let fr = FlowRemoved {
                cookie: SAV_COOKIE | (kind << 32) | u64::from(u32::from(h0.ip)),
                priority: 34_000,
                reason: FlowRemovedReason::HardTimeout,
                table_id: 0,
                duration_sec: 10,
                duration_nsec: 0,
                idle_timeout: 0,
                hard_timeout: 10,
                packet_count: 0,
                byte_count: 0,
                match_: OxmMatch::new(),
            };
            app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(10)), dpid0, &fr);
        }
        assert!(
            app.bindings().get(h0.ip).is_some(),
            "border-kind cookie must not retire the binding"
        );
        assert_eq!(app.stats.bindings_expired, 0);

        // The genuine binding cookie (kind 0) still works.
        let b = *app.bindings().get(h0.ip).unwrap();
        let fr = FlowRemoved {
            cookie: rules::allow_cookie(&b),
            priority: crate::PRIO_ALLOW,
            reason: FlowRemovedReason::IdleTimeout,
            table_id: 0,
            duration_sec: 10,
            duration_nsec: 0,
            idle_timeout: 60,
            hard_timeout: 0,
            packet_count: 0,
            byte_count: 0,
            match_: OxmMatch::new(),
        };
        app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(10)), dpid0, &fr);
        assert!(app.bindings().get(h0.ip).is_none());
        assert_eq!(app.stats.bindings_expired, 1);
    }

    #[test]
    fn isav_rules_on_border_switches() {
        let m = generators::multi_as(2, 2);
        let topo = Arc::new(m.topo);
        let mut app = SavApp::new(topo.clone(), SavConfig::default());
        let (border, _) = m.borders[0];
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, border.dpid());
        let fms = flow_mods(ctx);
        // One internal prefix, one border port → one iSAV deny rule.
        assert_eq!(fms.len(), 1);
        assert_eq!(fms[0].1.priority, crate::PRIO_ISAV_DENY);
        assert!(fms[0].1.instructions.is_empty());
    }

    #[test]
    fn isav_rules_cover_multihomed_borders_and_all_internal_subnets() {
        // A dual-homed border in front of two internal subnets gets a deny
        // per (border port, internal prefix) pair — the internal cross-link
        // and the edge links get none.
        let mut t = Topology::new();
        let b = t.add_switch("b", SwitchRole::Border, 0);
        let e1 = t.add_switch("e1", SwitchRole::Edge, 0);
        let e2 = t.add_switch("e2", SwitchRole::Edge, 0);
        let up1 = t.add_switch("up1", SwitchRole::Core, 1);
        let up2 = t.add_switch("up2", SwitchRole::Core, 2);
        t.link_switches(b, e1); // b:1, internal
        t.link_switches(b, e2); // b:2, internal
        t.link_switches(b, up1); // b:3, cross-AS
        t.link_switches(b, up2); // b:4, cross-AS
        t.attach_host(
            "h1",
            e1,
            "10.0.1.5".parse().unwrap(),
            "10.0.1.0/24".parse().unwrap(),
        );
        t.attach_host(
            "h2",
            e2,
            "10.0.2.5".parse().unwrap(),
            "10.0.2.0/24".parse().unwrap(),
        );
        let dpid = b.dpid();
        let mut app = SavApp::new(Arc::new(t), SavConfig::default());
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let fms = flow_mods(ctx);
        assert_eq!(fms.len(), 4, "2 border ports × 2 internal subnets");
        let ports: std::collections::HashSet<u32> = fms
            .iter()
            .filter_map(|(_, fm)| fm.match_.in_port())
            .collect();
        assert_eq!(ports, [3, 4].into(), "only the cross-AS ports");
        for (_, fm) in &fms {
            assert_eq!(fm.priority, crate::PRIO_ISAV_DENY);
            assert!(fm.instructions.is_empty());
            assert!(fm.match_.validate_prerequisites().is_ok());
        }
    }

    #[test]
    fn isav_v6_rules_follow_the_configured_internal_prefixes() {
        let m = generators::multi_as(2, 2);
        let topo = Arc::new(m.topo);
        let cfg = SavConfig {
            internal_v6_prefixes: vec![
                "2001:db8:1::/48".parse().unwrap(),
                "2001:db8:2::/48".parse().unwrap(),
            ],
            ..SavConfig::default()
        };
        let mut app = SavApp::new(topo.clone(), cfg.clone());
        let (border, edge) = m.borders[0];
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, border.dpid());
        let fms = flow_mods(ctx);
        // One v4 subnet + two v6 prefixes, on the single border port.
        assert_eq!(fms.len(), 3);
        let v6: Vec<_> = fms
            .iter()
            .filter(|(_, fm)| {
                fm.match_
                    .fields()
                    .iter()
                    .any(|f| matches!(f, OxmField::EthType(0x86dd)))
            })
            .collect();
        assert_eq!(v6.len(), 2, "one isav_deny_v6 per configured prefix");
        for (_, fm) in v6 {
            assert_eq!(fm.priority, crate::PRIO_ISAV_DENY);
            assert!(fm.instructions.is_empty());
            assert_eq!(fm.cookie, SAV_COOKIE | 0x615a5);
            assert!(fm.match_.validate_prerequisites().is_ok());
        }
        // The v6 denies are a border-only concern: the AS's edge switch
        // installs its usual outbound rule set but no iSAV denies.
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, edge.dpid());
        assert!(flow_mods(ctx)
            .iter()
            .all(|(_, fm)| fm.priority != crate::PRIO_ISAV_DENY));
    }

    fn entry_of(fm: &sav_openflow::messages::FlowMod) -> FlowStatsEntry {
        FlowStatsEntry {
            table_id: fm.table_id,
            duration_sec: 1,
            duration_nsec: 0,
            priority: fm.priority,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            flags: fm.flags,
            cookie: fm.cookie,
            packet_count: 0,
            byte_count: 0,
            match_: fm.match_.clone(),
            instructions: fm.instructions.clone(),
        }
    }

    #[test]
    fn recovered_app_reconciles_instead_of_blind_push() {
        let dir = std::env::temp_dir().join(format!(
            "sav-app-reconcile-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let topo = Arc::new(generators::linear(2, 2));
        let dpid = topo.switches()[0].id.dpid();

        // First life: empty store. Switch-up sends a cookie-filtered flow
        // stats request instead of pushing rules.
        let store = BindingStore::open(&dir, sav_store::StoreConfig::default()).unwrap();
        let mut app = SavApp::with_store(topo.clone(), SavConfig::default(), store);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let msgs = ctx.take();
        assert_eq!(msgs.len(), 1, "reconcile path sends only the request");
        assert!(matches!(
            &msgs[0].1,
            Message::MultipartRequest(MultipartRequestBody::Flow(req))
                if req.cookie == SAV_COOKIE && req.cookie_mask == crate::SAV_COOKIE_MASK
        ));
        // An empty switch means everything is missing — the diff installs
        // the full edge rule set (trunk + deny + dhcp client + 2 statics).
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_stats_reply(&mut ctx, dpid, &MultipartReplyBody::Flow(vec![]));
        assert_eq!(flow_mods(ctx).len(), 5);
        assert_eq!(app.counters.get("reconciled_installed"), 5);
        assert_eq!(app.counters.get("reconciled_kept"), 0);

        // A DHCP client binds — appended to the WAL.
        let db = Binding {
            ip: "10.0.0.77".parse().unwrap(),
            mac: MacAddr::from_index(77),
            dpid,
            port: 42,
            source: BindingSource::Dhcp,
            expires: Some(SimTime::from_secs(600)),
        };
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.apply_upsert(&mut ctx, db, SimTime::ZERO);
        drop(ctx.take());
        drop(app); // crash: no orderly shutdown

        // Second life: recovery hydrates statics + the DHCP binding.
        let store = BindingStore::open(&dir, sav_store::StoreConfig::default()).unwrap();
        assert_eq!(store.recovery_report().recovered_bindings, 3);
        let mut app = SavApp::with_store(topo.clone(), SavConfig::default(), store);
        assert_eq!(app.bindings().len(), 3);
        assert!(app.bindings().get(db.ip).is_some(), "DHCP binding survived");
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        drop(ctx.take());

        // The switch reports everything desired except one rule (missing),
        // plus one allow no binding justifies (stray).
        let desired = app.desired_edge_rules(dpid, SimTime::ZERO);
        let mut entries: Vec<FlowStatsEntry> = desired.iter().map(entry_of).collect();
        let missing = entries.pop().unwrap();
        let stray = Binding {
            ip: "10.0.0.250".parse().unwrap(),
            mac: MacAddr::from_index(250),
            dpid,
            port: 9,
            source: BindingSource::Fcfs,
            expires: None,
        };
        let stray_fm = rules::binding_allow(&stray, true, 60, 0);
        entries.push(entry_of(&stray_fm));

        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_stats_reply(&mut ctx, dpid, &MultipartReplyBody::Flow(entries));
        let fms = flow_mods(ctx);
        assert_eq!(fms.len(), 2, "one delete + one install, nothing else");
        assert!(fms.iter().any(|(_, fm)| {
            fm.command == sav_openflow::messages::FlowModCommand::DeleteStrict
                && fm.match_ == stray_fm.match_
        }));
        assert!(fms.iter().any(|(_, fm)| {
            fm.command == sav_openflow::messages::FlowModCommand::Add && fm.match_ == missing.match_
        }));
        assert_eq!(
            app.counters.get("reconciled_kept"),
            (desired.len() - 1) as u64
        );
        assert_eq!(app.counters.get("reconciled_deleted"), 1);
        assert_eq!(app.counters.get("reconciled_installed"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn release_and_expiry_reach_the_wal() {
        let dir = std::env::temp_dir().join(format!(
            "sav-app-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let topo = Arc::new(generators::linear(2, 2));
        let dpid = topo.switches()[0].id.dpid();
        let store = BindingStore::open(&dir, sav_store::StoreConfig::default()).unwrap();
        let mut app = SavApp::with_store(
            topo.clone(),
            SavConfig {
                static_plan: false,
                ..SavConfig::default()
            },
            store,
        );
        let db = Binding {
            ip: "10.0.0.50".parse().unwrap(),
            mac: MacAddr::from_index(50),
            dpid,
            port: 7,
            source: BindingSource::Dhcp,
            expires: Some(SimTime::from_secs(60)),
        };
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.apply_upsert(&mut ctx, db, SimTime::ZERO);
        drop(ctx.take());
        // Lease hard-timeout retires the binding — and the WAL hears it.
        let fr = FlowRemoved {
            cookie: rules::allow_cookie(&db),
            priority: crate::PRIO_ALLOW,
            reason: FlowRemovedReason::HardTimeout,
            table_id: 0,
            duration_sec: 60,
            duration_nsec: 0,
            idle_timeout: 0,
            hard_timeout: 60,
            packet_count: 1,
            byte_count: 100,
            match_: OxmMatch::new(),
        };
        app.on_flow_removed(&mut Ctx::new(SimTime::from_secs(60)), dpid, &fr);
        drop(app);
        let store = BindingStore::open(&dir, sav_store::StoreConfig::default()).unwrap();
        assert_eq!(store.recovery_report().wal_ops_replayed, 2);
        assert!(
            store.bindings().is_empty(),
            "expired binding must not resurrect"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn port_down_kills_fcfs_bindings_only() {
        let (topo, mut app) = mk(SavConfig {
            static_plan: true,
            fcfs: true,
            ..SavConfig::default()
        });
        let dpid0 = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid0);
        drop(ctx.take());
        // Add one FCFS binding on port 77.
        let fb = Binding {
            ip: "10.0.0.200".parse().unwrap(),
            mac: MacAddr::from_index(200),
            dpid: dpid0,
            port: 77,
            source: BindingSource::Fcfs,
            expires: None,
        };
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.apply_upsert(&mut ctx, fb, SimTime::ZERO);
        drop(ctx.take());
        let before = app.bindings().len();

        let mut desc = sav_openflow::ports::PortDesc::new(77, MacAddr::from_index(1));
        desc.state = sav_openflow::ports::PortState::LINK_DOWN;
        let ps = PortStatus {
            reason: sav_openflow::messages::PortStatusReason::Modify,
            desc,
        };
        let mut ctx = Ctx::new(SimTime::from_secs(1));
        app.on_port_status(&mut ctx, dpid0, &ps);
        assert_eq!(app.bindings().len(), before - 1);
        assert!(app.bindings().get("10.0.0.200".parse().unwrap()).is_none());
        // Static bindings survived.
        assert!(app.bindings().get(topo.hosts()[0].ip).is_some());
    }

    #[test]
    fn noop_refresh_emits_zero_flow_mods() {
        let (topo, mut app) = mk(SavConfig::default());
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        drop(ctx.take());
        let installed = app.stats.rules_installed;

        // Re-upserting every seeded binding unchanged is a refresh: the
        // compiled state already matches, so nothing reaches the switch.
        let live: Vec<Binding> = app.bindings().iter().copied().collect();
        for b in live {
            let mut ctx = Ctx::new(SimTime::from_secs(1));
            let change = app.upsert_binding(&mut ctx, b);
            assert_eq!(change, BindingChange::Refreshed);
            assert!(ctx.take().is_empty(), "no-op refresh must ship nothing");
        }
        assert_eq!(app.stats.rules_installed, installed);
    }

    #[test]
    fn budgeted_port_compresses_and_splits_on_release() {
        let (topo, mut app) = mk(SavConfig {
            static_plan: false,
            tcam_budget: Some(2),
            ..SavConfig::default()
        });
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        drop(ctx.take());

        // Bind a complete /30 onto one port: 4 hosts over budget 2.
        for i in 0..4u32 {
            let b = Binding {
                ip: Ipv4Addr::from(0x0a00_0a00 + i),
                mac: MacAddr::from_index(u64::from(i) + 1),
                dpid,
                port: 1,
                source: BindingSource::Dhcp,
                expires: Some(SimTime::from_secs(600)),
            };
            let mut ctx = Ctx::new(SimTime::ZERO);
            app.upsert_binding(&mut ctx, b);
            drop(ctx.take());
        }
        // Hosts collapsed into one /30 cover rule.
        assert_eq!(app.compiled_rule_count(), 1);

        // Releasing an inside address splits the cover back apart —
        // 10.0.10.0, .1, .3 need /31 + /32.
        let mut ctx = Ctx::new(SimTime::from_secs(1));
        let got = app.release_binding(&mut ctx, "10.0.10.2".parse().unwrap());
        assert!(got.is_some());
        let mods: Vec<_> = ctx
            .take()
            .into_iter()
            .filter_map(|(_, m)| match m {
                Message::FlowMod(fm) => Some(fm),
                _ => None,
            })
            .collect();
        assert!(!mods.is_empty());
        assert_eq!(app.compiled_rule_count(), 2);
        // Every mod stays inside the SAV cookie space so restart
        // reconciliation and the stats poller keep working unchanged.
        for fm in &mods {
            assert_eq!(fm.cookie & crate::SAV_COOKIE_MASK, crate::SAV_COOKIE);
        }
    }
}
