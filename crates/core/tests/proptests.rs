//! Property-based tests for the binding table (single-holder invariant,
//! precedence lattice) and the **differential compiler suite**: the
//! incremental rule compiler must leave a switch holding exactly what a
//! from-scratch wholesale compile of the final binding table produces, for
//! any operation sequence and any TCAM budget.

use proptest::prelude::*;
use sav_controller::app::{App, Ctx};
use sav_core::binding::{Binding, BindingChange, BindingSource, BindingTable};
use sav_core::compiler::compile_port;
use sav_core::{SavApp, SavConfig};
use sav_net::addr::MacAddr;
use sav_openflow::messages::{FlowModCommand, Message, PortStatus, PortStatusReason};
use sav_openflow::ports::{PortDesc, PortState};
use sav_sim::SimTime;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Upsert(Binding),
    Remove(Ipv4Addr),
    Expire(u64),
}

fn arb_binding() -> impl Strategy<Value = Binding> {
    (
        0u32..8, // small IP space to force collisions
        0u64..6, // small MAC space
        1u64..4, // dpid
        1u32..5, // port
        0u8..3,  // source
        proptest::option::of(0u64..100),
    )
        .prop_map(|(ip, mac, dpid, port, src, exp)| Binding {
            ip: Ipv4Addr::from(0x0a000000 + ip),
            mac: MacAddr::from_index(mac),
            dpid,
            port,
            source: match src {
                0 => BindingSource::Fcfs,
                1 => BindingSource::Dhcp,
                _ => BindingSource::Static,
            },
            expires: exp.map(SimTime::from_secs),
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_binding().prop_map(Op::Upsert),
        1 => (0u32..8).prop_map(|ip| Op::Remove(Ipv4Addr::from(0x0a000000 + ip))),
        1 => (0u64..100).prop_map(Op::Expire),
    ]
}

fn rank(s: BindingSource) -> u8 {
    match s {
        BindingSource::Fcfs => 0,
        BindingSource::Dhcp => 1,
        BindingSource::Static => 2,
    }
}

proptest! {
    /// After any operation sequence: one binding per IP, and every
    /// surviving binding is traceable to an accepted upsert.
    #[test]
    fn single_holder_invariant(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut table = BindingTable::new();
        // Shadow model: ip -> binding, maintained by the documented rules.
        let mut model: HashMap<Ipv4Addr, Binding> = HashMap::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Upsert(b) => {
                    let change = table.upsert(b, now);
                    // Update the model with the same semantics.
                    match model.get(&b.ip).copied() {
                        None => {
                            model.insert(b.ip, b);
                            prop_assert_eq!(change, BindingChange::Added);
                        }
                        Some(old) => {
                            let old_expired =
                                old.expires.map(|t| now >= t).unwrap_or(false);
                            if old.mac == b.mac
                                || old_expired
                                || rank(b.source) > rank(old.source)
                            {
                                model.insert(b.ip, b);
                                prop_assert!(matches!(
                                    change,
                                    BindingChange::Moved(_) | BindingChange::Refreshed
                                ));
                            } else {
                                prop_assert!(matches!(change, BindingChange::Conflict(_)));
                            }
                        }
                    }
                }
                Op::Remove(ip) => {
                    let got = table.remove(ip);
                    let want = model.remove(&ip);
                    prop_assert_eq!(got, want);
                }
                Op::Expire(secs) => {
                    // Time is monotone within a run.
                    now = now.max(SimTime::from_secs(secs));
                    let mut dead = table.expire(now);
                    let mut model_dead: Vec<Binding> = model
                        .values()
                        .filter(|b| b.expires.map(|t| now >= t).unwrap_or(false))
                        .copied()
                        .collect();
                    for b in &model_dead {
                        model.remove(&b.ip);
                    }
                    dead.sort_by_key(|b| b.ip);
                    model_dead.sort_by_key(|b| b.ip);
                    prop_assert_eq!(dead, model_dead);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(table.len(), model.len());
            for b in table.iter() {
                prop_assert_eq!(model.get(&b.ip), Some(b));
            }
        }
    }

    /// `next_expiry` is exactly the minimum expiry of live bindings.
    #[test]
    fn next_expiry_is_min(bindings in proptest::collection::vec(arb_binding(), 0..20)) {
        let mut table = BindingTable::new();
        for mut b in bindings {
            // Unique IPs to avoid precedence interactions in this test.
            b.ip = Ipv4Addr::from(u32::from(b.ip) + table.len() as u32 * 256);
            table.upsert(b, SimTime::ZERO);
        }
        let want = table.iter().filter_map(|b| b.expires).min();
        prop_assert_eq!(table.next_expiry(), want);
    }

    /// The exact CIDR cover covers precisely the input set, with no
    /// mergeable siblings left.
    #[test]
    fn exact_cover_is_exact_and_minimal(
        raw in proptest::collection::vec(0u32..512, 0..64),
    ) {
        use sav_core::aggregate::{covered, exact_cover};
        let addrs: Vec<Ipv4Addr> = raw
            .iter()
            .map(|&i| Ipv4Addr::from(0x0a000000 + i))
            .collect();
        let mut uniq: Vec<Ipv4Addr> = addrs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let cover = exact_cover(&addrs);
        // Exactness: every input address covered, nothing else.
        prop_assert_eq!(covered(&cover), uniq.len() as u64);
        for a in &uniq {
            prop_assert!(cover.iter().any(|p| p.contains(*a)), "missing {a}");
        }
        // Disjoint + sorted.
        for w in cover.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(!w[0].contains_prefix(&w[1]) && !w[1].contains_prefix(&w[0]));
        }
        // Minimality: no sibling pair remains.
        for i in 0..cover.len() {
            for j in i + 1..cover.len() {
                prop_assert!(!cover[i].is_sibling(&cover[j]), "mergeable pair left");
            }
        }
    }

    /// on_switch filtering partitions the table.
    #[test]
    fn on_switch_partitions(bindings in proptest::collection::vec(arb_binding(), 0..30)) {
        let mut table = BindingTable::new();
        for mut b in bindings {
            b.ip = Ipv4Addr::from(u32::from(b.ip) + table.len() as u32 * 256);
            table.upsert(b, SimTime::ZERO);
        }
        let total: usize = (0..8).map(|d| table.on_switch(d).count()).sum();
        prop_assert_eq!(total, table.len());
    }
}

// ---------------------------------------------------------------------------
// Differential compiler suite
// ---------------------------------------------------------------------------

/// Operations the incremental compiler must track: binding churn from every
/// lifecycle path the app exposes, at any TCAM budget.
#[derive(Debug, Clone)]
enum CompilerOp {
    /// DHCP ack / static seed / FCFS claim / migration — all land here.
    Upsert(Binding),
    /// DHCP release.
    Release(Ipv4Addr),
    /// Advance the clock and run the controller-driven expiry sweep.
    Sweep(u64),
    /// Link down: FCFS bindings on the port die.
    PortDown(u64, u32),
}

fn arb_compiler_op() -> impl Strategy<Value = CompilerOp> {
    prop_oneof![
        6 => arb_binding().prop_map(CompilerOp::Upsert),
        2 => (0u32..8).prop_map(|ip| CompilerOp::Release(Ipv4Addr::from(0x0a000000 + ip))),
        1 => (0u64..100).prop_map(CompilerOp::Sweep),
        1 => ((1u64..4), (1u32..5)).prop_map(|(d, p)| CompilerOp::PortDown(d, p)),
    ]
}

/// A switch's table as the differential suite models it: the incremental
/// deltas folded in emission order. Timeouts are deliberately not part of
/// the key or value — equivalence is on the (match, priority, cookie) set.
type FlowTable = HashMap<(u64, u16, String), u64>;

fn fold_delta(table: &mut FlowTable, msgs: Vec<(u64, Message)>) {
    for (dpid, msg) in msgs {
        let Message::FlowMod(fm) = msg else {
            // Barrier fences between deltas carry no table state.
            continue;
        };
        let key = (dpid, fm.priority, format!("{:?}", fm.match_));
        match fm.command {
            FlowModCommand::Add => {
                table.insert(key, fm.cookie);
            }
            FlowModCommand::DeleteStrict => {
                table.remove(&key);
            }
            other => panic!("incremental deltas are Add/DeleteStrict only, got {other:?}"),
        }
    }
}

proptest! {
    /// **Differential property**: drive `SavApp` through an arbitrary
    /// binding-churn sequence at an arbitrary TCAM budget, folding every
    /// emitted flow-mod delta into a model switch table. The folded table
    /// must be semantically identical — same (match, priority, cookie)
    /// set — to a from-scratch wholesale compile of the final binding
    /// table. Also checks, in sequence, that a no-op refresh of every
    /// surviving binding ships zero flow-mods.
    #[test]
    fn incremental_compiler_matches_wholesale(
        ops in proptest::collection::vec(arb_compiler_op(), 1..80),
        budget_sel in 0usize..5,
    ) {
        let budget = [None, Some(1), Some(2), Some(4), Some(8)][budget_sel];
        let topo = Arc::new(sav_topo::generators::linear(2, 2));
        let config = SavConfig {
            static_plan: false,
            dhcp_snooping: false,
            tcam_budget: budget,
            ..SavConfig::default()
        };
        let match_mac = config.match_mac;
        let idle = config.dynamic_idle_timeout;
        let mut app = SavApp::new(topo, config);
        let mut table = FlowTable::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                CompilerOp::Upsert(b) => {
                    let mut ctx = Ctx::new(now);
                    app.upsert_binding(&mut ctx, b);
                    fold_delta(&mut table, ctx.take());
                }
                CompilerOp::Release(ip) => {
                    let mut ctx = Ctx::new(now);
                    app.release_binding(&mut ctx, ip);
                    fold_delta(&mut table, ctx.take());
                }
                CompilerOp::Sweep(secs) => {
                    now = now.max(SimTime::from_secs(secs));
                    let mut ctx = Ctx::new(now);
                    app.sweep_expired(&mut ctx);
                    fold_delta(&mut table, ctx.take());
                }
                CompilerOp::PortDown(dpid, port) => {
                    let mut desc = PortDesc::new(port, MacAddr::from_index(1));
                    desc.state = PortState::LINK_DOWN;
                    let ps = PortStatus {
                        reason: PortStatusReason::Modify,
                        desc,
                    };
                    let mut ctx = Ctx::new(now);
                    app.on_port_status(&mut ctx, dpid, &ps);
                    fold_delta(&mut table, ctx.take());
                }
            }
        }

        // Satellite check: re-upserting any live binding unchanged is a
        // refresh and must emit nothing — cached or covered alike.
        let live: Vec<Binding> = app.bindings().iter().copied().collect();
        for b in live {
            let mut ctx = Ctx::new(now);
            let change = app.upsert_binding(&mut ctx, b);
            prop_assert_eq!(change, BindingChange::Refreshed);
            let leftover = ctx.take();
            prop_assert!(
                leftover.is_empty(),
                "no-op refresh of {} emitted {} messages",
                b.ip,
                leftover.len()
            );
        }

        // Wholesale compile of the final binding table, per (dpid, port).
        let mut by_port: BTreeMap<(u64, u32), BTreeMap<Ipv4Addr, Binding>> = BTreeMap::new();
        for b in app.bindings().iter() {
            by_port.entry((b.dpid, b.port)).or_default().insert(b.ip, *b);
        }
        let mut expected = FlowTable::new();
        for ((dpid, _port), bs) in &by_port {
            for fm in compile_port(bs, match_mac, idle, budget, now) {
                expected.insert((*dpid, fm.priority, format!("{:?}", fm.match_)), fm.cookie);
            }
        }
        prop_assert_eq!(table, expected);

        // Cache bookkeeping agrees with what the model switch holds.
        prop_assert_eq!(app.compiled_rule_count(), expected.len());
    }
}
