//! Property-based tests for the binding table: the single-holder invariant
//! and the precedence lattice under arbitrary operation sequences.

use proptest::prelude::*;
use sav_core::binding::{Binding, BindingChange, BindingSource, BindingTable};
use sav_net::addr::MacAddr;
use sav_sim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

#[derive(Debug, Clone)]
enum Op {
    Upsert(Binding),
    Remove(Ipv4Addr),
    Expire(u64),
}

fn arb_binding() -> impl Strategy<Value = Binding> {
    (
        0u32..8, // small IP space to force collisions
        0u64..6, // small MAC space
        1u64..4, // dpid
        1u32..5, // port
        0u8..3,  // source
        proptest::option::of(0u64..100),
    )
        .prop_map(|(ip, mac, dpid, port, src, exp)| Binding {
            ip: Ipv4Addr::from(0x0a000000 + ip),
            mac: MacAddr::from_index(mac),
            dpid,
            port,
            source: match src {
                0 => BindingSource::Fcfs,
                1 => BindingSource::Dhcp,
                _ => BindingSource::Static,
            },
            expires: exp.map(SimTime::from_secs),
        })
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => arb_binding().prop_map(Op::Upsert),
        1 => (0u32..8).prop_map(|ip| Op::Remove(Ipv4Addr::from(0x0a000000 + ip))),
        1 => (0u64..100).prop_map(Op::Expire),
    ]
}

fn rank(s: BindingSource) -> u8 {
    match s {
        BindingSource::Fcfs => 0,
        BindingSource::Dhcp => 1,
        BindingSource::Static => 2,
    }
}

proptest! {
    /// After any operation sequence: one binding per IP, and every
    /// surviving binding is traceable to an accepted upsert.
    #[test]
    fn single_holder_invariant(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut table = BindingTable::new();
        // Shadow model: ip -> binding, maintained by the documented rules.
        let mut model: HashMap<Ipv4Addr, Binding> = HashMap::new();
        let mut now = SimTime::ZERO;
        for op in ops {
            match op {
                Op::Upsert(b) => {
                    let change = table.upsert(b, now);
                    // Update the model with the same semantics.
                    match model.get(&b.ip).copied() {
                        None => {
                            model.insert(b.ip, b);
                            prop_assert_eq!(change, BindingChange::Added);
                        }
                        Some(old) => {
                            let old_expired =
                                old.expires.map(|t| now >= t).unwrap_or(false);
                            if old.mac == b.mac
                                || old_expired
                                || rank(b.source) > rank(old.source)
                            {
                                model.insert(b.ip, b);
                                prop_assert!(matches!(
                                    change,
                                    BindingChange::Moved(_) | BindingChange::Refreshed
                                ));
                            } else {
                                prop_assert!(matches!(change, BindingChange::Conflict(_)));
                            }
                        }
                    }
                }
                Op::Remove(ip) => {
                    let got = table.remove(ip);
                    let want = model.remove(&ip);
                    prop_assert_eq!(got, want);
                }
                Op::Expire(secs) => {
                    // Time is monotone within a run.
                    now = now.max(SimTime::from_secs(secs));
                    let mut dead = table.expire(now);
                    let mut model_dead: Vec<Binding> = model
                        .values()
                        .filter(|b| b.expires.map(|t| now >= t).unwrap_or(false))
                        .copied()
                        .collect();
                    for b in &model_dead {
                        model.remove(&b.ip);
                    }
                    dead.sort_by_key(|b| b.ip);
                    model_dead.sort_by_key(|b| b.ip);
                    prop_assert_eq!(dead, model_dead);
                }
            }
            // Invariants after every step.
            prop_assert_eq!(table.len(), model.len());
            for b in table.iter() {
                prop_assert_eq!(model.get(&b.ip), Some(b));
            }
        }
    }

    /// `next_expiry` is exactly the minimum expiry of live bindings.
    #[test]
    fn next_expiry_is_min(bindings in proptest::collection::vec(arb_binding(), 0..20)) {
        let mut table = BindingTable::new();
        for mut b in bindings {
            // Unique IPs to avoid precedence interactions in this test.
            b.ip = Ipv4Addr::from(u32::from(b.ip) + table.len() as u32 * 256);
            table.upsert(b, SimTime::ZERO);
        }
        let want = table.iter().filter_map(|b| b.expires).min();
        prop_assert_eq!(table.next_expiry(), want);
    }

    /// The exact CIDR cover covers precisely the input set, with no
    /// mergeable siblings left.
    #[test]
    fn exact_cover_is_exact_and_minimal(
        raw in proptest::collection::vec(0u32..512, 0..64),
    ) {
        use sav_core::aggregate::{covered, exact_cover};
        let addrs: Vec<Ipv4Addr> = raw
            .iter()
            .map(|&i| Ipv4Addr::from(0x0a000000 + i))
            .collect();
        let mut uniq: Vec<Ipv4Addr> = addrs.clone();
        uniq.sort_unstable();
        uniq.dedup();
        let cover = exact_cover(&addrs);
        // Exactness: every input address covered, nothing else.
        prop_assert_eq!(covered(&cover), uniq.len() as u64);
        for a in &uniq {
            prop_assert!(cover.iter().any(|p| p.contains(*a)), "missing {a}");
        }
        // Disjoint + sorted.
        for w in cover.windows(2) {
            prop_assert!(w[0] < w[1]);
            prop_assert!(!w[0].contains_prefix(&w[1]) && !w[1].contains_prefix(&w[0]));
        }
        // Minimality: no sibling pair remains.
        for i in 0..cover.len() {
            for j in i + 1..cover.len() {
                prop_assert!(!cover[i].is_sibling(&cover[j]), "mergeable pair left");
            }
        }
    }

    /// on_switch filtering partitions the table.
    #[test]
    fn on_switch_partitions(bindings in proptest::collection::vec(arb_binding(), 0..30)) {
        let mut table = BindingTable::new();
        for mut b in bindings {
            b.ip = Ipv4Addr::from(u32::from(b.ip) + table.len() as u32 * 256);
            table.upsert(b, SimTime::ZERO);
        }
        let total: usize = (0..8).map(|d| table.on_switch(d).count()).sum();
        prop_assert_eq!(total, table.len());
    }
}
