//! Recycled read-scratch buffers.
//!
//! At 10k connections the read loop touches a scratch buffer on every
//! wakeup; allocating one per read would put the allocator on the hot
//! path and fragment the heap. The pool hands out fixed-size boxed
//! slices and takes them back, keeping at most `max_idle` around so a
//! burst doesn't pin memory forever.

/// A free-list of uniform read buffers. Single-threaded, like the loop
/// that owns it.
pub struct BufferPool {
    buf_size: usize,
    max_idle: usize,
    free: Vec<Box<[u8]>>,
    allocated: u64,
    reused: u64,
}

impl BufferPool {
    /// A pool of `buf_size`-byte buffers keeping at most `max_idle` idle.
    pub fn new(buf_size: usize, max_idle: usize) -> BufferPool {
        BufferPool {
            buf_size: buf_size.max(1),
            max_idle,
            free: Vec::new(),
            allocated: 0,
            reused: 0,
        }
    }

    /// Size of every buffer this pool hands out.
    pub fn buf_size(&self) -> usize {
        self.buf_size
    }

    /// Take a buffer; contents are unspecified (reads overwrite).
    pub fn get(&mut self) -> Box<[u8]> {
        match self.free.pop() {
            Some(buf) => {
                self.reused += 1;
                buf
            }
            None => {
                self.allocated += 1;
                vec![0u8; self.buf_size].into_boxed_slice()
            }
        }
    }

    /// Return a buffer to the free list. Foreign-sized buffers and
    /// overflow beyond `max_idle` are simply dropped.
    pub fn put(&mut self, buf: Box<[u8]>) {
        if buf.len() == self.buf_size && self.free.len() < self.max_idle {
            self.free.push(buf);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Total fresh allocations since construction (pool-miss count).
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// Total reuses since construction (pool-hit count).
    pub fn reused(&self) -> u64 {
        self.reused
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycles_instead_of_allocating() {
        let mut pool = BufferPool::new(4096, 8);
        let a = pool.get();
        let b = pool.get();
        assert_eq!(a.len(), 4096);
        assert_eq!(pool.allocated(), 2);
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.get();
        assert_eq!(pool.allocated(), 2, "third get must come from the pool");
        assert_eq!(pool.reused(), 1);
    }

    #[test]
    fn caps_idle_buffers_and_rejects_foreign_sizes() {
        let mut pool = BufferPool::new(64, 2);
        for _ in 0..4 {
            let buf = vec![0u8; 64].into_boxed_slice();
            pool.put(buf);
        }
        assert_eq!(pool.idle(), 2, "max_idle caps the free list");
        pool.put(vec![0u8; 128].into_boxed_slice());
        assert_eq!(pool.idle(), 2, "wrong-size buffers are dropped");
    }
}
