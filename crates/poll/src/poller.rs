//! The readiness poller: register interest, wait for events.
//!
//! Level-triggered by design — a socket that still has unread bytes (or
//! writable space) shows up again on the next `wait`, so the loop never
//! has to drain a socket to exhaustion inside one wakeup and fairness
//! caps stay simple.

use std::io::{self, Read, Write};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::time::Duration;

use crate::sys;

/// Identifies one registered fd in [`PollEvent`]s. The caller picks the
/// value — typically a [`crate::Slab`] key plus a fixed offset for the
/// listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Reserved token for the poller's internal waker; never reported.
pub const WAKER_TOKEN: Token = Token(usize::MAX);

/// Which readiness directions a registration asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or peer-closed).
    pub readable: bool,
    /// Wake when the fd accepts writes again.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only — the steady state of an idle connection.
    pub const READABLE: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITABLE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions — a connection with a non-empty outbox.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: Token,
    /// Reading (or accepting) won't block — includes EOF and errors, so a
    /// subsequent `read` observes them instead of the loop guessing.
    pub readable: bool,
    /// Writing won't block.
    pub writable: bool,
    /// The kernel flagged an error condition on the fd.
    pub error: bool,
    /// Peer hung up (full or half close).
    pub hangup: bool,
}

/// Reusable event buffer for [`Poller::wait`].
pub struct Events {
    inner: Vec<PollEvent>,
}

impl Events {
    /// A buffer that accepts up to `capacity` events per wait.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity.max(1)),
        }
    }

    /// Events delivered by the last `wait`.
    pub fn iter(&self) -> std::slice::Iter<'_, PollEvent> {
        self.inner.iter()
    }

    /// Number of events delivered by the last `wait`.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when the last `wait` timed out (or was woken) with nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a PollEvent;
    type IntoIter = std::slice::Iter<'a, PollEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Wakes a [`Poller`] blocked in `wait` from another thread.
///
/// Cloneable and cheap: one byte down an internal nonblocking socketpair.
/// A full pipe means a wake is already pending, so `WouldBlock` is a
/// success.
pub struct Waker {
    tx: UnixStream,
}

impl Waker {
    /// Interrupt the poller's current (or next) `wait`.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }

    /// Another handle to the same poller.
    pub fn try_clone(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.tx.try_clone()?,
        })
    }
}

/// The readiness selector: epoll on Linux, kqueue elsewhere.
///
/// Single-threaded by contract — only the loop thread calls `wait`,
/// register and friends; other threads interact solely through [`Waker`].
pub struct Poller {
    sel: sys::Selector,
    wake_rx: UnixStream,
    wake_tx: UnixStream,
}

impl Poller {
    /// A poller able to report up to `capacity` events per `wait`.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        let sel = sys::Selector::new(capacity)?;
        let (wake_tx, wake_rx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        sel.add(wake_rx.as_raw_fd(), WAKER_TOKEN, true, false)?;
        Ok(Poller {
            sel,
            wake_rx,
            wake_tx,
        })
    }

    /// A handle other threads can use to interrupt `wait`.
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker {
            tx: self.wake_tx.try_clone()?,
        })
    }

    /// Start watching `fd` under `token`. [`WAKER_TOKEN`] is reserved.
    pub fn register(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert!(token != WAKER_TOKEN, "WAKER_TOKEN is reserved");
        self.sel
            .add(fd.as_raw_fd(), token, interest.readable, interest.writable)
    }

    /// Change the interest set of an already-registered fd.
    pub fn modify(&self, fd: &impl AsRawFd, token: Token, interest: Interest) -> io::Result<()> {
        assert!(token != WAKER_TOKEN, "WAKER_TOKEN is reserved");
        self.sel
            .modify(fd.as_raw_fd(), token, interest.readable, interest.writable)
    }

    /// Stop watching `fd`. Dropping (closing) the fd also deregisters it
    /// in the kernel; calling this first just keeps bookkeeping explicit.
    pub fn deregister(&self, fd: &impl AsRawFd) -> io::Result<()> {
        self.sel.delete(fd.as_raw_fd())
    }

    /// Block until readiness, a timeout, or a [`Waker::wake`]; fills
    /// `events` (cleared first) and returns how many there are. A wake or
    /// timeout can legitimately deliver zero events — the caller should
    /// re-check its own timers and command queues after every return.
    pub fn wait(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.inner.clear();
        self.sel.wait(&mut events.inner, timeout)?;
        // Swallow waker events: drain the pipe so level triggering stops
        // reporting it, then hide the token from the caller.
        let mut woken = false;
        events.inner.retain(|ev| {
            if ev.token == WAKER_TOKEN {
                woken = true;
                false
            } else {
                true
            }
        });
        if woken {
            let mut sink = [0u8; 64];
            while matches!((&self.wake_rx).read(&mut sink), Ok(n) if n > 0) {}
        }
        Ok(events.inner.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn reports_readable_when_bytes_arrive() {
        let mut poller = Poller::new(8).unwrap();
        let (a, b) = pair();
        poller.register(&a, Token(7), Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        // Nothing pending: a short wait times out empty.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(1)))
            .unwrap();
        assert_eq!(n, 0);

        (&b).write_all(&[0xAB]).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.token, Token(7));
        assert!(ev.readable);
        poller.deregister(&a).unwrap();
    }

    #[test]
    fn level_triggered_until_drained_and_modify_changes_interest() {
        let mut poller = Poller::new(8).unwrap();
        let (a, b) = pair();
        (&b).write_all(&[1, 2, 3]).unwrap();
        poller.register(&a, Token(1), Interest::READABLE).unwrap();

        let mut events = Events::with_capacity(8);
        for _ in 0..2 {
            // Unread bytes keep re-reporting under level triggering.
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1);
            assert!(events.iter().next().unwrap().readable);
        }

        // Drop read interest: pending bytes no longer wake us.
        poller.modify(&a, Token(1), Interest::WRITABLE).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(5)))
            .unwrap();
        assert_eq!(n, 1, "socket should be writable instead");
        let ev = events.iter().next().unwrap();
        assert!(ev.writable && !ev.error);
    }

    #[test]
    fn hangup_surfaces_as_readable() {
        let mut poller = Poller::new(8).unwrap();
        let (a, b) = pair();
        poller.register(&a, Token(3), Interest::READABLE).unwrap();
        drop(b);
        let mut events = Events::with_capacity(8);
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert!(ev.readable, "EOF must surface through the read path");
        assert!(ev.hangup);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait() {
        let mut poller = Poller::new(8).unwrap();
        let waker = poller.waker().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert_eq!(n, 0, "waker must not leak as a user event");
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "wake should cut the 30s timeout short"
        );
        handle.join().unwrap();

        // The wake byte was drained: the next wait times out normally.
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn wake_before_wait_is_not_lost() {
        let mut poller = Poller::new(8).unwrap();
        let waker = poller.waker().unwrap();
        waker.wake();
        waker.wake(); // coalesces, never errors
        let mut events = Events::with_capacity(8);
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(30)))
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(10));
    }
}
