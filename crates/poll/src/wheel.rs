//! A hashed timer wheel for connection-scale deadlines.
//!
//! The threaded server woke a supervisor every few milliseconds to scan
//! all connections for due echoes; at 10k connections that scan *is* the
//! load. The wheel makes each deadline O(1) to arm and amortised O(1) to
//! fire: slot = deadline-tick mod slot-count, entries whose deadline lies
//! whole revolutions ahead simply stay in their slot until a sweep where
//! they are actually due.
//!
//! Time is a caller-supplied monotonic nanosecond counter (the loop keeps
//! one `Instant` epoch) — the wheel itself never reads a clock, which
//! keeps it deterministic under test.
//!
//! There is deliberately no cancel: payloads carry an identity (conn id,
//! generation) and the owner ignores firings for state that no longer
//! exists. Connection ids are never reused, so a stale echo timer firing
//! after disconnect is a cheap no-op instead of a bookkeeping structure.

use std::time::Duration;

struct Entry<T> {
    deadline_tick: u64,
    payload: T,
}

/// Single-level hashed wheel; see module docs.
pub struct TimerWheel<T> {
    /// Nanoseconds per tick.
    tick_ns: u64,
    slots: Vec<Vec<Entry<T>>>,
    /// Absolute tick index of the next slot to sweep.
    cursor: u64,
    len: usize,
}

impl<T> TimerWheel<T> {
    /// A wheel with `slots` buckets of `granularity` each. Deadlines
    /// beyond `slots × granularity` are fine — they ride extra
    /// revolutions.
    pub fn new(granularity: Duration, slots: usize) -> TimerWheel<T> {
        let tick_ns = granularity.as_nanos().clamp(1, u128::from(u64::MAX)) as u64;
        let slots = slots.max(1);
        TimerWheel {
            tick_ns,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            len: 0,
        }
    }

    /// Armed timers not yet fired.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is armed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn tick_of(&self, now_ns: u64) -> u64 {
        now_ns / self.tick_ns
    }

    /// Arm `payload` to fire `delay` after `now_ns`.
    pub fn insert(&mut self, now_ns: u64, delay: Duration, payload: T) {
        let deadline_ns = now_ns.saturating_add(delay.as_nanos().min(u128::from(u64::MAX)) as u64);
        // Never file before the cursor: an already-due deadline lands in
        // the very next sweep instead of waiting a full revolution.
        let deadline_tick = self.tick_of(deadline_ns).max(self.cursor);
        let slot = (deadline_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            deadline_tick,
            payload,
        });
        self.len += 1;
    }

    /// Collect every payload due at `now_ns` into `out` (unsorted within
    /// the batch) and advance the wheel.
    pub fn expire(&mut self, now_ns: u64, out: &mut Vec<T>) {
        let target = self.tick_of(now_ns);
        if target < self.cursor {
            return;
        }
        let nslots = self.slots.len() as u64;
        // Sweeping more than one revolution visits each slot once.
        let sweeps = (target - self.cursor + 1).min(nslots);
        for i in 0..sweeps {
            let slot = ((self.cursor + i) % nslots) as usize;
            let bucket = &mut self.slots[slot];
            let mut j = 0;
            while j < bucket.len() {
                if bucket[j].deadline_tick <= target {
                    out.push(bucket.swap_remove(j).payload);
                    self.len -= 1;
                } else {
                    j += 1;
                }
            }
        }
        self.cursor = target + 1;
    }

    /// Time until the earliest armed deadline, measured from `now_ns`
    /// (zero when overdue); `None` when nothing is armed. Used as the
    /// poll timeout.
    pub fn next_deadline(&self, now_ns: u64) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let nslots = self.slots.len() as u64;
        let mut best: Option<u64> = None;
        for k in 0..nslots {
            let slot = ((self.cursor + k) % nslots) as usize;
            for e in &self.slots[slot] {
                if best.is_none_or(|b| e.deadline_tick < b) {
                    best = Some(e.deadline_tick);
                }
            }
            // A deadline's slot distance never exceeds its tick distance,
            // so once the best candidate is nearer than the slots left
            // unscanned, no unscanned entry can beat it.
            if let Some(b) = best {
                if b.saturating_sub(self.cursor) <= k {
                    break;
                }
            }
        }
        let deadline_ns = best?.saturating_mul(self.tick_ns);
        Some(Duration::from_nanos(deadline_ns.saturating_sub(now_ns)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: u64 = 1_000_000;

    fn wheel() -> TimerWheel<u32> {
        TimerWheel::new(Duration::from_millis(1), 16)
    }

    #[test]
    fn fires_at_the_deadline_not_before() {
        let mut w = wheel();
        w.insert(0, Duration::from_millis(5), 42);
        let mut out = Vec::new();
        w.expire(4 * MS, &mut out);
        assert!(out.is_empty(), "4ms < 5ms deadline");
        w.expire(5 * MS, &mut out);
        assert_eq!(out, vec![42]);
        assert!(w.is_empty());
    }

    #[test]
    fn deadlines_beyond_one_revolution_wait_their_turn() {
        // 16 slots × 1ms: a 20ms deadline shares a slot with a 4ms one.
        let mut w = wheel();
        w.insert(0, Duration::from_millis(4), 1);
        w.insert(0, Duration::from_millis(20), 2);
        let mut out = Vec::new();
        w.expire(10 * MS, &mut out);
        assert_eq!(out, vec![1], "the far timer must ride a revolution");
        out.clear();
        w.expire(25 * MS, &mut out);
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn next_deadline_tracks_the_earliest_timer() {
        let mut w = wheel();
        assert_eq!(w.next_deadline(0), None);
        w.insert(0, Duration::from_millis(40), 9); // > one revolution away
        w.insert(0, Duration::from_millis(7), 1);
        let d = w.next_deadline(0).unwrap();
        assert_eq!(d, Duration::from_millis(7));

        let mut out = Vec::new();
        w.expire(7 * MS, &mut out);
        assert_eq!(out, vec![1]);
        // Only the revolution-away timer remains; from t=10ms it is 30ms out.
        let d = w.next_deadline(10 * MS).unwrap();
        assert_eq!(d, Duration::from_millis(30));
    }

    #[test]
    fn overdue_timers_fire_on_the_next_expire() {
        let mut w = wheel();
        let mut out = Vec::new();
        w.expire(50 * MS, &mut out); // cursor well past zero
        w.insert(50 * MS, Duration::ZERO, 7);
        assert_eq!(w.next_deadline(60 * MS), Some(Duration::ZERO));
        w.expire(60 * MS, &mut out);
        assert_eq!(out, vec![7]);
    }

    #[test]
    fn thousands_of_staggered_timers_all_fire_once() {
        let mut w = TimerWheel::new(Duration::from_millis(1), 64);
        for i in 0..5_000u32 {
            w.insert(0, Duration::from_millis(u64::from(i % 500)), i);
        }
        assert_eq!(w.len(), 5_000);
        let mut fired = Vec::new();
        let mut now = 0;
        while !w.is_empty() {
            now += 13 * MS; // uneven strides across revolutions
            w.expire(now, &mut fired);
        }
        fired.sort_unstable();
        assert_eq!(fired.len(), 5_000);
        assert!(fired.windows(2).all(|p| p[0] != p[1]), "no double fires");
    }
}
