//! Token-keyed dense storage for per-connection state.
//!
//! The poller hands back a [`crate::Token`]; the loop needs that to
//! resolve to connection state in O(1) on every wakeup. A slab (vector +
//! free list) gives direct indexing on the hot read path where a hash map
//! would hash 10k times per sweep. Keys are reused after removal, so
//! callers that need stable identities store their own id inside `T`.

enum Entry<T> {
    Vacant,
    Occupied(T),
}

/// Vec-backed slab with key reuse; see module docs.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Slab<T> {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Slab<T> {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its key (lowest free index).
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        match self.free.pop() {
            Some(key) => {
                self.entries[key] = Entry::Occupied(value);
                key
            }
            None => {
                self.entries.push(Entry::Occupied(value));
                self.entries.len() - 1
            }
        }
    }

    /// Remove and return the value under `key`, if occupied.
    pub fn remove(&mut self, key: usize) -> Option<T> {
        let slot = self.entries.get_mut(key)?;
        match std::mem::replace(slot, Entry::Vacant) {
            Entry::Occupied(v) => {
                self.free.push(key);
                self.len -= 1;
                Some(v)
            }
            Entry::Vacant => None,
        }
    }

    /// Borrow the value under `key`.
    pub fn get(&self, key: usize) -> Option<&T> {
        match self.entries.get(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutably borrow the value under `key`.
    pub fn get_mut(&mut self, key: usize) -> Option<&mut T> {
        match self.entries.get_mut(key) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// True when `key` is occupied.
    pub fn contains(&self, key: usize) -> bool {
        self.get(key).is_some()
    }

    /// Iterate occupied `(key, &value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(k, e)| match e {
                Entry::Occupied(v) => Some((k, v)),
                Entry::Vacant => None,
            })
    }

    /// Occupied keys in order, collected (callers often need to mutate
    /// while walking, which borrows the slab).
    pub fn keys(&self) -> Vec<usize> {
        self.iter().map(|(k, _)| k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_ne!(a, b);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.remove(a), None, "double remove is a no-op");
        assert!(!s.contains(a));
        assert_eq!(s.len(), 1);
        *s.get_mut(b).unwrap() = "b2";
        assert_eq!(s.get(b), Some(&"b2"));
    }

    #[test]
    fn freed_keys_are_reused_and_iter_skips_vacants() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        s.remove(a);
        let c = s.insert(3);
        assert_eq!(c, a, "freed slot is recycled");
        let pairs: Vec<_> = s.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(pairs.len(), 2);
        assert_eq!(s.keys().len(), 2);
        let big = s.insert(4);
        assert_eq!(big, 2, "no vacancy left: slab grows");
    }
}
