//! Raw readiness syscalls, one backend per platform.
//!
//! The workspace has no route to crates.io, so there is no `libc` to lean
//! on; instead the handful of symbols we need are declared `extern "C"`
//! directly — `std` already links the platform libc, so they resolve at
//! link time. Each backend exposes the same tiny `Selector` surface and
//! converts raw kernel events into the crate's [`PollEvent`] so no
//! platform struct escapes this module. This is the only `unsafe` code in
//! the crate.

use std::io;
use std::time::Duration;

use crate::poller::{PollEvent, Token};

#[cfg(target_os = "linux")]
pub(crate) use epoll::Selector;
#[cfg(all(unix, not(target_os = "linux")))]
pub(crate) use kqueue::Selector;

/// Linux: level-triggered epoll.
#[cfg(target_os = "linux")]
mod epoll {
    use super::*;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// The kernel ABI struct. On x86_64 the kernel declares it packed.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(crate) struct Selector {
        epfd: i32,
        raw: Vec<EpollEvent>,
    }

    impl Selector {
        pub(crate) fn new(capacity: usize) -> io::Result<Selector> {
            // SAFETY: plain syscall, no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector {
                epfd,
                raw: vec![EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            })
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let evp = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev as *mut EpollEvent
            };
            // SAFETY: `evp` is either null (DEL ignores it) or points to a
            // live EpollEvent for the duration of the call.
            if unsafe { epoll_ctl(self.epfd, op, fd, evp) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn mask(readable: bool, writable: bool) -> u32 {
            // RDHUP is always on so peer half-close surfaces as readable
            // (a read then observes EOF) under level triggering.
            let mut m = EPOLLRDHUP;
            if readable {
                m |= EPOLLIN;
            }
            if writable {
                m |= EPOLLOUT;
            }
            m
        }

        pub(crate) fn add(
            &self,
            fd: i32,
            token: Token,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_ADD,
                fd,
                Self::mask(readable, writable),
                token.0 as u64,
            )
        }

        pub(crate) fn modify(
            &self,
            fd: i32,
            token: Token,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.ctl(
                EPOLL_CTL_MOD,
                fd,
                Self::mask(readable, writable),
                token.0 as u64,
            )
        }

        pub(crate) fn delete(&self, fd: i32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            // Round up so a sub-millisecond timer never truncates to 0
            // (0 = "return immediately", which would busy-spin the loop).
            let ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32,
            };
            let n = loop {
                // SAFETY: `raw` stays alive across the call and
                // `maxevents` matches its length.
                let rc = unsafe {
                    epoll_wait(self.epfd, self.raw.as_mut_ptr(), self.raw.len() as i32, ms)
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
                // Interrupted by a signal: retry with the same timeout.
                // Slight over-sleep is acceptable; the wheel re-checks.
            };
            for ev in &self.raw[..n] {
                // Copy out of the (possibly packed) ABI struct by value.
                let bits = ev.events;
                let data = ev.data;
                out.push(PollEvent {
                    token: Token(data as usize),
                    readable: bits & (EPOLLIN | EPOLLHUP | EPOLLRDHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                    error: bits & EPOLLERR != 0,
                    hangup: bits & (EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: epfd is a live fd owned by this selector.
            unsafe { close(self.epfd) };
        }
    }
}

/// Other Unix (macOS, BSDs): kqueue, one filter per direction.
#[cfg(all(unix, not(target_os = "linux")))]
mod kqueue {
    use super::*;
    use std::ffi::c_void;

    const EVFILT_READ: i16 = -1;
    const EVFILT_WRITE: i16 = -2;
    const EV_ADD: u16 = 0x0001;
    const EV_DELETE: u16 = 0x0002;
    const EV_EOF: u16 = 0x8000;
    const EV_ERROR: u16 = 0x4000;

    #[repr(C)]
    struct KEvent {
        ident: usize,
        filter: i16,
        flags: u16,
        fflags: u32,
        data: isize,
        udata: *mut c_void,
    }

    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }

    extern "C" {
        fn kqueue() -> i32;
        fn kevent(
            kq: i32,
            changelist: *const KEvent,
            nchanges: i32,
            eventlist: *mut KEvent,
            nevents: i32,
            timeout: *const Timespec,
        ) -> i32;
        fn close(fd: i32) -> i32;
    }

    pub(crate) struct Selector {
        kq: i32,
        capacity: usize,
    }

    impl Selector {
        pub(crate) fn new(capacity: usize) -> io::Result<Selector> {
            // SAFETY: plain syscall.
            let kq = unsafe { kqueue() };
            if kq < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Selector {
                kq,
                capacity: capacity.max(1),
            })
        }

        fn change(&self, fd: i32, filter: i16, flags: u16, token: usize) -> io::Result<()> {
            let ch = KEvent {
                ident: fd as usize,
                filter,
                flags,
                fflags: 0,
                data: 0,
                udata: token as *mut c_void,
            };
            // SAFETY: `ch` lives across the call; no eventlist is passed.
            if unsafe { kevent(self.kq, &ch, 1, std::ptr::null_mut(), 0, std::ptr::null()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        fn apply(&self, fd: i32, token: Token, readable: bool, writable: bool) -> io::Result<()> {
            for (filter, wanted) in [(EVFILT_READ, readable), (EVFILT_WRITE, writable)] {
                if wanted {
                    self.change(fd, filter, EV_ADD, token.0)?;
                } else {
                    // Removing a filter that was never added reports
                    // ENOENT; that is the state we want anyway.
                    let _ = self.change(fd, filter, EV_DELETE, 0);
                }
            }
            Ok(())
        }

        pub(crate) fn add(
            &self,
            fd: i32,
            token: Token,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.apply(fd, token, readable, writable)
        }

        pub(crate) fn modify(
            &self,
            fd: i32,
            token: Token,
            readable: bool,
            writable: bool,
        ) -> io::Result<()> {
            self.apply(fd, token, readable, writable)
        }

        pub(crate) fn delete(&self, fd: i32) -> io::Result<()> {
            let _ = self.change(fd, EVFILT_READ, EV_DELETE, 0);
            let _ = self.change(fd, EVFILT_WRITE, EV_DELETE, 0);
            Ok(())
        }

        pub(crate) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let ts = timeout.map(|d| Timespec {
                tv_sec: d.as_secs() as i64,
                tv_nsec: i64::from(d.subsec_nanos()),
            });
            let tsp = ts
                .as_ref()
                .map_or(std::ptr::null(), |t| t as *const Timespec);
            let mut raw: Vec<KEvent> = Vec::with_capacity(self.capacity);
            let n = loop {
                // SAFETY: `raw`'s spare capacity holds `capacity` KEvents.
                let rc = unsafe {
                    kevent(
                        self.kq,
                        std::ptr::null(),
                        0,
                        raw.as_mut_ptr(),
                        self.capacity as i32,
                        tsp,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            // SAFETY: the kernel initialised the first `n` entries.
            unsafe { raw.set_len(n) };
            for ev in &raw {
                out.push(PollEvent {
                    token: Token(ev.udata as usize),
                    readable: ev.filter == EVFILT_READ,
                    writable: ev.filter == EVFILT_WRITE,
                    error: ev.flags & EV_ERROR != 0,
                    hangup: ev.flags & EV_EOF != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Selector {
        fn drop(&mut self) {
            // SAFETY: kq is a live fd owned by this selector.
            unsafe { close(self.kq) };
        }
    }
}
