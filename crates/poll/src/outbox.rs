//! Per-connection outbound queue drained with vectored writes.
//!
//! The single-writer rule: only the event-loop thread ever writes a
//! socket. Producers (the controller core, echo timers) push whole
//! frames here; the loop drains the queue with `writev` whenever the
//! socket is writable, so a burst of small OpenFlow messages (echo
//! replies, flow-mod fans) coalesces into few syscalls instead of one
//! `write` per frame.

use std::collections::VecDeque;
use std::io::{self, IoSlice, Write};

/// Max iovecs per `writev` call. Linux caps at IOV_MAX (1024); 64 keeps
/// the stack slice small while still batching generously.
const MAX_IOVECS: usize = 64;

/// What one [`Outbox::drain`] accomplished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Drained {
    /// Bytes accepted by the kernel.
    pub bytes: usize,
    /// Whole frames fully written (the batching metric).
    pub frames: usize,
    /// True when the socket signalled `WouldBlock` — re-arm write
    /// interest and come back on the next writable event.
    pub blocked: bool,
}

/// FIFO of un-written frames plus the write cursor into the head frame.
#[derive(Debug, Default)]
pub struct Outbox {
    frames: VecDeque<Vec<u8>>,
    /// Bytes of `frames[0]` already handed to the kernel.
    head_off: usize,
    /// Total unwritten bytes across all frames (backlog gauge).
    backlog: usize,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Queue a frame for transmission. Empty frames are dropped.
    pub fn push(&mut self, frame: Vec<u8>) {
        if frame.is_empty() {
            return;
        }
        self.backlog += frame.len();
        self.frames.push_back(frame);
    }

    /// Unwritten bytes currently queued.
    pub fn backlog_bytes(&self) -> usize {
        self.backlog
    }

    /// Frames currently queued (the head may be partially written).
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// True when everything queued has reached the kernel.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Write as much as the socket will take, batching up to
    /// [`MAX_IOVECS`] frames per `writev`. Returns what happened;
    /// `Err` means the connection is broken (not `WouldBlock`, which is
    /// reported via [`Drained::blocked`]).
    pub fn drain(&mut self, w: &mut impl Write) -> io::Result<Drained> {
        let mut out = Drained::default();
        while !self.frames.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(self.frames.len().min(MAX_IOVECS));
            for (i, frame) in self.frames.iter().take(MAX_IOVECS).enumerate() {
                let skip = if i == 0 { self.head_off } else { 0 };
                slices.push(IoSlice::new(&frame[skip..]));
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    out.bytes += n;
                    out.frames += self.consume(n);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    out.blocked = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Advance the cursor past `n` written bytes; returns how many whole
    /// frames that completed.
    fn consume(&mut self, mut n: usize) -> usize {
        self.backlog -= n;
        let mut completed = 0;
        while n > 0 {
            let remaining = self.frames[0].len() - self.head_off;
            if n >= remaining {
                n -= remaining;
                self.frames.pop_front();
                self.head_off = 0;
                completed += 1;
            } else {
                self.head_off += n;
                n = 0;
            }
        }
        completed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A writer that accepts at most `cap` bytes per call and then
    /// `WouldBlock`s once `budget` is exhausted — a socket with a tiny
    /// send buffer.
    struct Throttle {
        written: Vec<u8>,
        cap: usize,
        budget: usize,
        calls: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.write_vectored(&[IoSlice::new(buf)])
        }
        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            if self.budget == 0 {
                return Err(io::Error::from(io::ErrorKind::WouldBlock));
            }
            let mut take = self.cap.min(self.budget);
            let mut n = 0;
            for b in bufs {
                let k = take.min(b.len());
                self.written.extend_from_slice(&b[..k]);
                n += k;
                take -= k;
                if take == 0 {
                    break;
                }
            }
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn batches_many_frames_into_one_writev() {
        let mut ob = Outbox::new();
        for i in 0..10u8 {
            ob.push(vec![i; 3]);
        }
        assert_eq!(ob.backlog_bytes(), 30);
        let mut w = Throttle {
            written: Vec::new(),
            cap: usize::MAX,
            budget: usize::MAX,
            calls: 0,
        };
        let d = ob.drain(&mut w).unwrap();
        assert_eq!(d.frames, 10);
        assert_eq!(d.bytes, 30);
        assert!(!d.blocked);
        assert_eq!(w.calls, 1, "10 frames must coalesce into one writev");
        assert!(ob.is_empty());
        assert_eq!(ob.backlog_bytes(), 0);
    }

    #[test]
    fn partial_writes_keep_a_cursor_into_the_head_frame() {
        let mut ob = Outbox::new();
        ob.push(b"abcdef".to_vec());
        ob.push(b"ghi".to_vec());
        let mut w = Throttle {
            written: Vec::new(),
            cap: 4,
            budget: 4,
            calls: 0,
        };
        let d = ob.drain(&mut w).unwrap();
        assert_eq!(d.bytes, 4);
        assert_eq!(d.frames, 0, "head frame only partially written");
        assert!(d.blocked);
        assert_eq!(ob.backlog_bytes(), 5);
        assert_eq!(ob.frame_count(), 2);

        // Socket drains: the rest goes out from the saved cursor.
        let mut w2 = Throttle {
            written: Vec::new(),
            cap: usize::MAX,
            budget: usize::MAX,
            calls: 0,
        };
        let d = ob.drain(&mut w2).unwrap();
        assert_eq!(d.frames, 2);
        assert_eq!(w2.written, b"efghi");
        assert!(ob.is_empty());
    }

    #[test]
    fn broken_pipe_is_an_error_not_blocked() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _: &[u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::BrokenPipe))
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut ob = Outbox::new();
        ob.push(vec![1, 2, 3]);
        assert!(ob.drain(&mut Broken).is_err());
    }

    #[test]
    fn empty_frames_are_ignored() {
        let mut ob = Outbox::new();
        ob.push(Vec::new());
        assert!(ob.is_empty());
        assert_eq!(ob.backlog_bytes(), 0);
    }
}
