//! sav-poll: a dependency-free readiness event loop for the southbound.
//!
//! The controller must hold a control channel to every access and border
//! switch; thread-per-connection tops out at hundreds of sockets. This
//! crate provides the minimal machinery to run *one* thread over tens of
//! thousands of nonblocking sockets:
//!
//! * [`Poller`] — a tiny level-triggered epoll (Linux) / kqueue (other
//!   Unix) shim: register/modify/deregister interest per fd, then
//!   `wait(timeout)` for a batch of [`PollEvent`]s keyed by [`Token`].
//!   Every poller carries a [`Waker`] so other threads can interrupt a
//!   blocked `wait`.
//! * [`BufferPool`] — recycled read-scratch buffers so 10k sockets don't
//!   allocate per wakeup.
//! * [`Outbox`] — a per-connection outbound frame queue drained with
//!   vectored `writev` under a single-writer rule (only the loop thread
//!   touches the socket).
//! * [`TimerWheel`] — a hashed timer wheel for echo deadlines, liveness
//!   checks, stats ticks and accept backoff at connection scale.
//! * [`Slab`] — token-keyed dense storage for per-connection state.
//!
//! The crate is deliberately sans-policy: it never parses OpenFlow and
//! never owns reconnect logic. `sav-channel` composes these pieces around
//! the existing deframer and controller core.
//!
//! All `unsafe` lives in the private `sys` module (raw `epoll`/`kqueue`
//! FFI); everything above it is safe Rust on `std` only.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

#[cfg(not(unix))]
compile_error!("sav-poll needs a Unix readiness API (epoll or kqueue)");

pub mod buffer;
pub mod outbox;
pub mod poller;
pub mod slab;
mod sys;
pub mod wheel;

pub use buffer::BufferPool;
pub use outbox::{Drained, Outbox};
pub use poller::{Events, Interest, PollEvent, Poller, Token, Waker};
pub use slab::Slab;
pub use wheel::TimerWheel;
