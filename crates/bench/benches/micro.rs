//! Criterion micro-benchmarks: the throughput-critical primitives —
//! OpenFlow codec, packet parsing, match evaluation, flow-table lookup,
//! binding-table operations and checksums.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use sav_core::binding::{Binding, BindingSource, BindingTable};
use sav_dataplane::flow_table::FlowTable;
use sav_dataplane::matcher::{matches, MatchContext};
use sav_net::addr::MacAddr;
use sav_net::builder::build_ipv4_udp;
use sav_net::packet::ParsedPacket;
use sav_net::prelude::*;
use sav_openflow::messages::{FlowMod, Message, PacketIn, PacketInReason};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::Instruction;
use sav_sim::SimTime;
use std::net::Ipv4Addr;

fn sav_match(port: u32, ip: Ipv4Addr) -> OxmMatch {
    OxmMatch::new()
        .with(OxmField::InPort(port))
        .with(OxmField::EthType(0x0800))
        .with(OxmField::EthSrc(MacAddr::from_index(u64::from(port)), None))
        .with(OxmField::Ipv4Src(ip, None))
}

fn sample_frame() -> Vec<u8> {
    let udp = UdpRepr {
        src_port: 5000,
        dst_port: 53,
        payload_len: 64,
    };
    let ip = Ipv4Repr::udp(
        "10.0.1.5".parse().unwrap(),
        "10.0.2.9".parse().unwrap(),
        udp.buffer_len(),
    );
    let eth = EthernetRepr {
        src: MacAddr::from_index(5),
        dst: MacAddr::from_index(9),
        ethertype: EtherType::Ipv4,
    };
    build_ipv4_udp(&eth, &ip, &udp, &[0u8; 64])
}

fn bench_codec(c: &mut Criterion) {
    let fm = FlowMod {
        priority: 40_000,
        cookie: 0x5a56_0000_0a00_0105,
        idle_timeout: 30,
        instructions: vec![Instruction::GotoTable(1)],
        ..FlowMod::add(sav_match(7, "10.0.1.5".parse().unwrap()))
    };
    let fm_bytes = Message::FlowMod(fm.clone()).encode(1);
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes(fm_bytes.len() as u64));
    g.bench_function("flow_mod_encode", |b| {
        b.iter(|| black_box(Message::FlowMod(black_box(fm.clone())).encode(1)))
    });
    g.bench_function("flow_mod_decode", |b| {
        b.iter(|| Message::decode(black_box(&fm_bytes)).unwrap())
    });

    let pi = PacketIn {
        buffer_id: sav_openflow::consts::NO_BUFFER,
        total_len: 106,
        reason: PacketInReason::Action,
        table_id: 0,
        cookie: 1,
        match_: OxmMatch::new().with(OxmField::InPort(3)),
        data: sample_frame(),
    };
    let pi_bytes = Message::PacketIn(pi.clone()).encode(2);
    g.throughput(Throughput::Bytes(pi_bytes.len() as u64));
    g.bench_function("packet_in_encode", |b| {
        b.iter(|| black_box(Message::PacketIn(black_box(pi.clone())).encode(2)))
    });
    g.bench_function("packet_in_decode", |b| {
        b.iter(|| Message::decode(black_box(&pi_bytes)).unwrap())
    });
    g.finish();
}

fn bench_parse_and_match(c: &mut Criterion) {
    let frame = sample_frame();
    let mut g = c.benchmark_group("dataplane");
    g.throughput(Throughput::Bytes(frame.len() as u64));
    g.bench_function("parse_frame", |b| {
        b.iter(|| ParsedPacket::parse(black_box(&frame)).unwrap())
    });

    let parsed = ParsedPacket::parse(&frame).unwrap();
    let rule = sav_match(3, "10.0.1.5".parse().unwrap());
    g.bench_function("oxm_match_eval", |b| {
        b.iter(|| {
            matches(
                black_box(&rule),
                &MatchContext {
                    in_port: 3,
                    packet: &parsed,
                },
            )
        })
    });

    // Flow table with 1000 binding rules; the probe matches near the end of
    // the equal-priority scan — the unhappy path.
    let mut table = FlowTable::new(10_000);
    for i in 0..1000u32 {
        let ip = Ipv4Addr::from(0x0a000100u32 + i);
        let fm = FlowMod {
            priority: 40_000,
            instructions: vec![Instruction::GotoTable(1)],
            ..FlowMod::add(sav_match(i + 10, ip))
        };
        table.add(&fm, SimTime::ZERO);
    }
    // A frame matching the 999th rule's (port, mac, ip).
    let target_ip = Ipv4Addr::from(0x0a000100u32 + 999);
    let udp = UdpRepr {
        src_port: 1,
        dst_port: 2,
        payload_len: 0,
    };
    let ipr = Ipv4Repr::udp(target_ip, "10.0.2.1".parse().unwrap(), udp.buffer_len());
    let eth = EthernetRepr {
        src: MacAddr::from_index(999 + 10),
        dst: MacAddr::from_index(1),
        ethertype: EtherType::Ipv4,
    };
    let probe = build_ipv4_udp(&eth, &ipr, &udp, b"");
    let probe_parsed = ParsedPacket::parse(&probe).unwrap();
    g.bench_function("flow_table_lookup_1k_rules", |b| {
        b.iter(|| {
            table.lookup(
                &MatchContext {
                    in_port: 999 + 10,
                    packet: black_box(&probe_parsed),
                },
                SimTime::ZERO,
                probe.len(),
            )
        })
    });
    g.finish();
}

fn bench_binding_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("binding_table");
    g.bench_function("upsert_10k", |b| {
        b.iter(|| {
            let mut t = BindingTable::new();
            for i in 0..10_000u32 {
                t.upsert(
                    Binding {
                        ip: Ipv4Addr::from(0x0a000000 + i),
                        mac: MacAddr::from_index(u64::from(i)),
                        dpid: u64::from(i % 64),
                        port: i % 48,
                        source: BindingSource::Dhcp,
                        expires: None,
                    },
                    SimTime::ZERO,
                );
            }
            black_box(t.len())
        })
    });
    let mut t = BindingTable::new();
    for i in 0..10_000u32 {
        t.upsert(
            Binding {
                ip: Ipv4Addr::from(0x0a000000 + i),
                mac: MacAddr::from_index(u64::from(i)),
                dpid: u64::from(i % 64),
                port: i % 48,
                source: BindingSource::Dhcp,
                expires: None,
            },
            SimTime::ZERO,
        );
    }
    g.bench_function("lookup_in_10k", |b| {
        b.iter(|| t.get(black_box(Ipv4Addr::from(0x0a000000 + 7777))))
    });
    g.finish();
}

fn bench_checksum(c: &mut Criterion) {
    let data = vec![0xa5u8; 1500];
    let mut g = c.benchmark_group("checksum");
    g.throughput(Throughput::Bytes(1500));
    g.bench_function("internet_checksum_1500B", |b| {
        b.iter(|| sav_net::checksum::checksum(black_box(&data)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_parse_and_match,
    bench_binding_table,
    bench_checksum
);
criterion_main!(benches);
