//! **Figure 1b (companion)** — the incremental rule compiler under TCAM
//! budgets: table occupancy and recompile latency vs binding count at
//! `tcam_budget ∈ {∞, 256, 64}`.
//!
//! Each access port fronts a ¾-dense / ¼-sparse address mix (dense blocks
//! compress well, sparse tails don't), so the budgeted modes show the
//! precision/state tradeoff honestly. Two things are measured per
//! (bindings, budget) cell:
//!
//! * **seed** — incremental compilation of the whole table from empty, one
//!   `upsert_binding` at a time (the DHCP-churn worst case, not the batched
//!   switch-up path);
//! * **churn** — steady-state release+rebind cycles. The flow-mods per
//!   operation must stay O(delta): bounded by the local cover perturbation,
//!   independent of the table size.
//!
//! `FIG1B_CHECK=1` runs a shrunken sweep, asserts the O(delta) bound and
//! budget behaviour, and writes nothing — the CI regression gate.

use sav_bench::{write_json, write_result};
use sav_controller::app::Ctx;
use sav_core::{Binding, BindingSource, SavApp, SavConfig};
use sav_metrics::Table;
use sav_net::addr::MacAddr;
use sav_openflow::messages::Message;
use sav_sim::SimTime;
use sav_topo::generators;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

const PORTS: u32 = 4;
const CHURN_OPS: usize = 64;

/// `n` bindings spread over `PORTS` access ports of one edge switch: per
/// port, the first ¾ are a dense sequential block (compresses to a handful
/// of prefixes), the last ¼ sit at every other address (incompressible).
fn mk_bindings(n: usize) -> Vec<Binding> {
    (0..n)
        .map(|i| {
            let port = (i as u32 % PORTS) + 1;
            let j = (i / PORTS as usize) as u32;
            let per_port = n as u32 / PORTS;
            let dense_cut = per_port * 3 / 4;
            let offset = if j < dense_cut {
                j
            } else {
                0x8000 + 2 * (j - dense_cut)
            };
            Binding {
                ip: Ipv4Addr::from((10u32 << 24) | (port << 16) | offset),
                mac: MacAddr::from_index(i as u64 + 1),
                dpid: 1,
                port,
                source: BindingSource::Dhcp,
                expires: Some(SimTime::from_secs(3600)),
            }
        })
        .collect()
}

fn flow_mod_count(ctx: Ctx) -> usize {
    ctx.take()
        .iter()
        .filter(|(_, m)| matches!(m, Message::FlowMod(_)))
        .count()
}

struct Cell {
    rules: usize,
    seed_ms: f64,
    seed_mods: usize,
    churn_mods: usize,
    churn_us_per_op: f64,
}

fn run_cell(bindings: &[Binding], budget: Option<usize>) -> Cell {
    let topo = Arc::new(generators::linear(2, 2));
    let config = SavConfig {
        static_plan: false,
        dhcp_snooping: false,
        tcam_budget: budget,
        ..SavConfig::default()
    };
    let mut app = SavApp::new(topo, config);

    let t0 = Instant::now();
    let mut seed_mods = 0;
    for b in bindings {
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.upsert_binding(&mut ctx, *b);
        seed_mods += flow_mod_count(ctx);
    }
    let seed_ms = t0.elapsed().as_secs_f64() * 1e3;
    let rules = app.compiled_rule_count();

    // Steady state: release + rebind, striding across the table so dense
    // blocks and sparse tails both get perturbed.
    let t0 = Instant::now();
    let mut churn_mods = 0;
    for k in 0..CHURN_OPS {
        let b = bindings[(k * 17 + 3) % bindings.len()];
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.release_binding(&mut ctx, b.ip);
        churn_mods += flow_mod_count(ctx);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.upsert_binding(&mut ctx, b);
        churn_mods += flow_mod_count(ctx);
    }
    let churn_us_per_op = t0.elapsed().as_secs_f64() * 1e6 / CHURN_OPS as f64;
    Cell {
        rules,
        seed_ms,
        seed_mods,
        churn_mods,
        churn_us_per_op,
    }
}

fn budget_name(b: Option<usize>) -> String {
    b.map(|v| v.to_string()).unwrap_or_else(|| "inf".into())
}

fn main() {
    let check = std::env::var("FIG1B_CHECK").is_ok();
    // Check mode still crosses the budget-64 threshold (512/4 = 128 per
    // port) so the compression invariant is exercised, just at small n.
    let sizes: &[usize] = if check { &[64, 512] } else { &[128, 512, 2048] };
    let budgets = [None, Some(256), Some(64)];

    println!(
        "Figure 1b: incremental compiler — rules & recompile latency vs bindings \
         ({PORTS} ports, budgets inf/256/64){}\n",
        if check { " [check mode]" } else { "" }
    );
    let mut table = Table::new(
        "Figure 1b — incremental compilation under TCAM budgets",
        &[
            "bindings",
            "budget",
            "rules",
            "seed flow-mods",
            "seed ms",
            "churn flow-mods",
            "churn mods/op",
            "churn us/op",
        ],
    );
    for &n in sizes {
        for budget in budgets {
            let bindings = mk_bindings(n);
            let cell = run_cell(&bindings, budget);
            let mods_per_op = cell.churn_mods as f64 / (CHURN_OPS as f64 * 2.0);
            table.row(&[
                n.to_string(),
                budget_name(budget),
                cell.rules.to_string(),
                cell.seed_mods.to_string(),
                format!("{:.2}", cell.seed_ms),
                cell.churn_mods.to_string(),
                format!("{mods_per_op:.2}"),
                format!("{:.1}", cell.churn_us_per_op),
            ]);

            // Invariants, asserted in every mode so a local run fails fast.
            // Without a budget every binding is one rule; with one, dense
            // ports compress below the host count.
            match budget {
                None => assert_eq!(cell.rules, n, "budget off: one rule per binding"),
                Some(b) => {
                    let per_port = n / PORTS as usize;
                    if per_port > b {
                        assert!(
                            cell.rules < n,
                            "over-budget ports must compress ({} rules for {n} bindings)",
                            cell.rules
                        );
                    } else {
                        assert_eq!(cell.rules, n, "under-budget ports stay host rules");
                    }
                }
            }
            // O(delta) steady state: the per-op delta is bounded by the
            // local cover perturbation, never the table size.
            assert!(
                mods_per_op <= 12.0,
                "steady-state churn must be O(delta), got {mods_per_op:.2} mods/op at n={n}"
            );
            eprintln!("  done: {n} bindings, budget {}", budget_name(budget));
        }
    }
    print!("{}", table.to_ascii());
    if check {
        println!("\n[check mode: invariants hold, results not written]");
    } else {
        write_result("fig1b_incremental.csv", &table.to_csv());
        write_json("fig1b_incremental", &table);
        println!(
            "\nShape check: budget off ⇒ rules == bindings; budget 64 compresses dense\n\
             ports ~4x; churn mods/op flat in table size (O(delta), not O(n))."
        );
    }
}
