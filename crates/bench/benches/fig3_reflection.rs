//! **Figure 3 (reconstructed)** — the DNS reflection case study.
//!
//! Three stub ASes behind a transit core: a 4-bot botnet (AS 1) reflects
//! ANY-queries off 4 open resolvers (AS 2) onto a victim (AS 3). Victim
//! ingress is reported in 250 ms bins for three deployments: no SAV,
//! SDN-SAV at the attacker's AS only, SDN-SAV everywhere. The attack runs
//! from t=1 s to t=3 s.
//!
//! Expected shape: without SAV the victim sees an amplified flood (BAF ≈
//! the resolver amplification setting); with oSAV at the bot edge the curve
//! is identically zero — deployment at the *source* network is necessary
//! and sufficient.

use sav_baselines::Mechanism;
use sav_bench::scenario::{build_testbed, to_cmd};
use sav_bench::{write_json, write_result, ScenarioOpts};
use sav_dataplane::host::HostApp;
use sav_metrics::{Table, TimeSeries};
use sav_sim::{SimDuration, SimTime};
use sav_topo::generators::multi_as;
use sav_topo::Topology;
use sav_traffic::generators::reflection;
use std::sync::Arc;

const BOT_RATE: f64 = 50.0;
const AMPLIFICATION: usize = 10;
const BIN_S: f64 = 0.25;
const HORIZON_S: f64 = 4.0;

struct World {
    topo: Arc<Topology>,
    bots: Vec<usize>,
    resolvers: Vec<usize>,
    victim: usize,
}

fn world() -> World {
    let m = multi_as(3, 4);
    let topo = Arc::new(m.topo);
    let by_as = |a: u32| -> Vec<usize> {
        topo.hosts()
            .iter()
            .filter(|h| h.as_id == a)
            .map(|h| h.id.0)
            .collect()
    };
    World {
        bots: by_as(1),
        resolvers: by_as(2),
        victim: by_as(3)[0],
        topo,
    }
}

/// Returns the victim's ingress rate series (Mbit/s per bin) and totals.
fn run(
    w: &World,
    label: &str,
    mechanism: Mechanism,
    ases: Option<Vec<u32>>,
) -> (Vec<(f64, f64)>, u64, u64) {
    let resolvers = w.resolvers.clone();
    let mut opts = ScenarioOpts {
        sav_overrides: Box::new(move |cfg| {
            cfg.enforced_ases = ases;
        }),
        ..Default::default()
    };
    opts.host_app = Box::new(move |h| {
        if resolvers.contains(&h.id.0) {
            HostApp::DnsResolver {
                amplification: AMPLIFICATION,
            }
        } else {
            HostApp::Sink
        }
    });
    let mut tb = build_testbed(&w.topo, mechanism, opts);
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(100));

    let victim_ip = w.topo.hosts()[w.victim].ip;
    let schedule = reflection(
        &w.topo,
        &w.bots,
        &w.resolvers,
        victim_ip,
        BOT_RATE,
        SimDuration::from_secs(2),
        99,
    );
    let mut query_bytes = 0u64;
    for (t, op) in &schedule.ops {
        if let sav_traffic::TrafficOp::Udp { payload, .. } = op {
            query_bytes += (payload.len() + 42) as u64;
        }
        tb.schedule(*t + SimDuration::from_secs(1), to_cmd(op));
    }
    tb.run_until(SimTime::from_secs_f64(HORIZON_S));

    let mut series = TimeSeries::new();
    let mut victim_bytes = 0u64;
    for d in &tb.deliveries {
        if d.host == w.victim && d.delivery.src_port == 53 {
            series.record(d.time.as_secs_f64(), d.delivery.frame_len as f64);
            victim_bytes += d.delivery.frame_len as u64;
        }
    }
    let mbps: Vec<(f64, f64)> = series
        .binned_rate(BIN_S, HORIZON_S)
        .into_iter()
        .map(|(t, bps)| (t, bps * 8.0 / 1e6))
        .collect();
    eprintln!("  done: {label}");
    (mbps, victim_bytes, query_bytes)
}

fn main() {
    let w = world();
    println!(
        "Figure 3: reflection case study — {} bots x {BOT_RATE} qps, {} resolvers (x{AMPLIFICATION} amp), attack window 1s..3s\n",
        w.bots.len(),
        w.resolvers.len()
    );

    let (none, bytes_none, qbytes) = run(&w, "no SAV", Mechanism::NoSav, None);
    let (at_src, bytes_src, _) = run(&w, "SAV @ attacker AS", Mechanism::SdnSav, Some(vec![1]));
    let (everywhere, bytes_all, _) = run(&w, "SAV everywhere", Mechanism::SdnSav, None);

    let mut table = Table::new(
        "Figure 3 — victim ingress (Mbit/s, 250 ms bins)",
        &["t (s)", "no SAV", "SAV @ attacker AS", "SAV everywhere"],
    );
    for i in 0..none.len() {
        table.row(&[
            format!("{:.2}", none[i].0),
            format!("{:.3}", none[i].1),
            format!("{:.3}", at_src[i].1),
            format!("{:.3}", everywhere[i].1),
        ]);
    }
    print!("{}", table.to_ascii());
    write_result("fig3_reflection.csv", &table.to_csv());
    write_json("fig3_reflection", &table);

    println!(
        "\nvictim bytes:  no-SAV={bytes_none}  SAV@src={bytes_src}  SAV-everywhere={bytes_all}"
    );
    if bytes_none > 0 {
        println!(
            "bandwidth amplification factor (no-SAV): {:.1}x over {} query bytes",
            bytes_none as f64 / qbytes as f64,
            qbytes
        );
    }
    println!("Shape check: no-SAV curve pulses during 1s..3s; both SAV curves are flat zero.");
}
