//! **Figure 4 (reconstructed)** — controller load: proactive vs. reactive.
//!
//! Sweeps the host count; every host sends Poisson traffic to random
//! peers. Reports PACKET_INs, FLOW_MODs, packet-outs, and the mean
//! first-packet (flow-setup) latency per mechanism.
//!
//! Expected shape: reactive packet-ins grow with the number of active
//! flows (~hosts × flow arrival rate) and every new flow pays ~2 control
//! latencies of setup delay; proactive packet-ins stay near zero (ARP
//! noise only) and first packets ride pre-installed rules.

use sav_baselines::Mechanism;
use sav_bench::{run_mechanism, write_json, write_result, ScenarioOpts};
use sav_metrics::{mean, Table};
use sav_sim::SimDuration;
use sav_topo::generators as topogen;
use sav_traffic::generators as trafficgen;
use sav_traffic::tag::{self, TrafficClass};
use std::collections::HashMap;
use std::sync::Arc;

const RATE: f64 = 10.0;
const DUR_S: u64 = 2;

fn setup_latency_ms(out: &sav_bench::Outcome, schedule: &sav_traffic::Schedule) -> f64 {
    // Map flow id -> send time, then find its first delivery.
    let mut sent: HashMap<u32, sav_sim::SimTime> = HashMap::new();
    let settle = SimDuration::from_millis(100);
    for (t, op) in &schedule.ops {
        if let sav_traffic::TrafficOp::Udp { payload, .. } = op {
            if let Some((TrafficClass::Legit, id)) = tag::parse(payload) {
                sent.insert(id, *t + settle);
            }
        }
    }
    let mut lat = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for d in &out.testbed.deliveries {
        if d.delivery.dst_port != trafficgen::APP_PORT {
            continue;
        }
        if let Some((TrafficClass::Legit, id)) = tag::parse(&d.delivery.payload) {
            if seen.insert(id) {
                if let Some(&t0) = sent.get(&id) {
                    lat.push(d.time.saturating_since(t0).as_millis_f64());
                }
            }
        }
    }
    mean(&lat)
}

fn main() {
    println!("Figure 4: controller load & flow-setup latency, proactive vs reactive ({RATE} pps/host, {DUR_S}s)\n");
    let mut table = Table::new(
        "Figure 4 — controller load vs hosts",
        &[
            "hosts",
            "mode",
            "packet-ins",
            "packet-ins/s",
            "flow-mods",
            "packet-outs",
            "mean delivery latency (ms)",
            "legit delivered",
        ],
    );
    for n_edge in [2u32, 4, 8] {
        let topo = Arc::new(topogen::campus(n_edge, 4));
        let hosts = topo.hosts().len();
        let all: Vec<usize> = (0..hosts).collect();
        let schedule =
            trafficgen::legit_uniform(&topo, &all, RATE, SimDuration::from_secs(DUR_S), 64, 71);
        for (m, label) in [
            (Mechanism::SdnSav, "proactive"),
            (Mechanism::SdnSavReactive, "reactive"),
        ] {
            let out = run_mechanism(&topo, m, &schedule, ScenarioOpts::default());
            let rep = out.testbed.report();
            let lat = setup_latency_ms(&out, &schedule);
            table.row(&[
                hosts.to_string(),
                label.to_string(),
                rep.controller.packet_ins.to_string(),
                format!("{:.0}", rep.controller.packet_ins as f64 / DUR_S as f64),
                rep.controller.flow_mods.to_string(),
                rep.controller.packet_outs.to_string(),
                format!("{lat:.3}"),
                format!("{:.1}%", out.legit_delivered_frac() * 100.0),
            ]);
            eprintln!("  done: {hosts} hosts, {label}");
        }
    }
    print!("{}", table.to_ascii());
    write_result("fig4_controller_load.csv", &table.to_csv());
    write_json("fig4_controller_load", &table);

    // Part 2: the punt cost depends on traffic *sparsity* relative to the
    // dynamic-rule idle timeout. With a 2 s idle timeout, dense flows are
    // punted once per source; sparse flows (gap > idle) are punted on
    // every packet — the reactive mode's worst case.
    let mut table2 = Table::new(
        "Figure 4b — reactive punts vs traffic density (16 hosts, idle timeout 2s)",
        &[
            "rate (pps/host)",
            "packets sent",
            "packet-ins",
            "punts per packet",
            "legit delivered",
        ],
    );
    let topo = Arc::new(topogen::campus(4, 4));
    let all: Vec<usize> = (0..topo.hosts().len()).collect();
    for rate in [0.2f64, 2.0, 20.0] {
        let schedule =
            trafficgen::legit_uniform(&topo, &all, rate, SimDuration::from_secs(10), 64, 72);
        let sent = schedule.legit_count() as u64;
        let opts = ScenarioOpts {
            sav_overrides: Box::new(|cfg| cfg.dynamic_idle_timeout = 2),
            ..Default::default()
        };
        let out = run_mechanism(&topo, Mechanism::SdnSavReactive, &schedule, opts);
        let rep = out.testbed.report();
        table2.row(&[
            format!("{rate}"),
            sent.to_string(),
            rep.controller.packet_ins.to_string(),
            format!(
                "{:.2}",
                rep.controller.packet_ins as f64 / sent.max(1) as f64
            ),
            format!("{:.1}%", out.legit_delivered_frac() * 100.0),
        ]);
        eprintln!("  done: 4b rate={rate}");
    }
    print!("{}", table2.to_ascii());
    write_result("fig4b_reactive_sparsity.csv", &table2.to_csv());
    write_json("fig4b_reactive_sparsity", &table2);
    println!("\nShape check: reactive packet-ins scale with active sources (dense traffic)\nbut degrade toward one punt *per packet* when flows are sparser than the idle timeout.");
}
