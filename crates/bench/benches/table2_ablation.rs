//! **Table 2 (reconstructed)** — ablation of SDN-SAV design choices on a
//! campus with *shared access ports* (3 hosts behind each OpenFlow port,
//! the downstream-segment case where the design knobs actually differ):
//!
//! * MAC matching: with `eth_src` in the allow rule, a host cannot borrow
//!   a same-port neighbour's IP; without it, same-port theft leaks.
//! * Aggregation: per-port prefix rules cut state by ~hosts-per-port, at
//!   the price of same-prefix blindness on that port.
//! * Reactive mode: same accuracy as proactive, paid in controller load.

use sav_baselines::Mechanism;
use sav_bench::{run_mechanism, write_json, write_result, ScenarioOpts};
use sav_metrics::Table;
use sav_sim::SimDuration;
use sav_topo::generators as topogen;
use sav_topo::Topology;
use sav_traffic::generators::{self as trafficgen, SpoofStrategy};
use sav_traffic::tag::{self, TrafficClass};
use sav_traffic::{Schedule, SpoofKind, TrafficOp};
use std::sync::Arc;

/// Same-port neighbour theft: host 0 impersonates the host sharing its
/// access port, keeping its own MAC.
fn same_port_theft(topo: &Topology) -> Schedule {
    let a = &topo.hosts()[0];
    let victim = topo
        .hosts()
        .iter()
        .find(|h| h.switch == a.switch && h.port == a.port && h.id != a.id)
        .expect("shared port");
    let mut sched = Schedule::new();
    for i in 0..60u32 {
        sched.ops.push((
            sav_sim::SimTime::from_millis(u64::from(i) * 20),
            TrafficOp::Udp {
                host: 0,
                dst_ip: topo.hosts().last().unwrap().ip,
                src_port: 9000,
                dst_port: 7,
                payload: tag::payload(TrafficClass::Spoofed, i, 64),
                spoof: SpoofKind::Ip(victim.ip),
            },
        ));
    }
    sched
}

fn main() {
    let topo = Arc::new(topogen::campus_shared(4, 3, 3)); // 36 hosts, 12 access ports
    let all: Vec<usize> = (0..topo.hosts().len()).collect();
    println!(
        "Table 2: SDN-SAV ablation — campus, {} hosts on {} shared access ports\n",
        topo.hosts().len(),
        4 * 3
    );

    let legit = trafficgen::legit_uniform(&topo, &all, 4.0, SimDuration::from_secs(2), 64, 51);
    let subnet_attack = trafficgen::spoof_attack(
        &topo,
        &[0, 10],
        SpoofStrategy::SameSubnet,
        25.0,
        SimDuration::from_secs(2),
        None,
        52,
    );
    let theft = same_port_theft(&topo);

    let mut table = Table::new(
        "Table 2 — SDN-SAV design ablation (shared access ports)",
        &[
            "variant",
            "same-port theft blocked",
            "same-subnet blocked",
            "legit delivered",
            "table-0 rules (total)",
            "packet-ins",
            "flow-mods",
        ],
    );

    for m in [
        Mechanism::SdnSav,
        Mechanism::SdnSavNoMac,
        Mechanism::SdnSavAggregate,
        Mechanism::SdnSavAggregateExact,
        Mechanism::SdnSavReactive,
    ] {
        // Run 1: same-port theft.
        let out_theft = run_mechanism(&topo, m, &theft, ScenarioOpts::default());
        // Run 2: legit + subnet spoofing.
        let schedule = legit.clone().merge(subnet_attack.clone());
        let out_mix = run_mechanism(&topo, m, &schedule, ScenarioOpts::default());
        let rep = out_mix.testbed.report();
        table.row(&[
            m.name().to_string(),
            format!("{:.1}%", out_theft.spoof_blocked_frac() * 100.0),
            format!("{:.1}%", out_mix.spoof_blocked_frac() * 100.0),
            format!("{:.1}%", out_mix.legit_delivered_frac() * 100.0),
            out_mix.total_table0_rules().to_string(),
            rep.controller.packet_ins.to_string(),
            rep.controller.flow_mods.to_string(),
        ]);
        eprintln!("  done: {m}");
    }
    print!("{}", table.to_ascii());
    write_result("table2_ablation.csv", &table.to_csv());
    write_json("table2_ablation", &table);
}
