//! **Figure 5 (reconstructed)** — false positives under DHCP churn.
//!
//! Clients acquire addresses via the data-plane DHCP server and send
//! steady probe traffic to a statically-bound server host. The lease
//! length is swept against a fixed mean re-acquisition (hold) interval.
//! A datagram sent while the client's binding has lapsed (lease expired
//! before the client re-DHCPed) is dropped by validation — a *false
//! positive* in the sense that the sender is the address's legitimate
//! (former) holder.
//!
//! Expected shape: when lease >> hold, clients re-bind long before expiry
//! and delivery stays ~100 %; when lease < hold, every cycle opens a
//! window where traffic is dropped, and delivery falls roughly like
//! lease/hold.

use sav_baselines::Mechanism;
use sav_bench::scenario::{build_testbed, to_cmd};
use sav_bench::{write_json, write_result, ScenarioOpts};
use sav_dataplane::host::{DhcpServerState, HostApp, SpoofMode};
use sav_metrics::Table;
use sav_net::addr::Ipv4Cidr;
use sav_sim::{SimDuration, SimTime};
use sav_topo::generators as topogen;
use sav_traffic::generators::dhcp_churn;
use std::net::Ipv4Addr;
use std::sync::Arc;

const HOLD_S: u64 = 20;
const RUN_S: u64 = 120;
const PROBE_PPS: u64 = 2;

fn run(lease_secs: u32) -> (f64, u64, u64) {
    let topo = Arc::new(topogen::linear(1, 9));
    let pool: Ipv4Cidr = "10.0.0.0/24".parse().unwrap();
    let server_node = &topo.hosts()[0];
    let trusted = (server_node.switch.dpid(), server_node.port);
    let mut opts = ScenarioOpts {
        seed_arp: false,
        sav_overrides: Box::new(move |cfg| {
            cfg.static_plan = false;
            cfg.trusted_dhcp_ports = vec![trusted];
        }),
        ..Default::default()
    };
    opts.host_app = Box::new(move |h| {
        if h.id.0 == 0 {
            HostApp::DhcpServer(DhcpServerState::new(pool, 100, lease_secs))
        } else {
            HostApp::Sink
        }
    });
    let mut tb = build_testbed(&topo, Mechanism::SdnSav, opts);
    // The server itself needs a binding: give it a static one by seeding
    // its ARP + a static binding via config is absent (static_plan=false),
    // so the server is reachable for *inbound* traffic but cannot *send*
    // IPv4 itself — fine, probes are one-way client → server.
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(100));

    let clients: Vec<usize> = (1..topo.hosts().len()).collect();
    let churn = dhcp_churn(
        &clients,
        SimDuration::from_secs(HOLD_S),
        SimDuration::from_secs(RUN_S),
        lease_secs as u64,
    );
    for (t, op) in &churn.ops {
        tb.schedule(*t + SimDuration::from_millis(100), to_cmd(op));
    }
    // Steady probes to the server, sent regardless of binding state.
    let server_ip: Ipv4Addr = server_node.ip;
    let mut probes = 0u64;
    for &c in &clients {
        for k in 0..(RUN_S * PROBE_PPS) {
            let t = SimTime::from_millis(1500 + k * 1000 / PROBE_PPS + c as u64 * 13);
            probes += 1;
            tb.schedule(
                t,
                sav_controller::testbed::TestbedCmd::SendUdp {
                    host: c,
                    dst_ip: server_ip,
                    src_port: 4000 + c as u16,
                    dst_port: 7,
                    payload: format!("probe-{c}-{k}").into_bytes(),
                    spoof: SpoofMode::None,
                },
            );
        }
    }
    tb.run_until(SimTime::from_secs(RUN_S + 4));

    let delivered = tb
        .deliveries
        .iter()
        .filter(|d| d.host == 0 && d.delivery.dst_port == 7)
        .count() as u64;
    let acks = tb
        .controller_mut()
        .with_app::<sav_core::SavApp, _>(|a| a.stats.dhcp_acks)
        .unwrap();
    (delivered as f64 / probes as f64, delivered, acks)
}

fn main() {
    println!(
        "Figure 5: legit delivery vs DHCP lease length (mean re-acquisition interval {HOLD_S}s, {RUN_S}s run)\n"
    );
    let mut table = Table::new(
        "Figure 5 — false positives under churn",
        &[
            "lease (s)",
            "lease/hold",
            "legit delivered",
            "probes delivered",
            "DHCP acks",
        ],
    );
    for lease in [5u32, 10, 20, 40, 80] {
        let (frac, delivered, acks) = run(lease);
        table.row(&[
            lease.to_string(),
            format!("{:.2}", lease as f64 / HOLD_S as f64),
            format!("{:.1}%", frac * 100.0),
            delivered.to_string(),
            acks.to_string(),
        ]);
        eprintln!("  done: lease={lease}s");
    }
    print!("{}", table.to_ascii());
    write_result("fig5_churn_fp.csv", &table.to_csv());
    write_json("fig5_churn_fp", &table);
    println!(
        "\nShape check: delivery rises monotonically with lease/hold and saturates near 100%."
    );
}
