//! **Table 3** — anti-amplification at the reflector's network.
//!
//! The reflection attack of Figure 3, but deployment is restricted to the
//! *reflectors'* AS (AS 2) — the one network that can act unilaterally but
//! whose classic SAV rules are useless here: the spoofed queries are
//! neither sourced from inside it (oSAV) nor claim its internal space
//! (iSAV). Three deployments:
//!
//! * **oSAV only** — outbound validation at AS 2's edges;
//! * **iSAV only** — inbound validation at AS 2's border;
//! * **SAV + border guard** — both, plus the stateful amplification guard
//!   enforcing the 3x response/request budget at the border.
//!
//! Per row: bytes landing on the victim, the bandwidth amplification
//! factor over the attacker's query bytes, and collateral damage to a
//! legitimate external client holding a balanced exchange with an AS 2
//! echo service throughout (dropped round-trips).

use sav_baselines::Mechanism;
use sav_bench::scenario::{build_testbed, to_cmd};
use sav_bench::{write_json, write_result, ScenarioOpts};
use sav_controller::testbed::TestbedCmd;
use sav_core::BorderConfig;
use sav_dataplane::host::{HostApp, SpoofMode};
use sav_metrics::Table;
use sav_sim::{SimDuration, SimTime};
use sav_topo::generators::multi_as;
use sav_topo::Topology;
use sav_traffic::generators::reflection;
use std::sync::Arc;

const BOT_RATE: f64 = 50.0;
const AMPLIFICATION: usize = 10;
const POLL_MS: u64 = 250;
const HORIZON_S: u64 = 5;

struct World {
    topo: Arc<Topology>,
    bots: Vec<usize>,
    resolvers: Vec<usize>,
    echo: usize,
    victim: usize,
    legit: usize,
}

fn world() -> World {
    let m = multi_as(3, 4);
    let topo = Arc::new(m.topo);
    let by_as = |a: u32| -> Vec<usize> {
        topo.hosts()
            .iter()
            .filter(|h| h.as_id == a)
            .map(|h| h.id.0)
            .collect()
    };
    let as2 = by_as(2);
    let as3 = by_as(3);
    World {
        bots: by_as(1),
        resolvers: as2[..3].to_vec(),
        echo: as2[3],
        victim: as3[0],
        legit: as3[1],
        topo,
    }
}

struct Row {
    victim_bytes: u64,
    query_bytes: u64,
    legit_sent: u64,
    legit_replies: u64,
}

fn run(w: &World, label: &str, outbound: bool, inbound: bool, guard: bool) -> Row {
    let resolvers = w.resolvers.clone();
    let echo = w.echo;
    let mut opts = ScenarioOpts {
        sav_overrides: Box::new(move |cfg| {
            cfg.enforced_ases = Some(vec![2]);
            cfg.outbound = outbound;
            cfg.inbound = inbound;
            if guard {
                cfg.border = Some(BorderConfig::default());
            }
        }),
        ..Default::default()
    };
    opts.host_app = Box::new(move |h| {
        if resolvers.contains(&h.id.0) {
            HostApp::DnsResolver {
                amplification: AMPLIFICATION,
            }
        } else if h.id.0 == echo {
            HostApp::UdpEcho { port: 7 }
        } else {
            HostApp::Sink
        }
    });
    let mut tb = build_testbed(&w.topo, Mechanism::SdnSav, opts);
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(100));

    let schedule = reflection(
        &w.topo,
        &w.bots,
        &w.resolvers,
        w.topo.hosts()[w.victim].ip,
        BOT_RATE,
        SimDuration::from_secs(2),
        99,
    );
    let mut query_bytes = 0u64;
    for (t, op) in &schedule.ops {
        if let sav_traffic::TrafficOp::Udp { payload, .. } = op {
            query_bytes += (payload.len() + 42) as u64;
        }
        tb.schedule(*t + SimDuration::from_secs(1), to_cmd(op));
    }

    let echo_ip = w.topo.hosts()[w.echo].ip;
    let mut legit_sent = 0u64;
    let mut t = SimTime::from_millis(150);
    while t < SimTime::from_secs(4) {
        tb.schedule(
            t,
            TestbedCmd::SendUdp {
                host: w.legit,
                dst_ip: echo_ip,
                src_port: 5555,
                dst_port: 7,
                payload: b"keepalive".to_vec(),
                spoof: SpoofMode::None,
            },
        );
        legit_sent += 1;
        t += SimDuration::from_millis(100);
    }

    let mut now = SimTime::from_millis(100);
    while now < SimTime::from_secs(HORIZON_S) {
        now += SimDuration::from_millis(POLL_MS);
        tb.run_until(now);
        tb.poll_tick(now);
    }
    tb.run_until(SimTime::from_secs(HORIZON_S + 1));

    let victim_bytes = tb
        .deliveries
        .iter()
        .filter(|d| d.host == w.victim && d.delivery.src_port == 53)
        .map(|d| d.delivery.frame_len as u64)
        .sum();
    let legit_replies = tb
        .deliveries
        .iter()
        .filter(|d| d.host == w.legit && d.delivery.src_port == 7)
        .count() as u64;
    eprintln!("  done: {label}");
    Row {
        victim_bytes,
        query_bytes,
        legit_sent,
        legit_replies,
    }
}

fn main() {
    let w = world();
    println!(
        "Table 3: reflector-side deployments — {} bots x {BOT_RATE} qps, {} resolvers (x{AMPLIFICATION} amp), guard budget 3x\n",
        w.bots.len(),
        w.resolvers.len()
    );

    let rows = [
        ("oSAV only", run(&w, "oSAV only", true, false, false)),
        ("iSAV only", run(&w, "iSAV only", false, true, false)),
        (
            "SAV + border guard",
            run(&w, "SAV + border guard", true, true, true),
        ),
    ];

    let mut table = Table::new(
        "Table 3 — reflection defense at the reflector AS",
        &[
            "deployment",
            "victim bytes",
            "amplification",
            "collateral drops",
        ],
    );
    for (name, r) in &rows {
        table.row(&[
            name.to_string(),
            r.victim_bytes.to_string(),
            format!("{:.2}", r.victim_bytes as f64 / r.query_bytes as f64),
            (r.legit_sent - r.legit_replies).to_string(),
        ]);
    }
    print!("{}", table.to_ascii());
    write_result("table3_border.csv", &table.to_csv());
    write_json("table3_border", &table);

    println!(
        "\nShape check: both SAV-only rows amplify near x{AMPLIFICATION}; the guard row stays \
         within the 3x budget (plus one poll interval) with zero collateral drops."
    );
}
