//! **fig_c10k** — southbound scaling: one `SouthboundServer` event loop
//! versus {256, 1k, 4k, 10k} concurrent switch connections, measuring
//! p50/p99 ECHO keepalive RTT and accept-to-FEATURES_REPLY handshake
//! latency at each scale point.
//!
//! Topology of the measurement: the bench process hosts the server (the
//! system under test). The switch side runs in a **child process** — this
//! binary re-executed with `SAV_C10K_CLIENT` set — driving N sans-IO
//! [`OpenFlowSwitch`] cores over one `sav-poll` event loop of its own.
//! Two processes because the container's fd hard cap (20k) cannot hold
//! both ends of 10k sockets in one process; a child also keeps the
//! client's work off the server's allocator and locks.
//!
//! Modes:
//! * default — full {256, 1k, 4k, 10k} sweep; writes `results/fig_c10k.csv`
//!   and `results/bench_fig_c10k.json` and appends the `sb_*` southbound
//!   row to `results/trajectory.json` (commit the diff).
//! * `C10K_CHECK=1` — CI gate: {256, 4k} only; asserts p99 echo RTT at 4k
//!   stays within 2× the 256-connection point (subject to a 10 ms absolute
//!   noise floor on shared single-core runners), full readiness, zero
//!   keepalive deaths, and the `sb_*` trajectory gate. Writes nothing.
//! * `C10K_SOAK=1` — CI smoke: 512 connections held ~10 s under live
//!   keepalives; asserts zero disconnects and flat server RSS.

use sav_bench::{results_dir, write_json, write_result, Metrics, Trajectory};
use sav_channel::{ServerConfig, SouthboundServer};
use sav_controller::Controller;
use sav_dataplane::switch::{OpenFlowSwitch, SwitchConfig};
use sav_metrics::Table;
use sav_net::addr::MacAddr;
use sav_openflow::ports::PortDesc;
use sav_poll::{Events, Interest, Outbox, Poller, Slab, Token};
use sav_sim::SimTime;
use std::io::Read;
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Re-exec marker: `"<addr> <count>"` puts this binary in client mode.
const ENV_CLIENT: &str = "SAV_C10K_CLIENT";

/// Keepalive cadence during measurement. One second keeps the per-second
/// echo load proportional to the connection count without the 10k point
/// degenerating into a throughput bench.
const ECHO_INTERVAL: Duration = Duration::from_millis(1000);
/// Echo-RTT measurement window after the reset: ~3 samples per connection.
const MEASURE_WINDOW: Duration = Duration::from_millis(3500);
/// Windows measured per scale point; the quietest (lowest p99) is kept.
const MEASURE_WINDOWS: usize = 2;
/// Blocking connects per client batch. Stays under the kernel's default
/// listen backlog (128) so no SYN ever waits out a retransmit timer.
const CONNECT_BATCH: usize = 100;

fn server_config() -> ServerConfig {
    ServerConfig {
        echo_interval: ECHO_INTERVAL,
        // Generous: the client event loop may lag whole batches behind
        // during the connect phase on a single-core runner.
        liveness_timeout: Duration::from_secs(30),
        outbound_queue: 1024,
        write_stall_timeout: Duration::from_secs(5),
        stats_poll_interval: None,
        obs: None,
    }
}

// ---------------------------------------------------------------------------
// Client mode: N switch cores on one readiness loop in a child process.
// ---------------------------------------------------------------------------

struct ClientConn {
    stream: TcpStream,
    sw: OpenFlowSwitch,
    outbox: Outbox,
    want_write: bool,
}

fn mk_switch(dpid: u64) -> OpenFlowSwitch {
    let ports = (1..=2)
        .map(|p| PortDesc::new(p, MacAddr::from_index(dpid * 100 + u64::from(p))))
        .collect();
    OpenFlowSwitch::new(SwitchConfig::new(dpid), ports)
}

fn run_client(spec: &str) {
    let mut parts = spec.split_whitespace();
    let addr: SocketAddr = parts.next().expect("client addr").parse().expect("addr");
    let count: usize = parts.next().expect("client count").parse().expect("count");

    let started = Instant::now();
    let mut poller = Poller::new(1024).expect("client poller");
    let mut events = Events::with_capacity(1024);
    let mut conns: Slab<ClientConn> = Slab::new();
    let mut buf = vec![0u8; 64 * 1024];

    let mut dialed = 0;
    while dialed < count {
        let batch = (count - dialed).min(CONNECT_BATCH);
        for _ in 0..batch {
            dialed += 1;
            let stream = connect_with_retry(addr);
            stream.set_nodelay(true).expect("nodelay");
            let mut sw = mk_switch(dialed as u64);
            let hello = sw.hello();
            let mut conn = ClientConn {
                stream,
                sw,
                outbox: Outbox::new(),
                want_write: false,
            };
            conn.outbox.push(hello);
            let key = conns.insert(conn);
            let io = conns.get_mut(key).expect("just inserted");
            io.stream.set_nonblocking(true).expect("nonblocking");
            poller
                .register(&io.stream, Token(key), Interest::READABLE)
                .expect("register");
            drain_client(&mut poller, &mut conns, key);
        }
        // Service the loop between batches so handshakes complete while
        // later batches dial — the server is never left talking to a wall.
        service(
            &mut poller,
            &mut events,
            &mut conns,
            &mut buf,
            started,
            Duration::from_millis(50),
        );
    }

    // Steady state: answer echoes until the server closes every socket
    // (scale point over) or a hard self-destruct deadline passes.
    while !conns.is_empty() && started.elapsed() < Duration::from_secs(300) {
        service(
            &mut poller,
            &mut events,
            &mut conns,
            &mut buf,
            started,
            Duration::from_millis(200),
        );
    }
}

fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut delay = Duration::from_millis(10);
    for _ in 0..8 {
        match TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => {
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_millis(500));
            }
        }
    }
    TcpStream::connect(addr).expect("connect after retries")
}

/// One bounded pass over the client poller: read, feed the switch core,
/// queue its replies, drain outboxes.
fn service(
    poller: &mut Poller,
    events: &mut Events,
    conns: &mut Slab<ClientConn>,
    buf: &mut [u8],
    started: Instant,
    budget: Duration,
) {
    let deadline = Instant::now() + budget;
    loop {
        let now = Instant::now();
        if now >= deadline {
            return;
        }
        if poller.wait(events, Some(deadline - now)).is_err() {
            return;
        }
        let fired: Vec<_> = events.iter().copied().collect();
        for ev in fired {
            let key = ev.token.0;
            if !conns.contains(key) {
                continue;
            }
            let mut close = false;
            if ev.readable || ev.error || ev.hangup {
                close = read_client(conns, key, buf, started);
                // Replies the switch core just queued (echo replies, the
                // handshake's FEATURES_REPLY) go out on the same wakeup.
                if !close {
                    drain_client(poller, conns, key);
                }
            } else if ev.writable {
                drain_client(poller, conns, key);
            }
            if close {
                if let Some(io) = conns.get(key) {
                    let _ = poller.deregister(&io.stream);
                }
                conns.remove(key);
            }
        }
    }
}

/// Read until `WouldBlock`, replaying bytes through the sans-IO switch
/// core (which answers ECHO and the handshake itself). True = close.
fn read_client(conns: &mut Slab<ClientConn>, key: usize, buf: &mut [u8], started: Instant) -> bool {
    let mut replies: Vec<Vec<u8>> = Vec::new();
    let close = loop {
        let Some(io) = conns.get_mut(key) else {
            return false;
        };
        match io.stream.read(buf) {
            Ok(0) => break true,
            Ok(n) => {
                let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                match io.sw.handle_controller_bytes(now, &buf[..n]) {
                    Ok(out) => replies.extend(out.to_controller),
                    Err(_) => break true,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break false,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break true,
        }
    };
    if close {
        return true;
    }
    if let Some(io) = conns.get_mut(key) {
        for frame in replies {
            io.outbox.push(frame);
        }
    }
    false
}

/// Drain a client outbox under the single-writer rule; arm or disarm
/// write interest to mirror whether the socket pushed back.
fn drain_client(poller: &mut Poller, conns: &mut Slab<ClientConn>, key: usize) {
    let Some(io) = conns.get_mut(key) else {
        return;
    };
    let Ok(drained) = io.outbox.drain(&mut io.stream) else {
        let _ = poller.deregister(&io.stream);
        conns.remove(key);
        return;
    };
    if drained.blocked && !io.want_write {
        io.want_write = true;
        let _ = poller.modify(&io.stream, Token(key), Interest::BOTH);
    } else if !drained.blocked && io.want_write && io.outbox.is_empty() {
        io.want_write = false;
        let _ = poller.modify(&io.stream, Token(key), Interest::READABLE);
    }
}

// ---------------------------------------------------------------------------
// Server mode: the measurement harness.
// ---------------------------------------------------------------------------

struct Point {
    conns: usize,
    echo_p50_ms: f64,
    echo_p99_ms: f64,
    echo_samples: u64,
    handshake_p50_ms: f64,
    handshake_p99_ms: f64,
    dead_declared: u64,
}

fn spawn_client(addr: SocketAddr, count: usize) -> Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .env(ENV_CLIENT, format!("{addr} {count}"))
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn client child")
}

/// Stand up a fresh server, connect `n` switches from a child process,
/// wait for full readiness, then measure a steady-state echo window.
fn run_point(n: usize) -> Point {
    let server = SouthboundServer::bind("127.0.0.1:0", server_config(), Controller::new(vec![]))
        .expect("bind southbound server");
    let mut child = spawn_client(server.local_addr(), n);

    // Readiness = the controller completed HELLO → FEATURES_REPLY (→ Ready)
    // for every switch. Handshake latency accumulates during this phase.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let ready = server.controller().lock().ready_dpids().len();
        if ready >= n {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {ready}/{n} switches ready within the connect deadline"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let sm = server.server_metrics();
    let handshake = sm.handshake_latency();

    // Scope echo RTT to steady state: let connect churn settle, discard
    // samples taken during it, then measure clean windows. Wall-clock
    // noise on a shared single-core runner is one-sided (a co-scheduled
    // burst only ever inflates the tail), so keep the quietest window —
    // the same capability-not-scheduler-luck rationale as the trajectory
    // bench.
    std::thread::sleep(Duration::from_millis(500));
    let mut echo = None;
    for _ in 0..MEASURE_WINDOWS {
        sm.reset_echo_rtt();
        std::thread::sleep(MEASURE_WINDOW);
        let w = sm.echo_rtt();
        let quieter = echo
            .as_ref()
            .is_none_or(|best: &sav_metrics::Histogram| w.quantile(0.99) < best.quantile(0.99));
        if quieter {
            echo = Some(w);
        }
    }
    let echo = echo.expect("at least one measure window");
    let dead = sm.stats().dead_declared;
    let still_ready = server.controller().lock().ready_dpids().len();
    assert_eq!(
        still_ready, n,
        "connections dropped during the measure window"
    );

    let _ = child.kill();
    let _ = child.wait();
    server.shutdown();

    Point {
        conns: n,
        echo_p50_ms: echo.quantile(0.5) * 1e3,
        echo_p99_ms: echo.quantile(0.99) * 1e3,
        echo_samples: echo.count(),
        handshake_p50_ms: handshake.quantile(0.5) * 1e3,
        handshake_p99_ms: handshake.quantile(0.99) * 1e3,
        dead_declared: dead,
    }
}

/// Server RSS in KiB from `/proc/self/status` (0 where unavailable).
fn rss_kib() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmRSS:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Soak smoke: hold 512 connections ~10 s under live keepalives; nothing
/// may disconnect and the server's RSS must stay flat (no per-echo or
/// per-wakeup allocation leak).
fn run_soak() {
    const SOAK_CONNS: usize = 512;
    let config = ServerConfig {
        echo_interval: Duration::from_millis(200),
        ..server_config()
    };
    let server = SouthboundServer::bind("127.0.0.1:0", config, Controller::new(vec![]))
        .expect("bind southbound server");
    let mut child = spawn_client(server.local_addr(), SOAK_CONNS);

    let deadline = Instant::now() + Duration::from_secs(60);
    while server.controller().lock().ready_dpids().len() < SOAK_CONNS {
        assert!(Instant::now() < deadline, "soak connect phase timed out");
        std::thread::sleep(Duration::from_millis(50));
    }
    let sm = server.server_metrics();
    std::thread::sleep(Duration::from_secs(2)); // settle allocator churn
    let rss_start = rss_kib();
    let echo_start = sm.echo_rtt().count();
    std::thread::sleep(Duration::from_secs(10));
    let rss_end = rss_kib();
    let echo_end = sm.echo_rtt().count();

    let ready = server.controller().lock().ready_dpids().len();
    let dead = sm.stats().dead_declared;
    let _ = child.kill();
    let _ = child.wait();
    server.shutdown();

    assert_eq!(ready, SOAK_CONNS, "soak: connections dropped");
    assert_eq!(dead, 0, "soak: keepalive deaths");
    assert!(
        echo_end > echo_start,
        "soak: keepalives must stay live ({echo_start} -> {echo_end} RTT samples)"
    );
    let grown_kib = rss_end.saturating_sub(rss_start);
    assert!(
        rss_start == 0 || grown_kib < 16 * 1024,
        "soak: server RSS grew {grown_kib} KiB over 10 s (start {rss_start} KiB)"
    );
    println!(
        "[soak passed: {SOAK_CONNS} conns, {} RTT samples, rss {rss_start} -> {rss_end} KiB]",
        echo_end - echo_start
    );
}

fn sb_metrics(points: &[Point]) -> Metrics {
    let mut m = Metrics::new();
    for p in points {
        let tag = match p.conns {
            256 => "256",
            1000 => "1k",
            4000 => "4k",
            10000 => "10k",
            _ => continue,
        };
        m.insert(format!("sb_echo_p50_ms_{tag}"), p.echo_p50_ms);
        m.insert(format!("sb_echo_p99_ms_{tag}"), p.echo_p99_ms);
        m.insert(format!("sb_handshake_p99_ms_{tag}"), p.handshake_p99_ms);
    }
    m
}

fn main() {
    if let Ok(spec) = std::env::var(ENV_CLIENT) {
        run_client(&spec);
        return;
    }
    let check = std::env::var("C10K_CHECK").is_ok();
    if std::env::var("C10K_SOAK").is_ok() {
        run_soak();
        return;
    }

    let scales: &[usize] = if check {
        &[256, 4000]
    } else {
        &[256, 1000, 4000, 10000]
    };
    println!(
        "fig_c10k: one southbound event loop vs concurrent switches{}\n",
        if check { " [check mode]" } else { "" }
    );

    let mut table = Table::new(
        "fig_c10k: southbound scaling (one event-loop thread)",
        &[
            "conns",
            "echo_p50_ms",
            "echo_p99_ms",
            "echo_samples",
            "handshake_p50_ms",
            "handshake_p99_ms",
            "dead_declared",
        ],
    );
    let mut points = Vec::new();
    for &n in scales {
        let p = run_point(n);
        println!(
            "  {:>6} conns: echo p50 {:.3} ms p99 {:.3} ms ({} samples), \
             handshake p50 {:.3} ms p99 {:.3} ms",
            p.conns,
            p.echo_p50_ms,
            p.echo_p99_ms,
            p.echo_samples,
            p.handshake_p50_ms,
            p.handshake_p99_ms
        );
        assert_eq!(p.dead_declared, 0, "keepalive deaths at {n} connections");
        table.row(&[
            p.conns.to_string(),
            format!("{:.4}", p.echo_p50_ms),
            format!("{:.4}", p.echo_p99_ms),
            p.echo_samples.to_string(),
            format!("{:.4}", p.handshake_p50_ms),
            format!("{:.4}", p.handshake_p99_ms),
            p.dead_declared.to_string(),
        ]);
        points.push(p);
    }
    println!("\n{}", table.to_ascii());

    // Scaling assertion: p99 echo RTT at 4k within 2× of the 256-conn
    // point, with an absolute floor — on a shared single-core runner both
    // quantiles sit in scheduler-noise territory, and a sub-10 ms p99 at
    // 4k connections is a pass by any reading of the claim.
    let p256 = points.iter().find(|p| p.conns == 256).expect("256 point");
    let p4k = points.iter().find(|p| p.conns == 4000).expect("4k point");
    let bound = (2.0 * p256.echo_p99_ms).max(10.0);
    assert!(
        p4k.echo_p99_ms <= bound,
        "p99 echo RTT degraded 256 -> 4k: {:.3} ms -> {:.3} ms (bound {:.3} ms)",
        p256.echo_p99_ms,
        p4k.echo_p99_ms,
        bound
    );
    println!(
        "[scaling holds: p99 {:.3} ms @256 -> {:.3} ms @4k (bound {:.3} ms)]",
        p256.echo_p99_ms, p4k.echo_p99_ms, bound
    );

    let current = sb_metrics(&points);
    let path = results_dir().join("trajectory.json");
    let mut trajectory = Trajectory::load(&path);
    if check {
        let regressions = trajectory.regressions(&current);
        if regressions.is_empty() {
            println!("[southbound trajectory gate passed]");
        } else {
            eprintln!("southbound trajectory gate FAILED:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
        return;
    }

    write_result("fig_c10k.csv", &table.to_csv());
    write_json("fig_c10k", &table);
    // The southbound row: merge new sb_* metrics into the baseline (new
    // metrics have no baseline to regress from — this sets one) and
    // append the run.
    if let Some(base) = &mut trajectory.baseline {
        for (k, v) in &current {
            base.entry(k.clone()).or_insert(*v);
        }
    }
    trajectory.append_run(current);
    trajectory.save(&path).expect("write trajectory.json");
    println!("[saved {} — commit the diff]", path.display());
}
