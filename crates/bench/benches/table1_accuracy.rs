//! **Table 1 (reconstructed)** — filtering accuracy and state, all
//! mechanisms × spoofing strategies.
//!
//! Campus topology, mixed legitimate traffic plus three concurrent
//! attackers per strategy; seeds swept and averaged. Reports, per
//! mechanism: % spoofed blocked per strategy, % legitimate delivered, and
//! validation-table occupancy (max per switch / total).
//!
//! Expected shape: SDN-SAV rows block ≈100 % everywhere incl. same-subnet;
//! ACL/uRPF block foreign sources only; no-SAV blocks nothing; rule state
//! grows with granularity (per-host > per-port-prefix > per-prefix).

use sav_baselines::Mechanism;
use sav_bench::{run_mechanism, write_json, write_result, ScenarioOpts};
use sav_metrics::Table;
use sav_sim::SimDuration;
use sav_topo::generators as topogen;
use sav_traffic::generators::{self as trafficgen, SpoofStrategy};
use std::sync::Arc;

const SEEDS: [u64; 2] = [11, 23];
const ATTACK_RATE: f64 = 25.0;
const LEGIT_RATE: f64 = 4.0;
const DURATION_S: u64 = 2;

struct Row {
    blocked: [f64; 3],
    legit: f64,
    max_rules: usize,
    total_rules: usize,
}

fn run_row(topo: &Arc<sav_topo::Topology>, m: Mechanism) -> Row {
    let strategies = [
        SpoofStrategy::RandomRoutable,
        SpoofStrategy::SameSubnet,
        SpoofStrategy::ExistingNeighbor,
    ];
    let mut blocked = [0.0f64; 3];
    let mut legit = 0.0;
    let mut max_rules = 0usize;
    let mut total_rules = 0usize;
    for (si, strategy) in strategies.into_iter().enumerate() {
        for (k, seed) in SEEDS.into_iter().enumerate() {
            let all: Vec<usize> = (0..topo.hosts().len()).collect();
            let legit_sched = trafficgen::legit_uniform(
                topo,
                &all,
                LEGIT_RATE,
                SimDuration::from_secs(DURATION_S),
                64,
                seed,
            );
            let attack = trafficgen::spoof_attack(
                topo,
                &[0, 7, 13],
                strategy,
                ATTACK_RATE,
                SimDuration::from_secs(DURATION_S),
                None,
                seed + 1000,
            );
            let schedule = legit_sched.merge(attack);
            let out = run_mechanism(topo, m, &schedule, ScenarioOpts::default());
            blocked[si] += out.spoof_blocked_frac();
            legit += out.legit_delivered_frac();
            if si == 0 && k == 0 {
                max_rules = out.max_table0_rules();
                total_rules = out.total_table0_rules();
            }
        }
        blocked[si] /= SEEDS.len() as f64;
    }
    Row {
        blocked,
        legit: legit / (SEEDS.len() * 3) as f64,
        max_rules,
        total_rules,
    }
}

fn main() {
    let topo = Arc::new(topogen::campus(6, 6)); // 36 hosts, 9 switches
    println!(
        "Table 1: accuracy & state — campus topology, {} hosts, {} switches",
        topo.hosts().len(),
        topo.switches().len()
    );
    println!(
        "workload: {LEGIT_RATE} pps/host legit + 3 attackers x {ATTACK_RATE} pps, {DURATION_S}s, {} seeds\n",
        SEEDS.len()
    );

    let mut table = Table::new(
        "Table 1 — filtering accuracy and switch state",
        &[
            "mechanism",
            "blocked: random",
            "blocked: same-subnet",
            "blocked: neighbor",
            "legit delivered",
            "rules/switch (max)",
            "rules total",
        ],
    );
    for m in Mechanism::ALL {
        let r = run_row(&topo, m);
        table.row(&[
            m.name().to_string(),
            format!("{:.1}%", r.blocked[0] * 100.0),
            format!("{:.1}%", r.blocked[1] * 100.0),
            format!("{:.1}%", r.blocked[2] * 100.0),
            format!("{:.1}%", r.legit * 100.0),
            r.max_rules.to_string(),
            r.total_rules.to_string(),
        ]);
        eprintln!("  done: {m}");
    }
    print!("{}", table.to_ascii());
    write_result("table1_accuracy.csv", &table.to_csv());
    write_json("table1_accuracy", &table);
}
