//! **Figure 1 (reconstructed)** — validation-rule state vs. network size.
//!
//! Sweeps the host count on a campus with shared access ports (4 hosts per
//! port) and reports the total and per-edge-switch table-0 occupancy for
//! each mechanism after convergence (no traffic needed — the state is
//! proactive).
//!
//! Expected shape: SDN-SAV grows linearly with *hosts*; aggregated SDN-SAV
//! and ACL grow with *ports*/*prefixes*; uRPF grows with prefixes × ports.
//! The crossover justifies aggregation for downstream segments.

use sav_baselines::Mechanism;
use sav_bench::scenario::build_testbed;
use sav_bench::{write_json, write_result, ScenarioOpts};
use sav_metrics::Table;
use sav_sim::SimTime;
use sav_topo::generators as topogen;
use std::sync::Arc;

const HOSTS_PER_PORT: u32 = 4;
const PORTS_PER_EDGE: u32 = 4;

fn rules_for(topo: &Arc<sav_topo::Topology>, m: Mechanism) -> (usize, usize) {
    let mut tb = build_testbed(topo, m, ScenarioOpts::default());
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(500));
    let n = topo.switches().len();
    let per: Vec<usize> = (0..n).map(|i| tb.switch(i).flow_count(0)).collect();
    let total: usize = per.iter().sum();
    let max = per.into_iter().max().unwrap_or(0);
    (total, max)
}

fn main() {
    println!(
        "Figure 1: validation-table rules vs hosts (campus, {HOSTS_PER_PORT} hosts per access port)\n"
    );
    let mechanisms = [
        Mechanism::StaticAcl,
        Mechanism::StrictUrpf,
        Mechanism::SdnSav,
        Mechanism::SdnSavAggregate,
        Mechanism::SdnSavAggregateExact,
    ];
    let mut table = Table::new(
        "Figure 1 — rules vs network size",
        &[
            "hosts",
            "edges",
            "ACL total",
            "uRPF total",
            "SDN-SAV total",
            "SDN-SAV agg total",
            "SDN-SAV exact-agg total",
            "SDN-SAV max/switch",
            "SDN-SAV agg max/switch",
        ],
    );
    for n_edge in [2u32, 4, 8, 16] {
        let topo = Arc::new(topogen::campus_shared(
            n_edge,
            PORTS_PER_EDGE,
            HOSTS_PER_PORT,
        ));
        let hosts = topo.hosts().len();
        let mut totals = Vec::new();
        let mut maxes = Vec::new();
        for m in mechanisms {
            let (total, max) = rules_for(&topo, m);
            totals.push(total);
            maxes.push(max);
        }
        table.row(&[
            hosts.to_string(),
            n_edge.to_string(),
            totals[0].to_string(),
            totals[1].to_string(),
            totals[2].to_string(),
            totals[3].to_string(),
            totals[4].to_string(),
            maxes[2].to_string(),
            maxes[3].to_string(),
        ]);
        eprintln!("  done: {n_edge} edges / {hosts} hosts");
    }
    print!("{}", table.to_ascii());
    write_result("fig1_rule_scaling.csv", &table.to_csv());
    write_json("fig1_rule_scaling", &table);
    println!(
        "\nShape check: SDN-SAV total ≈ hosts + overhead (linear in hosts);\n\
         aggregated ≈ access ports + overhead; ACL ≈ prefixes; uRPF ≈ prefixes × arrival ports."
    );
}
