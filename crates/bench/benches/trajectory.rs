//! **Perf trajectory** — the repo's headline numbers, appended run-over-run
//! to `results/trajectory.json` so the performance story is a committed,
//! reviewable artifact rather than folklore:
//!
//! * `rules_per_sec` / `mods_per_op` — incremental compiler throughput and
//!   steady-state churn delta (fig1b's n=2048 cell, budget ∞);
//! * `tte_p50_ms` / `tte_p99_ms` — causal time-to-enforcement quantiles
//!   from live DORA exchanges: packet-in → WAL fsync → compile → send →
//!   barrier ack, measured by the sav-obs trace pipeline itself;
//! * `takeover_ms` — cold standby promotion: WAL replay + hydration +
//!   full rule install for a 4096-binding table.
//!
//! `TRAJECTORY_CHECK=1` runs the *same* measurement (identical sizes, so
//! deterministic metrics stay comparable) and fails when any metric moved
//! more than 20% in its bad direction vs the committed baseline (the tte
//! quantiles also carry an absolute noise floor — see
//! `trajectory::noise_floor`), writing nothing. Without it, the run is
//! appended and the file saved — commit the diff to extend the trajectory.

use sav_baselines::Mechanism;
use sav_bench::{results_dir, ScenarioOpts, Trajectory};
use sav_controller::app::Ctx;
use sav_controller::testbed::TestbedCmd;
use sav_controller::App;
use sav_core::{Binding, BindingSource, SavApp, SavConfig};
use sav_dataplane::host::{DhcpServerState, HostApp};
use sav_net::addr::{Ipv4Cidr, MacAddr};
use sav_obs::Obs;
use sav_openflow::messages::{Message, MultipartReplyBody};
use sav_sim::SimTime;
use sav_store::{BindingRecord, BindingStore, RecordSource, StoreConfig, WalOp};
use sav_topo::generators as topogen;
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::Instant;

/// Same shape as fig1b: bindings per access port of one edge switch,
/// ¾ dense / ¼ sparse.
const COMPILE_BINDINGS: usize = 2048;
const COMPILE_PORTS: u32 = 4;
const CHURN_OPS: usize = 64;
/// DORA exchanges feeding the time-to-enforcement quantiles.
const DORA_CLIENTS: usize = 64;
/// Recovered table size for the takeover measurement.
const TAKEOVER_BINDINGS: u32 = 4096;

fn mk_bindings(n: usize) -> Vec<Binding> {
    (0..n)
        .map(|i| {
            let port = (i as u32 % COMPILE_PORTS) + 1;
            let j = (i / COMPILE_PORTS as usize) as u32;
            let per_port = n as u32 / COMPILE_PORTS;
            let dense_cut = per_port * 3 / 4;
            let offset = if j < dense_cut {
                j
            } else {
                0x8000 + 2 * (j - dense_cut)
            };
            Binding {
                ip: Ipv4Addr::from((10u32 << 24) | (port << 16) | offset),
                mac: MacAddr::from_index(i as u64 + 1),
                dpid: 1,
                port,
                source: BindingSource::Dhcp,
                expires: Some(SimTime::from_secs(3600)),
            }
        })
        .collect()
}

fn flow_mod_count(ctx: Ctx) -> usize {
    ctx.take()
        .iter()
        .filter(|(_, m)| matches!(m, Message::FlowMod(_)))
        .count()
}

/// Compiler throughput: seed n bindings one upsert at a time (rules/sec),
/// then steady-state release+rebind churn (flow-mods per op).
fn measure_compiler() -> (f64, f64) {
    let topo = Arc::new(topogen::linear(2, 2));
    let config = SavConfig {
        static_plan: false,
        dhcp_snooping: false,
        ..SavConfig::default()
    };
    let mut app = SavApp::new(topo, config);
    let bindings = mk_bindings(COMPILE_BINDINGS);

    let t0 = Instant::now();
    for b in &bindings {
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.upsert_binding(&mut ctx, *b);
        drop(ctx.take());
    }
    let rules_per_sec = COMPILE_BINDINGS as f64 / t0.elapsed().as_secs_f64();

    let mut churn_mods = 0;
    for k in 0..CHURN_OPS {
        let b = bindings[(k * 17 + 3) % bindings.len()];
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.release_binding(&mut ctx, b.ip);
        churn_mods += flow_mod_count(ctx);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.upsert_binding(&mut ctx, b);
        churn_mods += flow_mod_count(ctx);
    }
    let mods_per_op = churn_mods as f64 / (CHURN_OPS as f64 * 2.0);
    (rules_per_sec, mods_per_op)
}

/// Time-to-enforcement: run real DORA exchanges through the testbed with
/// tracing on and read the quantiles the causal trace pipeline recorded.
/// Wall-clock per trace spans packet-in → barrier ack, i.e. exactly the
/// controller work the headline histogram is defined over.
fn measure_tte() -> (f64, f64) {
    let topo = Arc::new(topogen::linear(1, DORA_CLIENTS as u32 + 1));
    let pool: Ipv4Cidr = "10.200.0.0/16".parse().unwrap();
    let server_node = &topo.hosts()[0];
    let trusted = (server_node.switch.dpid(), server_node.port);
    let mut opts = ScenarioOpts {
        seed_arp: false,
        sav_overrides: Box::new(move |cfg| {
            cfg.static_plan = false;
            cfg.trusted_dhcp_ports = vec![trusted];
        }),
        ..Default::default()
    };
    opts.host_app = Box::new(move |h| {
        if h.id.0 == 0 {
            HostApp::DhcpServer(DhcpServerState::new(pool, 100, 3600))
        } else {
            HostApp::Sink
        }
    });

    let obs = Obs::with_tracing();
    let mut tb = sav_bench::scenario::build_testbed(&topo, Mechanism::SdnSav, opts);
    tb.controller_mut().set_obs(obs.clone());
    tb.controller_mut()
        .with_app::<SavApp, _>(|a| a.set_obs(obs.clone()))
        .expect("SdnSav testbed has a SavApp");
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(100));

    for i in 1..=DORA_CLIENTS {
        tb.schedule(
            SimTime::from_millis(200 + 50 * i as u64),
            TestbedCmd::DhcpDiscover { host: i },
        );
    }
    tb.run_until(SimTime::from_secs(60));

    let completed = obs.traces.completed();
    assert!(
        completed >= DORA_CLIENTS as u64,
        "every DORA exchange must complete a causal trace \
         ({completed}/{DORA_CLIENTS} completed, {} abandoned)",
        obs.traces.abandoned()
    );
    let h = obs
        .tracer
        .histogram("time_to_enforcement")
        .expect("tracing enabled: tte histogram exists");
    (h.quantile(0.5) * 1e3, h.quantile(0.99) * 1e3)
}

/// Cold takeover: WAL replay + binding hydration + full rule install for
/// a pre-seeded table, the failover path's dominant cost.
fn measure_takeover() -> f64 {
    let dir = std::env::temp_dir().join(format!(
        "sav-trajectory-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let topo = Arc::new(topogen::linear(2, 2));
    let dpid = topo.switches()[0].id.dpid();

    let mut store = BindingStore::open(&dir, StoreConfig::default()).unwrap();
    for i in 0..TAKEOVER_BINDINGS {
        store
            .append(&WalOp::Upsert(BindingRecord {
                ip: Ipv4Addr::from(0x0a40_0000 + i),
                mac: MacAddr::from_index(u64::from(i) + 1),
                dpid,
                port: (i % 2) + 1,
                source: RecordSource::Dhcp,
                expires: Some(SimTime::from_secs(3600)),
            }))
            .unwrap();
    }
    drop(store);

    let config = SavConfig {
        static_plan: false,
        ..SavConfig::default()
    };
    let t0 = Instant::now();
    let store = BindingStore::open(&dir, StoreConfig::default()).unwrap();
    let mut app = SavApp::with_store(topo, config, store);
    let mut ctx = Ctx::new(SimTime::ZERO);
    app.on_switch_up(&mut ctx, dpid);
    drop(ctx.take()); // reconcile stats request
    let mut ctx = Ctx::new(SimTime::ZERO);
    // An empty switch table (fresh standby hardware) forces a full install.
    app.on_stats_reply(&mut ctx, dpid, &MultipartReplyBody::Flow(vec![]));
    let installed = flow_mod_count(ctx);
    let takeover_ms = t0.elapsed().as_secs_f64() * 1e3;

    assert!(
        installed >= TAKEOVER_BINDINGS as usize,
        "takeover must install the recovered table ({installed} mods)"
    );
    let _ = std::fs::remove_dir_all(&dir);
    takeover_ms
}

/// Repetitions per measurement. Wall-clock noise is one-sided (contention
/// only ever slows a run down), so each metric keeps its best across
/// repetitions — the gate then compares capability, not scheduler luck.
const REPS: usize = 5;

fn best_of<T, F: FnMut() -> T>(mut f: F, better: impl Fn(&T, &T) -> bool) -> T {
    let mut best = f();
    for _ in 1..REPS {
        let next = f();
        if better(&next, &best) {
            best = next;
        }
    }
    best
}

fn main() {
    let check = std::env::var("TRAJECTORY_CHECK").is_ok();
    println!(
        "Perf trajectory: headline numbers (best of {REPS}){}\n",
        if check { " [check mode]" } else { "" }
    );

    // One discarded warm-up pass so the first measured rep doesn't pay
    // for cold page/branch-predictor state on a freshly built binary.
    let _ = measure_compiler();

    // mods_per_op is deterministic (same compiler, same inputs); the
    // throughput half keeps the fastest repetition.
    let (rules_per_sec, mods_per_op) = best_of(measure_compiler, |a, b| a.0 > b.0);
    // Latency quantiles keep the quietest repetition, ranked by the p99.
    let (tte_p50_ms, tte_p99_ms) = best_of(measure_tte, |a, b| a.1 < b.1);
    let takeover_ms = best_of(measure_takeover, |a, b| a < b);

    let current: sav_bench::Metrics = [
        ("rules_per_sec".to_string(), rules_per_sec),
        ("mods_per_op".to_string(), mods_per_op),
        ("tte_p50_ms".to_string(), tte_p50_ms),
        ("tte_p99_ms".to_string(), tte_p99_ms),
        ("takeover_ms".to_string(), takeover_ms),
    ]
    .into_iter()
    .collect();
    for (k, v) in &current {
        println!("  {k:<16} {v:.3}");
    }

    let path = results_dir().join("trajectory.json");
    let mut trajectory = Trajectory::load(&path);
    if check {
        if trajectory.baseline.is_none() {
            println!("\n[no baseline committed; skipping trajectory gate]");
            return;
        }
        let regressions = trajectory.regressions(&current);
        if regressions.is_empty() {
            println!("\n[trajectory gate passed vs committed baseline]");
        } else {
            eprintln!("\ntrajectory gate FAILED:");
            for r in &regressions {
                eprintln!("  {r}");
            }
            std::process::exit(1);
        }
    } else {
        trajectory.append_run(current);
        trajectory.save(&path).expect("write trajectory.json");
        println!("\n[saved {} — commit the diff]", path.display());
    }
}
