//! **Figure 2 (reconstructed)** — convergence after host migration.
//!
//! For each of N trials: move a host between edge switches while it emits a
//! 1 kHz probe stream to a fixed peer; convergence = time from the move to
//! the first probe delivered from the new location. Reports the CDF
//! (p10/p50/p90/max) plus the control-message cost per migration, for
//! SDN-SAV (bindings must move) and no-SAV (only forwarding must move).
//!
//! Expected shape: convergence is a few control-channel round-trips
//! (sub-10 ms at 200 µs one-way latency) and independent of network size;
//! the SAV overhead vs. no-SAV is one extra rule delete + install.

use sav_baselines::Mechanism;
use sav_bench::scenario::build_testbed;
use sav_bench::{write_json, write_result, ScenarioOpts};
use sav_controller::testbed::TestbedCmd;
use sav_dataplane::host::SpoofMode;
use sav_metrics::{quantile, Table};
use sav_sim::{SimDuration, SimTime};
use sav_topo::generators as topogen;
use sav_traffic::tag::{self, TrafficClass};
use std::sync::Arc;

const TRIALS: usize = 30;

fn run(mechanism: Mechanism) -> (Vec<f64>, f64) {
    let topo = Arc::new(topogen::campus(6, 4));
    let mut tb = build_testbed(&topo, mechanism, ScenarioOpts::default());
    tb.connect_control_plane();
    tb.run_until(SimTime::from_millis(100));
    let fm_before = tb.report().controller.flow_mods;

    let edges: Vec<usize> = topo
        .switches()
        .iter()
        .filter(|s| s.role == sav_topo::SwitchRole::Edge)
        .map(|s| s.id.0)
        .collect();
    let mover = 0usize;
    let peer = topo.hosts().len() - 1;
    let peer_ip = topo.hosts()[peer].ip;

    let mut convergences = Vec::new();
    let mut t = SimTime::from_millis(500);
    for trial in 0..TRIALS {
        // Bounce between edges deterministically.
        let cur = tb.attachment(mover).0;
        let to = *edges
            .iter()
            .find(|&&e| e != cur)
            .expect("another edge exists");
        tb.schedule(
            t,
            TestbedCmd::MoveHost {
                host: mover,
                to_switch: to,
            },
        );
        // 1 kHz probes for 200 ms after the move.
        for i in 0..200u32 {
            tb.schedule(
                t + SimDuration::from_millis(u64::from(i)),
                TestbedCmd::SendUdp {
                    host: mover,
                    dst_ip: peer_ip,
                    src_port: 7777,
                    dst_port: 7,
                    payload: tag::payload(TrafficClass::Legit, (trial as u32) << 16 | i, 32),
                    spoof: SpoofMode::None,
                },
            );
        }
        tb.run_until(t + SimDuration::from_millis(400));
        let first = tb
            .deliveries
            .iter()
            .filter(|d| d.host == peer && d.time >= t)
            .map(|d| d.time)
            .min();
        if let Some(first) = first {
            convergences.push(first.saturating_since(t).as_millis_f64());
        }
        t += SimDuration::from_millis(500);
    }
    let fm_after = tb.report().controller.flow_mods;
    let fm_per_migration = (fm_after - fm_before) as f64 / TRIALS as f64;
    (convergences, fm_per_migration)
}

fn main() {
    println!("Figure 2: migration convergence CDF over {TRIALS} trials (campus, 24 hosts)\n");
    let mut table = Table::new(
        "Figure 2 — convergence after host migration (ms)",
        &[
            "mechanism",
            "trials",
            "p10",
            "p50",
            "p90",
            "max",
            "flow-mods/migration",
        ],
    );
    for m in [
        Mechanism::NoSav,
        Mechanism::SdnSav,
        Mechanism::SdnSavAggregate,
    ] {
        let (mut conv, fm) = run(m);
        conv.sort_by(|a, b| a.partial_cmp(b).unwrap());
        table.row(&[
            m.name().to_string(),
            conv.len().to_string(),
            format!("{:.2}", quantile(&conv, 0.10)),
            format!("{:.2}", quantile(&conv, 0.50)),
            format!("{:.2}", quantile(&conv, 0.90)),
            format!("{:.2}", conv.last().copied().unwrap_or(0.0)),
            format!("{fm:.1}"),
        ]);
        eprintln!("  done: {m}");
    }
    print!("{}", table.to_ascii());
    write_result("fig2_migration.csv", &table.to_csv());
    write_json("fig2_migration", &table);
    println!(
        "\nShape check: all percentiles in the low milliseconds; SAV adds ~2 flow-mods per move."
    );
}
