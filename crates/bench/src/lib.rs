//! # sav-bench — the experiment harness
//!
//! Reusable scenario plumbing for the bench targets that regenerate every
//! table and figure (see `benches/`), and for the integration tests and
//! examples: build a testbed for a [`sav_baselines::Mechanism`], replay a
//! traffic [`sav_traffic::Schedule`] against it, and classify the outcome
//! by payload tags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub mod trajectory;

pub use scenario::{run_mechanism, Outcome, ScenarioOpts};
pub use trajectory::{Metrics, Trajectory, REGRESSION_TOLERANCE};

use std::path::PathBuf;

/// The workspace `results/` directory (created on demand). Every bench
/// target writes its CSV here so EXPERIMENTS.md can reference stable paths.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Write a result artifact (CSV) under `results/`.
pub fn write_result(name: &str, content: &str) {
    let path = results_dir().join(name);
    std::fs::write(&path, content).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// Write a table as machine-readable JSON under `results/bench_<stem>.json`,
/// alongside the human-oriented CSV the bench already emits. Downstream
/// tooling (plots, CI regression gates) keys off these stable paths.
pub fn write_json(stem: &str, table: &sav_metrics::Table) {
    write_result(&format!("bench_{stem}.json"), &table.to_json());
}
