//! The perf trajectory: headline numbers appended run-over-run to
//! `results/trajectory.json`, plus the regression gate CI runs with
//! `TRAJECTORY_CHECK=1`.
//!
//! The file holds a committed `baseline` (the first recorded run) and a
//! `runs` history. Each entry is a flat map of metric name → value; the
//! gate compares the current measurement against the baseline and flags
//! any metric that moved more than [`REGRESSION_TOLERANCE`] in its *bad*
//! direction (throughput falling, latency rising). JSON reading and
//! writing are hand-rolled like the rest of the workspace — the format is
//! ours, flat, and stable.

use std::collections::BTreeMap;
use std::path::Path;

/// Fractional slack before a metric counts as regressed (>20%).
pub const REGRESSION_TOLERANCE: f64 = 0.20;

/// One run's headline numbers, metric name → value.
pub type Metrics = BTreeMap<String, f64>;

/// Metrics where bigger is better; everything else (latencies, mods/op)
/// regresses by *rising*.
fn higher_is_better(name: &str) -> bool {
    name == "rules_per_sec"
}

/// Absolute slack a metric must also exceed before it counts as
/// regressed. Sub-0.1 ms quantiles jitter well past 20% run-to-run on
/// shared hardware, so the time-to-enforcement gates only fire on a
/// millisecond-scale move — the size a real regression (an added fsync
/// or sleep in the trace path) actually is. Everything else gates on the
/// relative tolerance alone.
fn noise_floor(name: &str) -> f64 {
    // Southbound loopback RTT/handshake quantiles (`sb_*_ms_*` from the
    // fig_c10k bench) are scheduling-noise-dominated on shared single-core
    // runners: only a multi-millisecond move is a real regression.
    if name.starts_with("sb_") && name.contains("_ms") {
        return 5.0;
    }
    match name {
        "tte_p50_ms" | "tte_p99_ms" => 0.25,
        _ => 0.0,
    }
}

/// The committed trajectory file: baseline + full run history.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trajectory {
    /// The reference run every later run is gated against.
    pub baseline: Option<Metrics>,
    /// All recorded runs, oldest first.
    pub runs: Vec<Metrics>,
}

impl Trajectory {
    /// Load `path`, or an empty trajectory when the file doesn't exist
    /// or doesn't parse (a corrupt file starts a fresh history rather
    /// than wedging the bench).
    pub fn load(path: &Path) -> Trajectory {
        match std::fs::read_to_string(path) {
            Ok(text) => parse(&text).unwrap_or_default(),
            Err(_) => Trajectory::default(),
        }
    }

    /// Write the trajectory back as pretty-printed JSON.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Record a run; the first ever recorded becomes the baseline.
    pub fn append_run(&mut self, m: Metrics) {
        if self.baseline.is_none() {
            self.baseline = Some(m.clone());
        }
        self.runs.push(m);
    }

    /// Compare `current` against the committed baseline: one line per
    /// regressed metric (empty = gate passes). Metrics missing on either
    /// side are skipped — a new metric has no baseline to regress from.
    pub fn regressions(&self, current: &Metrics) -> Vec<String> {
        let Some(base) = &self.baseline else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (name, &b) in base {
            let Some(&c) = current.get(name) else {
                continue;
            };
            if b <= 0.0 {
                continue;
            }
            let (regressed, change) = if higher_is_better(name) {
                (c < b * (1.0 - REGRESSION_TOLERANCE), c / b - 1.0)
            } else {
                let beyond_floor = c - b > noise_floor(name);
                (
                    c > b * (1.0 + REGRESSION_TOLERANCE) && beyond_floor,
                    c / b - 1.0,
                )
            };
            if regressed {
                out.push(format!(
                    "{name}: {c:.3} vs baseline {b:.3} ({:+.1}%, tolerance ±{:.0}%)",
                    change * 100.0,
                    REGRESSION_TOLERANCE * 100.0
                ));
            }
        }
        out
    }

    /// Render as JSON (`{"baseline": {...}, "runs": [{...}, ...]}`).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"baseline\": ");
        match &self.baseline {
            Some(m) => s.push_str(&metrics_json(m)),
            None => s.push_str("null"),
        }
        s.push_str(",\n  \"runs\": [");
        for (i, m) in self.runs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            s.push_str(&metrics_json(m));
        }
        if !self.runs.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

fn metrics_json(m: &Metrics) -> String {
    let fields: Vec<String> = m.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
    format!("{{{}}}", fields.join(", "))
}

/// Parse the trajectory format written by [`Trajectory::to_json`]. Flat
/// objects only — `None` on anything structurally surprising.
fn parse(text: &str) -> Option<Trajectory> {
    let baseline_src = section(text, "\"baseline\"")?;
    let baseline = if baseline_src.trim_start().starts_with("null") {
        None
    } else {
        Some(parse_flat_object(flat_object(baseline_src)?)?)
    };
    let runs_src = section(text, "\"runs\"")?;
    let runs_body = delimited(runs_src, '[', ']')?;
    let mut runs = Vec::new();
    let mut rest = runs_body;
    while let Some(obj) = flat_object(rest) {
        runs.push(parse_flat_object(obj)?);
        let after = rest.find('}').map(|i| &rest[i + 1..])?;
        rest = after;
    }
    Some(Trajectory { baseline, runs })
}

/// The text following `key:`.
fn section<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let i = text.find(key)?;
    let rest = &text[i + key.len()..];
    let j = rest.find(':')?;
    Some(&rest[j + 1..])
}

/// The contents between the first `open` and its matching `close`,
/// assuming no nesting (our objects are flat).
fn delimited(text: &str, open: char, close: char) -> Option<&str> {
    let i = text.find(open)?;
    let j = text[i + 1..].find(close)? + i + 1;
    Some(&text[i + 1..j])
}

/// The body of the first flat `{...}` object in `text`, if any.
fn flat_object(text: &str) -> Option<&str> {
    delimited(text, '{', '}')
}

/// `"k": 1.5, "j": 2` → map. Empty body → empty map.
fn parse_flat_object(body: &str) -> Option<Metrics> {
    let mut m = Metrics::new();
    for field in body.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (k, v) = field.split_once(':')?;
        let k = k.trim().strip_prefix('"')?.strip_suffix('"')?;
        let v: f64 = v.trim().parse().ok()?;
        m.insert(k.to_string(), v);
    }
    Some(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(pairs: &[(&str, f64)]) -> Metrics {
        pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
    }

    #[test]
    fn roundtrips_through_json() {
        let mut t = Trajectory::default();
        t.append_run(metrics(&[
            ("rules_per_sec", 120000.5),
            ("tte_p50_ms", 1.25),
        ]));
        t.append_run(metrics(&[("rules_per_sec", 130000.0), ("tte_p50_ms", 1.1)]));
        assert_eq!(t.baseline, Some(t.runs[0].clone()));
        let parsed = parse(&t.to_json()).expect("own output parses");
        assert_eq!(parsed, t);

        // Empty file shape parses too.
        let empty = Trajectory::default();
        assert_eq!(parse(&empty.to_json()), Some(empty));
    }

    #[test]
    fn gate_is_direction_aware() {
        let mut t = Trajectory::default();
        t.append_run(metrics(&[("rules_per_sec", 100.0), ("tte_p99_ms", 10.0)]));

        // Within tolerance in both directions: clean.
        let ok = metrics(&[("rules_per_sec", 85.0), ("tte_p99_ms", 11.5)]);
        assert!(t.regressions(&ok).is_empty());

        // Throughput regresses by FALLING...
        let slow = metrics(&[("rules_per_sec", 70.0), ("tte_p99_ms", 10.0)]);
        let regs = t.regressions(&slow);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("rules_per_sec"));

        // ...latency regresses by RISING, and improving (falling) is fine.
        let laggy = metrics(&[("rules_per_sec", 200.0), ("tte_p99_ms", 13.0)]);
        let regs = t.regressions(&laggy);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("tte_p99_ms"));
        let better = metrics(&[("rules_per_sec", 100.0), ("tte_p99_ms", 2.0)]);
        assert!(t.regressions(&better).is_empty());

        // No baseline (fresh repo): everything passes.
        assert!(Trajectory::default().regressions(&slow).is_empty());
    }

    #[test]
    fn microsecond_latency_jitter_stays_under_the_noise_floor() {
        let mut t = Trajectory::default();
        t.append_run(metrics(&[("tte_p99_ms", 0.022), ("takeover_ms", 4.0)]));

        // +40% but a ~9 µs absolute move: scheduler jitter, not a
        // regression the gate should flap on.
        let jitter = metrics(&[("tte_p99_ms", 0.031), ("takeover_ms", 4.0)]);
        assert!(t.regressions(&jitter).is_empty());

        // A millisecond-scale move (an fsync landed in the trace path)
        // clears both the relative tolerance and the floor.
        let real = metrics(&[("tte_p99_ms", 1.5), ("takeover_ms", 4.0)]);
        let regs = t.regressions(&real);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("tte_p99_ms"));

        // Metrics without a floor still gate on relative tolerance alone.
        let slow = metrics(&[("tte_p99_ms", 0.022), ("takeover_ms", 5.5)]);
        let regs = t.regressions(&slow);
        assert_eq!(regs.len(), 1, "{regs:?}");
        assert!(regs[0].starts_with("takeover_ms"));
    }

    #[test]
    fn corrupt_file_starts_fresh() {
        assert_eq!(parse("{\"baseline\": [broken"), None);
        let dir = std::env::temp_dir().join(format!("sav-traj-{}", std::process::id()));
        assert_eq!(
            Trajectory::load(&dir.join("missing.json")),
            Trajectory::default()
        );
    }
}
