//! Scenario runner: mechanism + topology + schedule → classified outcome.
//!
//! Every experiment follows the same template:
//!
//! 1. build the controller app chain for the mechanism under test;
//! 2. assemble a [`Testbed`] (hosts default to [`HostApp::Sink`] so
//!    accuracy accounting sees each datagram exactly once);
//! 3. let the control plane converge for `settle`;
//! 4. replay the [`Schedule`], shifted by `settle`;
//! 5. drain in-flight traffic, then classify deliveries by payload tag.

use sav_baselines::Mechanism;
use sav_controller::testbed::{Testbed, TestbedCmd, TestbedConfig};
use sav_controller::Controller;
use sav_dataplane::host::{HostApp, HostConfig, SpoofMode};
use sav_sim::{SimDuration, SimTime};
use sav_topo::routes::Routes;
use sav_topo::Topology;
use sav_traffic::tag::{self, TrafficClass};
use sav_traffic::{Schedule, SpoofKind, TrafficOp};
use std::collections::HashSet;
use std::sync::Arc;

/// Knobs for a scenario run.
pub struct ScenarioOpts {
    /// Control-plane convergence time before traffic starts.
    pub settle: SimDuration,
    /// Extra time after the last scheduled op before measurement stops.
    pub drain: SimDuration,
    /// Pre-seed every host's ARP cache (skip resolution latency).
    pub seed_arp: bool,
    /// Tweak the SAV config for SDN-SAV mechanisms (trusted DHCP ports...).
    pub sav_overrides: Box<dyn FnOnce(&mut sav_core::SavConfig)>,
    /// Per-host application override (defaults to `Sink`).
    pub host_app: Box<dyn FnMut(&sav_topo::HostNode) -> HostApp>,
    /// Testbed latencies and sizing.
    pub testbed: TestbedConfig,
}

impl Default for ScenarioOpts {
    fn default() -> Self {
        ScenarioOpts {
            settle: SimDuration::from_millis(100),
            drain: SimDuration::from_secs(2),
            seed_arp: true,
            sav_overrides: Box::new(|_| {}),
            host_app: Box::new(|_| HostApp::Sink),
            testbed: TestbedConfig::default(),
        }
    }
}

/// Classified result of a run.
pub struct Outcome {
    /// The testbed after the run (switch/controller state readable).
    pub testbed: Testbed,
    /// Legitimate datagrams sent / delivered to their application.
    pub legit_sent: u64,
    /// Legitimate datagrams delivered.
    pub legit_delivered: u64,
    /// Spoofed datagrams sent / delivered (leaked past validation).
    pub spoofed_sent: u64,
    /// Spoofed datagrams delivered.
    pub spoofed_delivered: u64,
    /// Virtual time at which measurement ended.
    pub end_time: SimTime,
}

impl Outcome {
    /// Fraction of spoofed traffic blocked (1.0 when none was sent).
    pub fn spoof_blocked_frac(&self) -> f64 {
        if self.spoofed_sent == 0 {
            1.0
        } else {
            1.0 - self.spoofed_delivered as f64 / self.spoofed_sent as f64
        }
    }

    /// Fraction of legitimate traffic delivered (1.0 when none was sent).
    pub fn legit_delivered_frac(&self) -> f64 {
        if self.legit_sent == 0 {
            1.0
        } else {
            self.legit_delivered as f64 / self.legit_sent as f64
        }
    }

    /// Maximum validation-table (table 0) occupancy across switches.
    pub fn max_table0_rules(&self) -> usize {
        let n = self.testbed.topology().switches().len();
        (0..n)
            .map(|i| self.testbed.switch(i).flow_count(0))
            .max()
            .unwrap_or(0)
    }

    /// Total validation-table rules across switches.
    pub fn total_table0_rules(&self) -> usize {
        let n = self.testbed.topology().switches().len();
        (0..n).map(|i| self.testbed.switch(i).flow_count(0)).sum()
    }
}

/// Map a traffic op onto a testbed command.
pub fn to_cmd(op: &TrafficOp) -> TestbedCmd {
    match op {
        TrafficOp::Udp {
            host,
            dst_ip,
            src_port,
            dst_port,
            payload,
            spoof,
        } => TestbedCmd::SendUdp {
            host: *host,
            dst_ip: *dst_ip,
            src_port: *src_port,
            dst_port: *dst_port,
            payload: payload.clone(),
            spoof: match spoof {
                SpoofKind::None => SpoofMode::None,
                SpoofKind::Ip(ip) => SpoofMode::Ipv4(*ip),
                SpoofKind::IpMac(ip, mac) => SpoofMode::Ipv4AndMac(*ip, *mac),
            },
        },
        TrafficOp::DhcpDiscover { host } => TestbedCmd::DhcpDiscover { host: *host },
        TrafficOp::DhcpRelease { host } => TestbedCmd::DhcpRelease { host: *host },
        TrafficOp::Move { host, to_switch } => TestbedCmd::MoveHost {
            host: *host,
            to_switch: *to_switch,
        },
    }
}

/// Assemble a testbed for `mechanism` (exposed for experiments that need
/// custom drive loops, e.g. the reflection time series).
pub fn build_testbed(
    topo: &Arc<Topology>,
    mechanism: Mechanism,
    mut opts: ScenarioOpts,
) -> Testbed {
    let routes = Arc::new(Routes::compute(topo));
    let overrides = std::mem::replace(&mut opts.sav_overrides, Box::new(|_| {}));
    let apps = mechanism.build_apps(topo, &routes, overrides);
    let controller = Controller::new(apps);
    let mut host_app = opts.host_app;
    let mut tb = Testbed::new(topo.clone(), routes, controller, opts.testbed, |h| {
        HostConfig {
            mac: h.mac,
            ip: h.ip,
            app: host_app(h),
        }
    });
    if opts.seed_arp {
        tb.seed_all_arp();
    }
    tb
}

/// Run `schedule` against `mechanism` on `topo` and classify the result.
pub fn run_mechanism(
    topo: &Arc<Topology>,
    mechanism: Mechanism,
    schedule: &Schedule,
    opts: ScenarioOpts,
) -> Outcome {
    let settle = opts.settle;
    let drain = opts.drain;
    let mut tb = build_testbed(topo, mechanism, opts);
    tb.connect_control_plane();
    tb.run_until(SimTime::ZERO + settle);

    let mut last = SimTime::ZERO;
    for (t, op) in &schedule.ops {
        let at = *t + settle;
        last = last.max(at);
        tb.schedule(at, to_cmd(op));
    }
    tb.run_until(last + drain);

    // Classify: a delivery counts once, at the datagram's first hand
    // (dst_port == APP_PORT); tags classify sender intent. Unique flow ids
    // guard against duplicate delivery bugs inflating results.
    let mut legit_ids: HashSet<u32> = HashSet::new();
    let mut spoof_ids: HashSet<u32> = HashSet::new();
    for d in &tb.deliveries {
        if d.delivery.dst_port != sav_traffic::generators::APP_PORT {
            continue;
        }
        match tag::parse(&d.delivery.payload) {
            Some((TrafficClass::Legit, id)) => {
                legit_ids.insert(id);
            }
            Some((TrafficClass::Spoofed, id)) => {
                spoof_ids.insert(id);
            }
            None => {}
        }
    }
    let end_time = tb.now();
    Outcome {
        testbed: tb,
        legit_sent: schedule.legit_count() as u64,
        legit_delivered: legit_ids.len() as u64,
        spoofed_sent: schedule.spoofed_count() as u64,
        spoofed_delivered: spoof_ids.len() as u64,
        end_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_sim::SimDuration;
    use sav_topo::generators as topogen;
    use sav_traffic::generators as trafficgen;

    #[test]
    fn no_sav_leaks_and_sdn_sav_blocks() {
        let topo = Arc::new(topogen::campus(2, 3));
        let all: Vec<usize> = (0..topo.hosts().len()).collect();
        let legit = trafficgen::legit_uniform(&topo, &all, 5.0, SimDuration::from_secs(2), 64, 11);
        let attack = trafficgen::spoof_attack(
            &topo,
            &[0],
            trafficgen::SpoofStrategy::ExistingNeighbor,
            20.0,
            SimDuration::from_secs(2),
            None,
            12,
        );
        let schedule = legit.merge(attack);

        let out = run_mechanism(&topo, Mechanism::NoSav, &schedule, ScenarioOpts::default());
        assert!(out.legit_delivered_frac() > 0.99, "legit loss without SAV");
        assert!(
            out.spoof_blocked_frac() < 0.05,
            "no-SAV should leak nearly everything, blocked {}",
            out.spoof_blocked_frac()
        );

        let out = run_mechanism(&topo, Mechanism::SdnSav, &schedule, ScenarioOpts::default());
        assert_eq!(out.spoofed_delivered, 0, "SDN-SAV must block all spoofing");
        assert!(
            out.legit_delivered_frac() > 0.99,
            "and lose no legit traffic"
        );
    }
}
