//! [`StatsCollectorApp`] — central statistics collection over the real
//! multipart protocol.
//!
//! Issues `OFPMP_FLOW` / `OFPMP_PORT_STATS` / `OFPMP_TABLE` requests to
//! every ready switch on demand (the embedding decides the cadence; the
//! testbed exposes [`crate::testbed::Testbed::poll_stats`]) and caches the
//! latest replies per datapath. This is how a SAV operator actually reads
//! the network: drop counters on deny rules, per-binding hit counts, table
//! occupancy — all through the control channel rather than simulator
//! backdoors.

use crate::app::{App, Ctx};
use sav_openflow::consts::port as ofport;
use sav_openflow::messages::{
    FlowStatsEntry, FlowStatsRequest, Message, MultipartReplyBody, MultipartRequestBody, PortStats,
    TableStats,
};
use std::collections::HashMap;

/// Latest statistics snapshot for one switch.
#[derive(Debug, Default, Clone)]
pub struct SwitchStats {
    /// Flow entries (all tables) from the last flow-stats reply.
    pub flows: Vec<FlowStatsEntry>,
    /// Port counters from the last port-stats reply.
    pub ports: Vec<PortStats>,
    /// Table occupancy from the last table-stats reply.
    pub tables: Vec<TableStats>,
}

/// The collector application.
#[derive(Default)]
pub struct StatsCollectorApp {
    ready: Vec<u64>,
    stats: HashMap<u64, SwitchStats>,
    /// Multipart replies processed (completeness check for polls).
    pub replies_seen: u64,
}

impl StatsCollectorApp {
    /// A collector with no data yet.
    pub fn new() -> StatsCollectorApp {
        StatsCollectorApp::default()
    }

    /// Queue a full stats poll (flow + port + table) to every ready switch.
    pub fn request_all(&self, ctx: &mut Ctx) {
        for &dpid in &self.ready {
            ctx.send(
                dpid,
                Message::MultipartRequest(MultipartRequestBody::Flow(FlowStatsRequest::default())),
            );
            ctx.send(
                dpid,
                Message::MultipartRequest(MultipartRequestBody::PortStats {
                    port_no: ofport::ANY,
                }),
            );
            ctx.send(dpid, Message::MultipartRequest(MultipartRequestBody::Table));
        }
    }

    /// The latest snapshot for a switch, if any reply arrived.
    pub fn snapshot(&self, dpid: u64) -> Option<&SwitchStats> {
        self.stats.get(&dpid)
    }

    /// Sum of packet counts over flows selected by `pred`, network-wide —
    /// e.g. "how many packets hit SAV deny rules".
    pub fn sum_flow_packets(&self, pred: impl Fn(&FlowStatsEntry) -> bool) -> u64 {
        self.stats
            .values()
            .flat_map(|s| s.flows.iter())
            .filter(|e| pred(e))
            .map(|e| e.packet_count)
            .sum()
    }
}

impl App for StatsCollectorApp {
    fn name(&self) -> &'static str {
        "stats-collector"
    }

    fn on_switch_up(&mut self, _ctx: &mut Ctx, dpid: u64) {
        if !self.ready.contains(&dpid) {
            self.ready.push(dpid);
        }
    }

    fn on_switch_down(&mut self, _ctx: &mut Ctx, dpid: u64) {
        self.ready.retain(|d| *d != dpid);
        self.stats.remove(&dpid);
    }

    fn on_stats_reply(&mut self, _ctx: &mut Ctx, dpid: u64, body: &MultipartReplyBody) {
        self.replies_seen += 1;
        let entry = self.stats.entry(dpid).or_default();
        match body {
            MultipartReplyBody::Flow(flows) => entry.flows = flows.clone(),
            MultipartReplyBody::PortStats(ports) => entry.ports = ports.clone(),
            MultipartReplyBody::Table(tables) => entry.tables = tables.clone(),
            MultipartReplyBody::PortDesc(_) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_sim::SimTime;

    #[test]
    fn request_all_targets_every_ready_switch() {
        let mut app = StatsCollectorApp::new();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, 1);
        app.on_switch_up(&mut ctx, 2);
        app.on_switch_up(&mut ctx, 2); // duplicate ignored
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.request_all(&mut ctx);
        let msgs = ctx.take();
        assert_eq!(msgs.len(), 6, "3 requests x 2 switches");
        assert!(msgs
            .iter()
            .all(|(_, m)| matches!(m, Message::MultipartRequest(_))));
    }

    #[test]
    fn replies_update_snapshot_and_switch_down_clears() {
        let mut app = StatsCollectorApp::new();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, 7);
        app.on_stats_reply(
            &mut ctx,
            7,
            &MultipartReplyBody::Table(vec![TableStats {
                table_id: 0,
                active_count: 5,
                lookup_count: 100,
                matched_count: 90,
            }]),
        );
        assert_eq!(app.snapshot(7).unwrap().tables[0].active_count, 5);
        assert_eq!(app.replies_seen, 1);
        app.on_switch_down(&mut ctx, 7);
        assert!(app.snapshot(7).is_none());
    }
}
