//! Built-in controller applications.

pub mod discovery;
pub mod l2_routing;
pub mod stats;

pub use discovery::DiscoveryApp;
pub use l2_routing::L2RoutingApp;
pub use stats::StatsCollectorApp;
