//! [`DiscoveryApp`] — LLDP-style link discovery.
//!
//! The SAV design brief assumes the controller knows the topology; this app
//! shows the assumption is dischargeable with the standard OpenFlow idiom
//! rather than configuration:
//!
//! 1. at switch-up, install a punt rule for EtherType 0x88CC (above every
//!    SAV rule — discovery frames are link-local and never forwarded) and
//!    request the switch's port list via `OFPMP_PORT_DESC`;
//! 2. when the port list arrives, emit one probe per live port via
//!    PACKET_OUT, carrying `(origin dpid, origin port)` in the payload;
//! 3. a probe punted by the *neighbouring* switch reveals one unidirected
//!    link `(origin dpid, origin port) → (receiver dpid, receiver port)`.
//!
//! Port-status changes re-probe the affected port, so links heal after
//! flaps. The discovered adjacency can be compared against (or replace)
//! the statically configured topology.

use crate::app::{App, Ctx, Disposition};
use sav_net::addr::MacAddr;
use sav_net::ethernet::{EtherType, EthernetFrame, EthernetRepr, ETHERNET_HEADER_LEN};
use sav_openflow::messages::{MultipartReplyBody, MultipartRequestBody, PacketIn, PortStatus};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::{Action, Instruction};
use std::collections::BTreeMap;

/// Priority of the discovery punt rule (above all SAV rules).
pub const PRIO_DISCOVERY: u16 = 50_000;
/// The LLDP EtherType.
pub const LLDP_ETHERTYPE: u16 = 0x88cc;
/// The LLDP nearest-bridge multicast destination.
pub const LLDP_DST: MacAddr = MacAddr([0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e]);

const MAGIC: &[u8; 8] = b"SAVLLDP1";

fn probe_frame(dpid: u64, port: u32) -> Vec<u8> {
    let mut buf = vec![0u8; ETHERNET_HEADER_LEN + 8 + 8 + 4];
    let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
    EthernetRepr {
        src: MacAddr::from_index(dpid),
        dst: LLDP_DST,
        ethertype: EtherType::Other(LLDP_ETHERTYPE),
    }
    .emit(&mut f);
    let p = f.payload_mut();
    p[0..8].copy_from_slice(MAGIC);
    p[8..16].copy_from_slice(&dpid.to_be_bytes());
    p[16..20].copy_from_slice(&port.to_be_bytes());
    buf
}

fn parse_probe(frame: &[u8]) -> Option<(u64, u32)> {
    let f = EthernetFrame::new_checked(frame).ok()?;
    if f.ethertype() != EtherType::Other(LLDP_ETHERTYPE) {
        return None;
    }
    let p = f.payload();
    if p.len() < 20 || &p[0..8] != MAGIC {
        return None;
    }
    let dpid = u64::from_be_bytes(p[8..16].try_into().ok()?);
    let port = u32::from_be_bytes(p[16..20].try_into().ok()?);
    Some((dpid, port))
}

/// The discovery application. Place it first in the chain.
#[derive(Default)]
pub struct DiscoveryApp {
    /// Directed adjacency: `(dpid, port)` → `(peer dpid, peer port)`.
    links: BTreeMap<(u64, u32), (u64, u32)>,
    /// Probes emitted (cost accounting).
    pub probes_sent: u64,
}

impl DiscoveryApp {
    /// An empty discovery state.
    pub fn new() -> DiscoveryApp {
        DiscoveryApp::default()
    }

    /// The discovered directed links.
    pub fn links(&self) -> &BTreeMap<(u64, u32), (u64, u32)> {
        &self.links
    }

    /// Undirected link set (each link once, ordered endpoint first).
    pub fn undirected_links(&self) -> Vec<((u64, u32), (u64, u32))> {
        let mut out: Vec<_> = self
            .links
            .iter()
            .map(|(&a, &b)| if a <= b { (a, b) } else { (b, a) })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl App for DiscoveryApp {
    fn name(&self) -> &'static str {
        "discovery"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        // Punt-only: discovery frames never traverse the fabric.
        ctx.install(
            dpid,
            sav_openflow::messages::FlowMod {
                priority: PRIO_DISCOVERY,
                instructions: vec![Instruction::ApplyActions(vec![Action::output(
                    sav_openflow::consts::port::CONTROLLER,
                )])],
                ..sav_openflow::messages::FlowMod::add(
                    OxmMatch::new().with(OxmField::EthType(LLDP_ETHERTYPE)),
                )
            },
        );
        ctx.send(
            dpid,
            sav_openflow::messages::Message::MultipartRequest(MultipartRequestBody::PortDesc),
        );
    }

    fn on_stats_reply(&mut self, ctx: &mut Ctx, dpid: u64, body: &MultipartReplyBody) {
        let MultipartReplyBody::PortDesc(ports) = body else {
            return;
        };
        for p in ports {
            if p.is_up() && p.port_no < sav_openflow::consts::port::MAX {
                self.probes_sent += 1;
                ctx.packet_out(
                    dpid,
                    sav_openflow::consts::port::CONTROLLER,
                    &[p.port_no],
                    probe_frame(dpid, p.port_no),
                );
            }
        }
    }

    fn on_packet_in(&mut self, _ctx: &mut Ctx, dpid: u64, pi: &PacketIn) -> Disposition {
        let Some(in_port) = pi.in_port() else {
            return Disposition::Continue;
        };
        let Some((origin_dpid, origin_port)) = parse_probe(&pi.data) else {
            return Disposition::Continue;
        };
        self.links
            .insert((origin_dpid, origin_port), (dpid, in_port));
        Disposition::Consumed
    }

    fn on_port_status(&mut self, ctx: &mut Ctx, dpid: u64, ps: &PortStatus) {
        let key = (dpid, ps.desc.port_no);
        if ps.desc.is_up() {
            // Re-probe the flapped port (both ends will re-learn).
            self.probes_sent += 1;
            ctx.packet_out(
                dpid,
                sav_openflow::consts::port::CONTROLLER,
                &[ps.desc.port_no],
                probe_frame(dpid, ps.desc.port_no),
            );
        } else {
            self.links.remove(&key);
            self.links.retain(|_, &mut peer| peer != key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_roundtrip() {
        let f = probe_frame(0x1234, 7);
        assert_eq!(parse_probe(&f), Some((0x1234, 7)));
        // Non-LLDP frames are ignored.
        assert_eq!(parse_probe(&[0u8; 40]), None);
        // Corrupt magic is ignored.
        let mut bad = probe_frame(1, 1);
        bad[ETHERNET_HEADER_LEN] = b'X';
        assert_eq!(parse_probe(&bad), None);
    }

    #[test]
    fn undirected_dedup() {
        let mut app = DiscoveryApp::new();
        app.links.insert((1, 1), (2, 1));
        app.links.insert((2, 1), (1, 1));
        app.links.insert((1, 2), (3, 1));
        assert_eq!(app.links().len(), 3);
        assert_eq!(app.undirected_links().len(), 2);
    }
}
