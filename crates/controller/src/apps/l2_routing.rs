//! [`L2RoutingApp`] — proactive destination-MAC forwarding, proxy-ARP and
//! host-location tracking.
//!
//! This is the base connectivity layer every scenario runs. On switch-up it
//! installs, per switch:
//!
//! * a priority-[`crate::PRIO_BRIDGE`] table-0 bridge (`goto` the forwarding
//!   table) so that scenarios *without* a SAV app still forward — SAV apps
//!   overlay higher-priority rules in table 0;
//! * one forwarding rule per known host MAC in table 1 (toward the host's
//!   attachment, over shortest paths);
//! * a broadcast punt and a table-miss punt.
//!
//! At packet-in time it tracks host locations (learning only on non-trunk
//! ports), answers ARP requests from its IP→MAC map (proxy ARP) and floods
//! along the spanning tree otherwise. When a host shows up on a new port —
//! migration — it reinstalls that host's forwarding rules everywhere, which
//! is the forwarding half of the convergence the SAV app also performs for
//! its bindings (Fig. 2).

use crate::app::{App, Ctx, Disposition};
use crate::{PRIO_BRIDGE, TABLE_FWD, TABLE_SAV};
use sav_net::addr::MacAddr;
use sav_net::packet::ParsedPacket;
use sav_openflow::consts::port as ofport;
use sav_openflow::messages::{FlowMod, PacketIn};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::{Action, Instruction};
use sav_topo::routes::Routes;
use sav_topo::{SwitchId, Topology};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Priority of per-host unicast rules in the forwarding table.
pub const PRIO_UNICAST: u16 = 100;
/// Priority of the broadcast punt rule.
pub const PRIO_BROADCAST: u16 = 50;

/// Counters exposed for the evaluation harness.
#[derive(Debug, Default, Clone, Copy)]
pub struct L2Stats {
    /// ARP requests answered directly by the controller.
    pub arps_proxied: u64,
    /// Frames flooded along the spanning tree.
    pub floods: u64,
    /// Host migrations detected (location changed).
    pub migrations: u64,
    /// Unicast punts forwarded by packet-out.
    pub unicast_punts: u64,
}

/// The forwarding/ARP/host-tracking application.
pub struct L2RoutingApp {
    topo: Arc<Topology>,
    routes: Arc<Routes>,
    /// Current host attachment points, by MAC.
    host_loc: HashMap<MacAddr, (u64, u32)>,
    /// IP → MAC map for proxy ARP (static plan + dynamic learning).
    ip_map: HashMap<Ipv4Addr, MacAddr>,
    /// Per-switch trunk ports (learning is disabled on these).
    trunks: HashMap<u64, Vec<u32>>,
    /// Counters.
    pub stats: L2Stats,
}

impl L2RoutingApp {
    /// Build from a topology and its routes; host locations and the ARP map
    /// are seeded from the static plan.
    pub fn new(topo: Arc<Topology>, routes: Arc<Routes>) -> L2RoutingApp {
        let mut host_loc = HashMap::new();
        let mut ip_map = HashMap::new();
        for h in topo.hosts() {
            host_loc.insert(h.mac, (h.switch.dpid(), h.port));
            ip_map.insert(h.ip, h.mac);
        }
        let trunks = topo
            .switches()
            .iter()
            .map(|s| (s.id.dpid(), topo.trunk_ports(s.id)))
            .collect();
        L2RoutingApp {
            topo,
            routes,
            host_loc,
            ip_map,
            trunks,
            stats: L2Stats::default(),
        }
    }

    /// The tracked location of a host MAC.
    pub fn location(&self, mac: MacAddr) -> Option<(u64, u32)> {
        self.host_loc.get(&mac).copied()
    }

    /// The tracked MAC for an IP (proxy-ARP view).
    pub fn mac_of(&self, ip: Ipv4Addr) -> Option<MacAddr> {
        self.ip_map.get(&ip).copied()
    }

    fn is_trunk(&self, dpid: u64, port: u32) -> bool {
        self.trunks
            .get(&dpid)
            .map(|t| t.contains(&port))
            .unwrap_or(false)
    }

    /// The forwarding rule for `mac` at switch `sw`, given the host's
    /// current location.
    fn unicast_rule(&self, sw: SwitchId, mac: MacAddr, loc: (u64, u32)) -> Option<FlowMod> {
        let (host_dpid, host_port) = loc;
        let out_port = if sw.dpid() == host_dpid {
            host_port
        } else {
            let host_sw = SwitchId::from_dpid(host_dpid)?;
            self.routes.next_port(sw, host_sw)?
        };
        Some(FlowMod {
            table_id: TABLE_FWD,
            priority: PRIO_UNICAST,
            instructions: vec![Instruction::apply_output(out_port)],
            ..FlowMod::add(OxmMatch::new().with(OxmField::EthDst(mac, None)))
        })
    }

    /// (Re-)install forwarding rules for one host on every switch.
    fn install_host_everywhere(&self, ctx: &mut Ctx, mac: MacAddr, loc: (u64, u32)) {
        for s in self.topo.switches() {
            if let Some(fm) = self.unicast_rule(s.id, mac, loc) {
                ctx.install(s.id.dpid(), fm);
            }
        }
    }

    fn flood(&mut self, ctx: &mut Ctx, dpid: u64, in_port: u32, frame: Vec<u8>) {
        let Some(sw) = SwitchId::from_dpid(dpid) else {
            return;
        };
        let ports = self.routes.flood_ports(&self.topo, sw, in_port);
        if !ports.is_empty() {
            self.stats.floods += 1;
            ctx.packet_out(dpid, in_port, &ports, frame);
        }
    }

    fn learn(&mut self, ctx: &mut Ctx, dpid: u64, in_port: u32, src_mac: MacAddr) {
        if self.is_trunk(dpid, in_port) || !src_mac.is_unicast() {
            return;
        }
        let new_loc = (dpid, in_port);
        match self.host_loc.get(&src_mac) {
            Some(&old) if old == new_loc => {}
            old => {
                if old.is_some() {
                    self.stats.migrations += 1;
                }
                self.host_loc.insert(src_mac, new_loc);
                self.install_host_everywhere(ctx, src_mac, new_loc);
            }
        }
    }
}

impl App for L2RoutingApp {
    fn name(&self) -> &'static str {
        "l2-routing"
    }

    fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
        // Table-0 bridge: everything falls through to forwarding unless a
        // SAV app overlays higher-priority rules.
        ctx.install(
            dpid,
            FlowMod {
                table_id: TABLE_SAV,
                priority: PRIO_BRIDGE,
                instructions: vec![Instruction::GotoTable(TABLE_FWD)],
                ..FlowMod::add(OxmMatch::new())
            },
        );
        // Per-host unicast rules.
        let Some(sw) = SwitchId::from_dpid(dpid) else {
            return;
        };
        for (mac, loc) in self.host_loc.clone() {
            if let Some(fm) = self.unicast_rule(sw, mac, loc) {
                ctx.install(dpid, fm);
            }
        }
        // Broadcast punt.
        ctx.install(
            dpid,
            FlowMod {
                table_id: TABLE_FWD,
                priority: PRIO_BROADCAST,
                instructions: vec![Instruction::ApplyActions(vec![Action::output(
                    ofport::CONTROLLER,
                )])],
                ..FlowMod::add(OxmMatch::new().with(OxmField::EthDst(MacAddr::BROADCAST, None)))
            },
        );
        // Table-miss punt (unknown unicast).
        ctx.install(
            dpid,
            FlowMod {
                table_id: TABLE_FWD,
                priority: 0,
                instructions: vec![Instruction::ApplyActions(vec![Action::output(
                    ofport::CONTROLLER,
                )])],
                ..FlowMod::add(OxmMatch::new())
            },
        );
    }

    fn on_packet_in(&mut self, ctx: &mut Ctx, dpid: u64, pi: &PacketIn) -> Disposition {
        let Some(in_port) = pi.in_port() else {
            return Disposition::Continue;
        };
        let Ok(parsed) = ParsedPacket::parse(&pi.data) else {
            return Disposition::Continue;
        };
        self.learn(ctx, dpid, in_port, parsed.ethernet.src);

        if let Some(arp) = parsed.arp {
            // Gratuitous ARP refreshes the IP map; requests get proxied.
            if arp.sender_ip != Ipv4Addr::UNSPECIFIED {
                self.ip_map.insert(arp.sender_ip, arp.sender_mac);
            }
            if arp.op == sav_net::arp::ArpOp::Request && arp.target_ip != arp.sender_ip {
                if let Some(&mac) = self.ip_map.get(&arp.target_ip) {
                    let reply = sav_net::arp::ArpRepr {
                        op: sav_net::arp::ArpOp::Reply,
                        sender_mac: mac,
                        sender_ip: arp.target_ip,
                        target_mac: arp.sender_mac,
                        target_ip: arp.sender_ip,
                    };
                    self.stats.arps_proxied += 1;
                    ctx.packet_out(
                        dpid,
                        in_port,
                        &[in_port],
                        sav_net::builder::build_arp(&reply),
                    );
                    return Disposition::Consumed;
                }
            }
            // Unknown target (or gratuitous): flood along the tree.
            self.flood(ctx, dpid, in_port, pi.data.clone());
            return Disposition::Consumed;
        }

        let dst = parsed.ethernet.dst;
        if dst.is_broadcast() || dst.is_multicast() {
            self.flood(ctx, dpid, in_port, pi.data.clone());
            return Disposition::Continue; // others (e.g. SAV snoop) may care
        }
        // Unknown/transient unicast: forward toward the tracked location.
        if let Some(&loc) = self.host_loc.get(&dst) {
            if let Some(sw) = SwitchId::from_dpid(dpid) {
                if let Some(fm) = self.unicast_rule(sw, dst, loc) {
                    if let Instruction::ApplyActions(acts) = &fm.instructions[0] {
                        if let Action::Output { port, .. } = acts[0] {
                            self.stats.unicast_punts += 1;
                            ctx.packet_out(dpid, in_port, &[port], pi.data.clone());
                        }
                    }
                }
            }
        }
        Disposition::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_openflow::messages::{Message, PacketInReason};
    use sav_sim::SimTime;
    use sav_topo::generators;

    fn mk() -> (Arc<Topology>, Arc<Routes>, L2RoutingApp) {
        let topo = Arc::new(generators::linear(2, 2));
        let routes = Arc::new(Routes::compute(&topo));
        let app = L2RoutingApp::new(topo.clone(), routes.clone());
        (topo, routes, app)
    }

    fn msgs_for(ctx: Ctx, dpid: u64) -> Vec<Message> {
        ctx.take()
            .into_iter()
            .filter(|(d, _)| *d == dpid)
            .map(|(_, m)| m)
            .collect()
    }

    #[test]
    fn switch_up_installs_bridge_unicast_and_punts() {
        let (topo, _, mut app) = mk();
        let dpid = topo.switches()[0].id.dpid();
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_switch_up(&mut ctx, dpid);
        let msgs = msgs_for(ctx, dpid);
        // bridge + 4 hosts + broadcast + miss = 7 flow mods.
        assert_eq!(msgs.len(), 7);
        let fms: Vec<&FlowMod> = msgs
            .iter()
            .map(|m| match m {
                Message::FlowMod(fm) => fm,
                other => panic!("expected FlowMod, got {other:?}"),
            })
            .collect();
        assert!(fms
            .iter()
            .any(|fm| fm.table_id == TABLE_SAV && fm.priority == PRIO_BRIDGE));
        assert_eq!(
            fms.iter()
                .filter(|fm| fm.table_id == TABLE_FWD && fm.priority == PRIO_UNICAST)
                .count(),
            4
        );
    }

    #[test]
    fn local_hosts_get_their_port_remote_get_trunk() {
        let (topo, _, app) = mk();
        let s0 = topo.switches()[0].id;
        let local = topo.hosts_on(s0).next().unwrap();
        let remote = topo.hosts().iter().find(|h| h.switch != s0).unwrap();
        let fm = app
            .unicast_rule(s0, local.mac, (local.switch.dpid(), local.port))
            .unwrap();
        match &fm.instructions[0] {
            Instruction::ApplyActions(a) => {
                assert_eq!(a[0], Action::output(local.port));
            }
            other => panic!("unexpected {other:?}"),
        }
        let fm = app
            .unicast_rule(s0, remote.mac, (remote.switch.dpid(), remote.port))
            .unwrap();
        let trunk = topo.trunk_ports(s0)[0];
        match &fm.instructions[0] {
            Instruction::ApplyActions(a) => {
                assert_eq!(a[0], Action::output(trunk));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    fn packet_in(in_port: u32, frame: Vec<u8>) -> PacketIn {
        PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: frame.len() as u16,
            reason: PacketInReason::NoMatch,
            table_id: TABLE_FWD,
            cookie: 0,
            match_: OxmMatch::new().with(OxmField::InPort(in_port)),
            data: frame,
        }
    }

    #[test]
    fn proxy_arp_answers_known_ip() {
        let (topo, _, mut app) = mk();
        let h0 = &topo.hosts()[0];
        let h1 = &topo.hosts()[1];
        let req = sav_net::arp::ArpRepr::request(h0.mac, h0.ip, h1.ip);
        let frame = sav_net::builder::build_arp(&req);
        let mut ctx = Ctx::new(SimTime::ZERO);
        let disp = app.on_packet_in(&mut ctx, h0.switch.dpid(), &packet_in(h0.port, frame));
        assert_eq!(disp, Disposition::Consumed);
        assert_eq!(app.stats.arps_proxied, 1);
        let msgs = ctx.take();
        // One packet-out back to the requester's port with the ARP reply.
        let po = msgs
            .iter()
            .find_map(|(_, m)| match m {
                Message::PacketOut(po) => Some(po),
                _ => None,
            })
            .expect("packet-out");
        assert_eq!(po.actions, vec![Action::output(h0.port)]);
        let parsed = ParsedPacket::parse(&po.data).unwrap();
        let reply = parsed.arp.unwrap();
        assert_eq!(reply.sender_mac, h1.mac);
        assert_eq!(reply.sender_ip, h1.ip);
    }

    #[test]
    fn unknown_arp_floods_along_tree() {
        let (topo, _, mut app) = mk();
        let h0 = &topo.hosts()[0];
        let req = sav_net::arp::ArpRepr::request(h0.mac, h0.ip, "10.99.0.1".parse().unwrap());
        let frame = sav_net::builder::build_arp(&req);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_packet_in(&mut ctx, h0.switch.dpid(), &packet_in(h0.port, frame));
        assert_eq!(app.stats.floods, 1);
        assert_eq!(app.stats.arps_proxied, 0);
    }

    #[test]
    fn migration_reinstalls_rules() {
        let (topo, _, mut app) = mk();
        let h0 = &topo.hosts()[0];
        // h0 shows up on a different (non-trunk) port of switch 1.
        let s1 = topo.switches()[1].id;
        let new_port = 99; // not a trunk on s1
        let req = sav_net::arp::ArpRepr::request(h0.mac, h0.ip, h0.ip);
        let frame = sav_net::builder::build_arp(&req);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_packet_in(&mut ctx, s1.dpid(), &packet_in(new_port, frame));
        assert_eq!(app.stats.migrations, 1);
        assert_eq!(app.location(h0.mac), Some((s1.dpid(), new_port)));
        // Forwarding rules for h0 reinstalled on both switches.
        let dpids: Vec<u64> = ctx
            .take()
            .into_iter()
            .filter(|(_, m)| matches!(m, Message::FlowMod(fm) if fm.priority == PRIO_UNICAST))
            .map(|(d, _)| d)
            .collect();
        assert_eq!(dpids.len(), 2);
        assert!(dpids.contains(&topo.switches()[0].id.dpid()));
        assert!(dpids.contains(&s1.dpid()));
    }

    #[test]
    fn trunk_ports_do_not_learn() {
        let (topo, _, mut app) = mk();
        let h0 = &topo.hosts()[0];
        let s1 = topo.switches()[1].id;
        let trunk = topo.trunk_ports(s1)[0];
        let req = sav_net::arp::ArpRepr::request(h0.mac, h0.ip, h0.ip);
        let frame = sav_net::builder::build_arp(&req);
        let mut ctx = Ctx::new(SimTime::ZERO);
        app.on_packet_in(&mut ctx, s1.dpid(), &packet_in(trunk, frame));
        assert_eq!(app.stats.migrations, 0);
        assert_eq!(app.location(h0.mac), Some((h0.switch.dpid(), h0.port)));
    }
}
