//! [`Testbed`] — a deterministic full-network simulation.
//!
//! Wires together everything below it: `sav-dataplane` switches and hosts
//! built from a `sav-topo` [`Topology`], a [`Controller`] with its app
//! chain, control channels and data links with configurable latencies, and
//! an event queue from `sav-sim`. Every control interaction crosses the
//! real OpenFlow codec as bytes; every data-plane interaction is a real
//! Ethernet frame.
//!
//! Workloads drive the testbed through [`TestbedCmd`]s scheduled at virtual
//! times; measurements come out as [`DeliveryRecord`]s (what reached which
//! host, when) plus the controller/switch counters.

use crate::controller::{Controller, ControllerOutput, ControllerStats};
use sav_dataplane::host::{Delivery, Host, HostConfig, SpoofMode};
use sav_dataplane::switch::{OpenFlowSwitch, SwitchConfig, SwitchOutput};
use sav_net::addr::MacAddr;
use sav_openflow::ports::PortDesc;
use sav_sim::{EventQueue, SimDuration, SimTime};
use sav_topo::routes::Routes;
use sav_topo::{HostNode, SwitchId, Topology};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Unconnected spare ports per switch, available for host migration.
pub const SPARE_PORTS: u32 = 8;

/// Latency model and switch sizing.
#[derive(Debug, Clone, Copy)]
pub struct TestbedConfig {
    /// Host ↔ edge-switch link latency.
    pub host_link_latency: SimDuration,
    /// Switch ↔ switch link latency.
    pub switch_link_latency: SimDuration,
    /// Switch ↔ controller channel latency (one way).
    pub control_latency: SimDuration,
    /// Per-table flow capacity of every switch.
    pub table_capacity: usize,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            host_link_latency: SimDuration::from_micros(10),
            switch_link_latency: SimDuration::from_micros(50),
            control_latency: SimDuration::from_micros(200),
            table_capacity: 8192,
        }
    }
}

/// A workload action applied to the running network.
#[derive(Debug, Clone)]
pub enum TestbedCmd {
    /// Host sends a UDP datagram (optionally spoofed).
    SendUdp {
        /// Sending host index.
        host: usize,
        /// Destination IP.
        dst_ip: Ipv4Addr,
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Payload bytes (workloads embed their tags here).
        payload: Vec<u8>,
        /// Source falsification, if any.
        spoof: SpoofMode,
    },
    /// Host starts a DHCP exchange.
    DhcpDiscover {
        /// Host index.
        host: usize,
    },
    /// Host releases its DHCP address.
    DhcpRelease {
        /// Host index.
        host: usize,
    },
    /// Physically move a host to a spare port of another switch. The old
    /// port goes link-down; the host announces itself with a gratuitous ARP
    /// from the new port.
    MoveHost {
        /// Host index.
        host: usize,
        /// Target switch index.
        to_switch: usize,
    },
    /// Flip a port's link state.
    SetPortUp {
        /// Switch index.
        switch: usize,
        /// Port number.
        port: u32,
        /// Desired state.
        up: bool,
    },
}

/// One datagram delivered to a host application.
#[derive(Debug, Clone)]
pub struct DeliveryRecord {
    /// Virtual arrival time.
    pub time: SimTime,
    /// Receiving host index.
    pub host: usize,
    /// The delivery itself.
    pub delivery: Delivery,
}

/// Summary counters after a run.
#[derive(Debug, Clone)]
pub struct TestbedReport {
    /// Virtual end time.
    pub end_time: SimTime,
    /// Events processed.
    pub events: u64,
    /// Controller counters.
    pub controller: ControllerStats,
    /// Total flows installed per switch (index-aligned).
    pub flows_per_switch: Vec<usize>,
    /// Deliveries recorded.
    pub deliveries: usize,
}

enum Ev {
    Cmd(TestbedCmd),
    /// Frame arriving at a switch port.
    ToSwitch {
        sw: usize,
        port: u32,
        frame: Vec<u8>,
    },
    /// Frame arriving at a host.
    ToHost {
        host: usize,
        frame: Vec<u8>,
    },
    /// Control bytes arriving at the controller from switch `sw`.
    CtrlRx {
        sw: usize,
        bytes: Vec<u8>,
    },
    /// Control bytes arriving at switch `sw` from the controller.
    SwitchRx {
        sw: usize,
        bytes: Vec<u8>,
    },
    /// Flow-expiry sweep at a switch.
    Sweep {
        sw: usize,
    },
}

/// The assembled simulation.
pub struct Testbed {
    topo: Arc<Topology>,
    #[allow(dead_code)]
    routes: Arc<Routes>,
    config: TestbedConfig,
    switches: Vec<OpenFlowSwitch>,
    hosts: Vec<Host>,
    host_attach: Vec<(usize, u32)>,
    used_ports: Vec<HashSet<u32>>,
    controller: Controller,
    events: EventQueue<Ev>,
    sweep_scheduled: Vec<Option<SimTime>>,
    next_dhcp_xid: u32,
    events_processed: u64,
    /// All datagrams delivered to host applications, in arrival order.
    pub deliveries: Vec<DeliveryRecord>,
    /// Frames injected via SendUdp.
    pub frames_sent: u64,
}

impl Testbed {
    /// Assemble a testbed. `host_init` builds each host's runtime config
    /// from its topology node (choose apps, override the planned IP for
    /// DHCP scenarios, pre-seed ARP in the caller afterwards if desired).
    pub fn new(
        topo: Arc<Topology>,
        routes: Arc<Routes>,
        controller: Controller,
        config: TestbedConfig,
        mut host_init: impl FnMut(&HostNode) -> HostConfig,
    ) -> Testbed {
        let mut switches = Vec::new();
        let mut used_ports = Vec::new();
        for s in topo.switches() {
            let n = topo.port_count(s.id) + SPARE_PORTS;
            let ports: Vec<PortDesc> = (1..=n)
                .map(|p| {
                    PortDesc::new(
                        p,
                        MacAddr::from_index(0xff00_0000 + s.id.dpid() * 256 + u64::from(p)),
                    )
                })
                .collect();
            let mut cfg = SwitchConfig::new(s.id.dpid());
            cfg.max_entries_per_table = config.table_capacity;
            switches.push(OpenFlowSwitch::new(cfg, ports));
            let mut used: HashSet<u32> = topo.trunk_ports(s.id).into_iter().collect();
            used.extend(topo.host_ports(s.id));
            used_ports.push(used);
        }
        let hosts: Vec<Host> = topo
            .hosts()
            .iter()
            .map(|h| Host::new(host_init(h)))
            .collect();
        let host_attach = topo.hosts().iter().map(|h| (h.switch.0, h.port)).collect();
        let n_sw = switches.len();
        Testbed {
            topo,
            routes,
            config,
            switches,
            hosts,
            host_attach,
            used_ports,
            controller,
            events: EventQueue::new(),
            sweep_scheduled: vec![None; n_sw],
            next_dhcp_xid: 1,
            events_processed: 0,
            deliveries: Vec::new(),
            frames_sent: 0,
        }
    }

    /// Connect every switch's control channel at time zero. Call once
    /// before the first `run_until`.
    pub fn connect_control_plane(&mut self) {
        for sw in 0..self.switches.len() {
            let greet = self.controller.on_connect(sw);
            self.events.push(
                SimTime::ZERO + self.config.control_latency,
                Ev::SwitchRx { sw, bytes: greet },
            );
            let hello = self.switches[sw].hello();
            self.events.push(
                SimTime::ZERO + self.config.control_latency,
                Ev::CtrlRx { sw, bytes: hello },
            );
        }
    }

    /// Schedule a workload command.
    pub fn schedule(&mut self, at: SimTime, cmd: TestbedCmd) {
        self.events.push(at, Ev::Cmd(cmd));
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Pre-seed every host's ARP cache with the full static plan (skips
    /// resolution traffic in experiments that are not about ARP).
    pub fn seed_all_arp(&mut self) {
        let entries: Vec<(Ipv4Addr, MacAddr)> =
            self.topo.hosts().iter().map(|h| (h.ip, h.mac)).collect();
        for host in &mut self.hosts {
            for (ip, mac) in &entries {
                host.learn_arp(*ip, *mac);
            }
        }
    }

    /// Drive the simulation until `horizon` (inclusive) or quiescence.
    /// Returns the number of events processed by this call.
    pub fn run_until(&mut self, horizon: SimTime) -> u64 {
        let start = self.events_processed;
        while let Some(t) = self.events.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.events.pop().expect("peeked event");
            self.events_processed += 1;
            self.handle(now, ev);
        }
        self.events_processed - start
    }

    /// Summarize the run so far.
    pub fn report(&self) -> TestbedReport {
        TestbedReport {
            end_time: self.events.now(),
            events: self.events_processed,
            controller: self.controller.stats,
            flows_per_switch: self.switches.iter().map(|s| s.total_flows()).collect(),
            deliveries: self.deliveries.len(),
        }
    }

    /// Borrow a switch (assertions, stats).
    pub fn switch(&self, i: usize) -> &OpenFlowSwitch {
        &self.switches[i]
    }

    /// Borrow a host.
    pub fn host(&self, i: usize) -> &Host {
        &self.hosts[i]
    }

    /// Borrow the controller (e.g. `with_app` for app state).
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }

    /// The topology this testbed was built from.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Where a host is currently attached: `(switch index, port)`.
    pub fn attachment(&self, host: usize) -> (usize, u32) {
        self.host_attach[host]
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Cmd(cmd) => self.handle_cmd(now, cmd),
            Ev::ToSwitch { sw, port, frame } => {
                let out = self.switches[sw].receive_frame(now, port, frame);
                self.route_switch_output(now, sw, out);
                self.maybe_schedule_sweep(now, sw);
            }
            Ev::ToHost { host, frame } => {
                let out = self.hosts[host].on_frame(&frame);
                for d in out.delivered {
                    self.deliveries.push(DeliveryRecord {
                        time: now,
                        host,
                        delivery: d,
                    });
                }
                for f in out.tx {
                    self.host_tx(now, host, f);
                }
            }
            Ev::CtrlRx { sw, bytes } => match self.controller.on_bytes(now, sw, &bytes) {
                Ok(out) => self.route_controller_output(now, out),
                Err(_) => {
                    let out = self.controller.on_disconnect(now, sw);
                    self.route_controller_output(now, out);
                }
            },
            Ev::SwitchRx { sw, bytes } => {
                match self.switches[sw].handle_controller_bytes(now, &bytes) {
                    Ok(out) => {
                        self.route_switch_output(now, sw, out);
                        self.maybe_schedule_sweep(now, sw);
                    }
                    Err(_) => { /* poisoned control stream: drop silently */ }
                }
            }
            Ev::Sweep { sw } => {
                self.sweep_scheduled[sw] = None;
                let out = self.switches[sw].tick(now);
                self.route_switch_output(now, sw, out);
                self.maybe_schedule_sweep(now, sw);
            }
        }
    }

    fn handle_cmd(&mut self, now: SimTime, cmd: TestbedCmd) {
        match cmd {
            TestbedCmd::SendUdp {
                host,
                dst_ip,
                src_port,
                dst_port,
                payload,
                spoof,
            } => {
                self.frames_sent += 1;
                let out = self.hosts[host].send_udp(dst_ip, src_port, dst_port, &payload, spoof);
                for f in out.tx {
                    self.host_tx(now, host, f);
                }
            }
            TestbedCmd::DhcpDiscover { host } => {
                let xid = self.next_dhcp_xid;
                self.next_dhcp_xid += 1;
                let out = self.hosts[host].dhcp_discover(xid);
                for f in out.tx {
                    self.host_tx(now, host, f);
                }
            }
            TestbedCmd::DhcpRelease { host } => {
                let xid = self.next_dhcp_xid;
                self.next_dhcp_xid += 1;
                let out = self.hosts[host].dhcp_release(xid);
                for f in out.tx {
                    self.host_tx(now, host, f);
                }
            }
            TestbedCmd::MoveHost { host, to_switch } => {
                let (old_sw, old_port) = self.host_attach[host];
                // Old port goes down; PORT_STATUS flows to the controller.
                let out = self.switches[old_sw].set_port_up(now, old_port, false);
                self.route_switch_output(now, old_sw, out);
                self.used_ports[old_sw].remove(&old_port);
                // Claim a spare port on the target switch.
                let new_port = self.switches[to_switch]
                    .port_numbers()
                    .into_iter()
                    .find(|p| !self.used_ports[to_switch].contains(p))
                    .expect("no spare port left for migration");
                self.used_ports[to_switch].insert(new_port);
                // Make sure it is up (it may have been downed by an earlier move).
                let out = self.switches[to_switch].set_port_up(now, new_port, true);
                self.route_switch_output(now, to_switch, out);
                self.host_attach[host] = (to_switch, new_port);
                // Gratuitous ARP from the new location announces the move.
                let h = &self.hosts[host];
                let garp = sav_net::arp::ArpRepr {
                    op: sav_net::arp::ArpOp::Request,
                    sender_mac: h.mac,
                    sender_ip: h.ip,
                    target_mac: MacAddr::ZERO,
                    target_ip: h.ip,
                };
                let frame = sav_net::builder::build_arp(&garp);
                self.host_tx(now, host, frame);
            }
            TestbedCmd::SetPortUp { switch, port, up } => {
                let out = self.switches[switch].set_port_up(now, port, up);
                self.route_switch_output(now, switch, out);
            }
        }
    }

    fn host_tx(&mut self, now: SimTime, host: usize, frame: Vec<u8>) {
        let (sw, port) = self.host_attach[host];
        self.events.push(
            now + self.config.host_link_latency,
            Ev::ToSwitch { sw, port, frame },
        );
    }

    fn route_switch_output(&mut self, now: SimTime, sw: usize, out: SwitchOutput) {
        for bytes in out.to_controller {
            self.events
                .push(now + self.config.control_latency, Ev::CtrlRx { sw, bytes });
        }
        for (port, frame) in out.tx {
            // Inter-switch link?
            if let Some((peer, peer_port)) = self.topo.switch_peer(SwitchId(sw), port) {
                self.events.push(
                    now + self.config.switch_link_latency,
                    Ev::ToSwitch {
                        sw: peer.0,
                        port: peer_port,
                        frame,
                    },
                );
                continue;
            }
            // Host attachment (dynamic — includes migrated hosts). Shared
            // ports behave like a hub: every attached host receives the
            // frame and filters by MAC itself.
            let listeners: Vec<usize> = self
                .host_attach
                .iter()
                .enumerate()
                .filter(|(_, &(s, p))| s == sw && p == port)
                .map(|(i, _)| i)
                .collect();
            for host in listeners {
                self.events.push(
                    now + self.config.host_link_latency,
                    Ev::ToHost {
                        host,
                        frame: frame.clone(),
                    },
                );
            }
            // Unconnected spare port: the frame vanishes.
        }
    }

    fn route_controller_output(&mut self, now: SimTime, out: ControllerOutput) {
        for (conn, bytes) in out.to_switch {
            self.events.push(
                now + self.config.control_latency,
                Ev::SwitchRx { sw: conn, bytes },
            );
        }
    }

    fn maybe_schedule_sweep(&mut self, now: SimTime, sw: usize) {
        let Some(t) = self.switches[sw].next_expiry() else {
            return;
        };
        let t = t.max(now);
        match self.sweep_scheduled[sw] {
            Some(existing) if existing <= t => {}
            _ => {
                self.sweep_scheduled[sw] = Some(t);
                self.events.push(t, Ev::Sweep { sw });
            }
        }
    }

    /// Ask a [`crate::apps::StatsCollectorApp`] in the chain (if any) to
    /// poll every switch, and route the requests. Replies arrive through
    /// the normal event flow; read them back via
    /// `controller_mut().with_app::<StatsCollectorApp, _>(...)` after a
    /// further `run_until`.
    pub fn poll_stats(&mut self, now: SimTime) {
        let mut ctx = crate::app::Ctx::new(now);
        let polled = self
            .controller
            .with_app::<crate::apps::StatsCollectorApp, _>(|app| app.request_all(&mut ctx))
            .is_some();
        if polled {
            let msgs = ctx.take();
            self.controller_send(now, msgs);
        }
    }

    /// Fire one controller poll tick ([`crate::Controller::poll_tick`]):
    /// every app's `on_poll` runs for every ready switch and the resulting
    /// requests (stats poller multiparts, etc.) are routed to the switches.
    /// Replies come back through the normal event flow — interleave with
    /// `run_until` to model a periodic poll interval.
    pub fn poll_tick(&mut self, now: SimTime) {
        let out = self.controller.poll_tick(now);
        self.route_controller_output(now, out);
    }

    /// Drive workload commands directly through the app-visible controller
    /// send path (used by SAV apps that need to pre-install static config).
    pub fn controller_send(
        &mut self,
        now: SimTime,
        msgs: Vec<(u64, sav_openflow::messages::Message)>,
    ) {
        let mut out = ControllerOutput::default();
        self.controller.send_all(msgs, &mut out);
        self.route_controller_output(now, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::L2RoutingApp;
    use sav_dataplane::host::HostApp;
    use sav_topo::generators;

    fn mk_testbed(topo: Topology) -> Testbed {
        let topo = Arc::new(topo);
        let routes = Arc::new(Routes::compute(&topo));
        let ctrl = Controller::new(vec![Box::new(L2RoutingApp::new(
            topo.clone(),
            routes.clone(),
        ))]);
        Testbed::new(topo, routes, ctrl, TestbedConfig::default(), |h| {
            HostConfig {
                mac: h.mac,
                ip: h.ip,
                app: HostApp::UdpEcho { port: 7 },
            }
        })
    }

    fn settle(tb: &mut Testbed) {
        tb.connect_control_plane();
        tb.run_until(SimTime::from_millis(100));
    }

    #[test]
    fn control_plane_converges() {
        let mut tb = mk_testbed(generators::linear(3, 2));
        settle(&mut tb);
        assert_eq!(tb.controller_mut().ready_dpids().len(), 3);
        // Every switch got its proactive rules: bridge + hosts + bcast + miss.
        for i in 0..3 {
            assert!(tb.switch(i).total_flows() >= 6 + 3);
        }
    }

    #[test]
    fn end_to_end_udp_echo_same_switch() {
        let mut tb = mk_testbed(generators::linear(1, 2));
        settle(&mut tb);
        let dst = tb.topology().hosts()[1].ip;
        tb.schedule(
            SimTime::from_millis(200),
            TestbedCmd::SendUdp {
                host: 0,
                dst_ip: dst,
                src_port: 5000,
                dst_port: 7,
                payload: b"ping".to_vec(),
                spoof: SpoofMode::None,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        // Request delivered to host 1, echo delivered back to host 0.
        assert_eq!(tb.deliveries.len(), 2, "request + echo");
        assert_eq!(tb.deliveries[0].host, 1);
        assert_eq!(tb.deliveries[0].delivery.payload, b"ping");
        assert_eq!(tb.deliveries[1].host, 0);
        assert_eq!(tb.deliveries[1].delivery.payload, b"ping");
    }

    #[test]
    fn end_to_end_udp_echo_across_switches() {
        let mut tb = mk_testbed(generators::campus(4, 2));
        settle(&mut tb);
        let topo = tb.topology();
        // Pick hosts on different edges.
        let h_src = 0;
        let h_dst = topo.hosts().len() - 1;
        assert_ne!(topo.hosts()[h_src].switch, topo.hosts()[h_dst].switch);
        let dst_ip = topo.hosts()[h_dst].ip;
        tb.schedule(
            SimTime::from_millis(200),
            TestbedCmd::SendUdp {
                host: h_src,
                dst_ip,
                src_port: 1234,
                dst_port: 7,
                payload: b"hello-campus".to_vec(),
                spoof: SpoofMode::None,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.deliveries.len(), 2);
        assert_eq!(tb.deliveries[0].host, h_dst);
        assert_eq!(tb.deliveries[1].host, h_src);
    }

    #[test]
    fn arp_is_proxied_not_flooded_for_known_hosts() {
        let mut tb = mk_testbed(generators::linear(2, 2));
        settle(&mut tb);
        // No seeded ARP: host 0 must resolve host 2's IP (different switch).
        let dst_ip = tb.topology().hosts()[2].ip;
        tb.schedule(
            SimTime::from_millis(200),
            TestbedCmd::SendUdp {
                host: 0,
                dst_ip,
                src_port: 1,
                dst_port: 7,
                payload: b"x".to_vec(),
                spoof: SpoofMode::None,
            },
        );
        tb.run_until(SimTime::from_secs(1));
        assert_eq!(tb.deliveries.len(), 2, "resolution then delivery + echo");
        let proxied = tb
            .controller_mut()
            .with_app::<L2RoutingApp, _>(|a| a.stats.arps_proxied)
            .unwrap();
        // One resolution by the sender, one by the echo responder.
        assert_eq!(proxied, 2);
    }

    #[test]
    fn dhcp_end_to_end_over_dataplane() {
        // Host 0 is the DHCP server; host 1 boots unaddressed.
        let topo = generators::linear(1, 2);
        let pool: sav_net::addr::Ipv4Cidr = "10.0.0.0/24".parse().unwrap();
        let topo = Arc::new(topo);
        let routes = Arc::new(Routes::compute(&topo));
        let ctrl = Controller::new(vec![Box::new(L2RoutingApp::new(
            topo.clone(),
            routes.clone(),
        ))]);
        let mut tb = Testbed::new(topo.clone(), routes, ctrl, TestbedConfig::default(), |h| {
            if h.id.0 == 0 {
                HostConfig {
                    mac: h.mac,
                    ip: h.ip,
                    app: HostApp::DhcpServer(sav_dataplane::host::DhcpServerState::new(
                        pool, 100, 3600,
                    )),
                }
            } else {
                HostConfig {
                    mac: h.mac,
                    ip: Ipv4Addr::UNSPECIFIED,
                    app: HostApp::Sink,
                }
            }
        });
        tb.connect_control_plane();
        tb.run_until(SimTime::from_millis(100));
        tb.schedule(
            SimTime::from_millis(200),
            TestbedCmd::DhcpDiscover { host: 1 },
        );
        tb.run_until(SimTime::from_secs(2));
        assert_eq!(
            tb.host(1).ip,
            pool.nth(100).unwrap(),
            "client bound via data-plane DORA"
        );
    }

    #[test]
    fn migration_updates_forwarding() {
        let mut tb = mk_testbed(generators::linear(3, 2));
        settle(&mut tb);
        let dst_ip = tb.topology().hosts()[0].ip;
        // Move host 0 from switch 0 to switch 2.
        tb.schedule(
            SimTime::from_millis(200),
            TestbedCmd::MoveHost {
                host: 0,
                to_switch: 2,
            },
        );
        // After the move, host 5 (on switch 2) sends to host 0.
        tb.schedule(
            SimTime::from_millis(400),
            TestbedCmd::SendUdp {
                host: 5,
                dst_ip,
                src_port: 9,
                dst_port: 7,
                payload: b"after-move".to_vec(),
                spoof: SpoofMode::None,
            },
        );
        tb.run_until(SimTime::from_secs(2));
        assert_eq!(tb.attachment(0).0, 2);
        let got: Vec<&DeliveryRecord> = tb
            .deliveries
            .iter()
            .filter(|d| d.host == 0 && d.delivery.payload == b"after-move")
            .collect();
        assert_eq!(got.len(), 1, "traffic reaches the migrated host");
        let migrations = tb
            .controller_mut()
            .with_app::<L2RoutingApp, _>(|a| a.stats.migrations)
            .unwrap();
        assert_eq!(migrations, 1);
    }

    #[test]
    fn determinism_same_seedless_run() {
        let run = || {
            let mut tb = mk_testbed(generators::campus(4, 3));
            settle(&mut tb);
            let dst = tb.topology().hosts()[5].ip;
            for i in 0..5 {
                tb.schedule(
                    SimTime::from_millis(200 + i * 10),
                    TestbedCmd::SendUdp {
                        host: 0,
                        dst_ip: dst,
                        src_port: 40000 + i as u16,
                        dst_port: 7,
                        payload: vec![i as u8],
                        spoof: SpoofMode::None,
                    },
                );
            }
            tb.run_until(SimTime::from_secs(2));
            let r = tb.report();
            (r.events, r.deliveries, r.flows_per_switch.clone())
        };
        assert_eq!(run(), run());
    }
}
