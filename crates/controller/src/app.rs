//! The controller application interface.
//!
//! An [`App`] is a state machine fed switch events; it reacts by queueing
//! OpenFlow messages through [`Ctx`]. Apps are chained: every app sees every
//! event, in registration order (the convention of Ryu/Floodlight-style
//! platforms). An app can *consume* a PACKET_IN to stop later apps from
//! also reacting to it (e.g. the DHCP server consumes DHCP packet-ins so
//! the forwarding app does not try to unicast-learn from broadcasts).

use sav_obs::TraceId;
use sav_openflow::messages::{
    FlowMod, FlowRemoved, Message, MultipartReplyBody, PacketIn, PacketOut, PortStatus,
};
use sav_openflow::prelude::Action;
use sav_sim::SimTime;

/// Handle through which apps talk to switches during one event dispatch.
pub struct Ctx {
    now: SimTime,
    out: Vec<(u64, Message)>,
    traced_barriers: Vec<(u64, TraceId)>,
}

impl Ctx {
    /// New context at `now`.
    pub fn new(now: SimTime) -> Ctx {
        Ctx {
            now,
            out: Vec::new(),
            traced_barriers: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Queue an arbitrary message to the switch with datapath id `dpid`.
    pub fn send(&mut self, dpid: u64, msg: Message) {
        self.out.push((dpid, msg));
    }

    /// Queue a flow-mod.
    pub fn install(&mut self, dpid: u64, fm: FlowMod) {
        self.send(dpid, Message::FlowMod(fm));
    }

    /// Queue a packet-out carrying `frame` to the given ports.
    pub fn packet_out(&mut self, dpid: u64, in_port: u32, ports: &[u32], frame: Vec<u8>) {
        self.send(
            dpid,
            Message::PacketOut(PacketOut {
                buffer_id: sav_openflow::consts::NO_BUFFER,
                in_port,
                actions: ports.iter().map(|&p| Action::output(p)).collect(),
                data: frame,
            }),
        );
    }

    /// Release a switch-buffered packet through the given ports.
    pub fn packet_out_buffered(&mut self, dpid: u64, buffer_id: u32, in_port: u32, ports: &[u32]) {
        self.send(
            dpid,
            Message::PacketOut(PacketOut {
                buffer_id,
                in_port,
                actions: ports.iter().map(|&p| Action::output(p)).collect(),
                data: vec![],
            }),
        );
    }

    /// Queue a `BarrierRequest` tagged with a causal trace: the controller
    /// remembers the xid it assigns at encode time and completes `trace`
    /// when the matching `BarrierReply` comes back (or abandons it if the
    /// connection dies first).
    pub fn send_traced_barrier(&mut self, dpid: u64, trace: TraceId) {
        self.traced_barriers.push((dpid, trace));
        self.send(dpid, Message::BarrierRequest);
    }

    /// Drain queued messages (used by the controller core). Trace tags are
    /// dropped — harnesses driving apps directly have no barrier replies
    /// to correlate anyway.
    pub fn take(self) -> Vec<(u64, Message)> {
        self.out
    }

    /// Drain queued messages plus the barrier trace tags, in barrier
    /// emission order per dpid.
    #[allow(clippy::type_complexity)]
    pub(crate) fn take_traced(self) -> (Vec<(u64, Message)>, Vec<(u64, TraceId)>) {
        (self.out, self.traced_barriers)
    }

    /// Number of queued messages so far.
    pub fn pending(&self) -> usize {
        self.out.len()
    }
}

/// Whether later apps in the chain should still see a PACKET_IN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Pass the event to the next app.
    Continue,
    /// Stop the chain for this event.
    Consumed,
}

/// A controller application.
///
/// Default method bodies ignore events, so apps implement only what they
/// care about. The `Any` supertrait lets the harness downcast apps to
/// inspect their state ([`crate::Controller::with_app`]).
pub trait App: std::any::Any + Send {
    /// Short name for diagnostics.
    fn name(&self) -> &'static str;

    /// A switch completed its handshake.
    fn on_switch_up(&mut self, _ctx: &mut Ctx, _dpid: u64) {}

    /// A switch's control channel went away.
    fn on_switch_down(&mut self, _ctx: &mut Ctx, _dpid: u64) {}

    /// A packet was punted to the controller.
    fn on_packet_in(&mut self, _ctx: &mut Ctx, _dpid: u64, _pi: &PacketIn) -> Disposition {
        Disposition::Continue
    }

    /// A flow was removed (timeout or delete with SEND_FLOW_REM).
    fn on_flow_removed(&mut self, _ctx: &mut Ctx, _dpid: u64, _fr: &FlowRemoved) {}

    /// A port changed state.
    fn on_port_status(&mut self, _ctx: &mut Ctx, _dpid: u64, _ps: &PortStatus) {}

    /// A multipart (statistics / port-description) reply arrived.
    fn on_stats_reply(&mut self, _ctx: &mut Ctx, _dpid: u64, _body: &MultipartReplyBody) {}

    /// A periodic poll tick fired for a ready switch (driven by the
    /// embedding transport via [`crate::Controller::poll_tick`]). Apps that
    /// collect statistics queue their multipart requests here; everyone
    /// else ignores it.
    fn on_poll(&mut self, _ctx: &mut Ctx, _dpid: u64) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_openflow::oxm::OxmMatch;

    #[test]
    fn ctx_queues_in_order() {
        let mut ctx = Ctx::new(SimTime::from_secs(1));
        assert_eq!(ctx.now(), SimTime::from_secs(1));
        ctx.install(7, FlowMod::add(OxmMatch::new()));
        ctx.packet_out(7, 1, &[2, 3], vec![0xab]);
        assert_eq!(ctx.pending(), 2);
        let msgs = ctx.take();
        assert_eq!(msgs.len(), 2);
        assert_eq!(msgs[0].0, 7);
        assert!(matches!(msgs[0].1, Message::FlowMod(_)));
        match &msgs[1].1 {
            Message::PacketOut(po) => {
                assert_eq!(po.actions.len(), 2);
                assert_eq!(po.data, vec![0xab]);
            }
            other => panic!("expected PacketOut, got {other:?}"),
        }
    }

    #[test]
    fn default_app_impls_are_inert() {
        struct Nop;
        impl App for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
        }
        let mut n = Nop;
        let mut ctx = Ctx::new(SimTime::ZERO);
        n.on_switch_up(&mut ctx, 1);
        let pi = PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: 0,
            reason: sav_openflow::messages::PacketInReason::NoMatch,
            table_id: 0,
            cookie: 0,
            match_: OxmMatch::new(),
            data: vec![],
        };
        assert_eq!(n.on_packet_in(&mut ctx, 1, &pi), Disposition::Continue);
        assert_eq!(ctx.pending(), 0);
    }
}
