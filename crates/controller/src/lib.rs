//! # sav-controller — the SDN controller framework and testbed
//!
//! The control-plane substrate the SAV application (in `sav-core`) runs on:
//!
//! * [`controller`] — [`controller::Controller`]: per-switch connection
//!   state machines (HELLO / FEATURES handshake over real encoded bytes),
//!   event dispatch to a chain of [`app::App`]s, and outbound message
//!   collection.
//! * [`app`] — the application trait and [`app::Ctx`], the handle apps use
//!   to install flows, send packet-outs and read the network view.
//! * [`apps`] — built-in applications every scenario uses: proactive
//!   destination-MAC forwarding over shortest paths, proxy-ARP with
//!   tree-flooding fallback, and a DHCP server (the address-assignment
//!   authority that SAV's DHCP-snooping mode observes).
//! * [`testbed`] — the deterministic full-network simulation: switches,
//!   hosts, control channels with latency, link latencies, a command
//!   interface for workloads, and measurement taps.
//!
//! ## Table layout convention
//!
//! Apps share the switch pipeline by convention (documented here, enforced
//! nowhere — exactly like real controller platforms):
//!
//! | table | owner | content |
//! |---|---|---|
//! | 0 | SAV / baseline filter | allow/deny source-validation rules; a priority-1 `goto:1` bridge installed by the forwarding app |
//! | 1 | forwarding | destination-MAC unicast + broadcast/miss punts |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod apps;
pub mod controller;
pub mod testbed;

pub use app::{App, Ctx};
pub use controller::{ConnId, Controller, ControllerOutput, ControllerStats};
pub use testbed::{Testbed, TestbedCmd, TestbedConfig, TestbedReport};

/// Table 0: source-address validation (or its baseline stand-ins).
pub const TABLE_SAV: u8 = 0;
/// Table 1: L2 forwarding.
pub const TABLE_FWD: u8 = 1;
/// Priority of the forwarding app's table-0 bridge rule.
pub const PRIO_BRIDGE: u16 = 1;
