//! The controller core: connection state machines and event dispatch.
//!
//! Sans-IO like everything else: [`Controller::on_connect`] returns the
//! greeting bytes for a new control channel, [`Controller::on_bytes`] feeds
//! received bytes and returns bytes to write back, per connection. The
//! handshake (HELLO → FEATURES_REQUEST → FEATURES_REPLY) runs here; once a
//! connection is `Ready`, its datapath id is known and events flow to apps.

use crate::app::{App, Ctx, Disposition};
use sav_obs::{EventKind, Obs, Severity, TraceId};
use sav_openflow::consts::error_type;
use sav_openflow::error::CodecError;
use sav_openflow::framing::Deframer;
use sav_openflow::messages::{ControllerRole, Message, RoleMsg};
use sav_sim::SimTime;
use std::collections::{HashMap, VecDeque};

/// Connection identifier (assigned by the embedding I/O layer).
pub type ConnId = usize;

enum ConnState {
    /// HELLO sent, waiting for the peer's HELLO.
    AwaitHello,
    /// FEATURES_REQUEST sent with this xid, waiting for the matching reply.
    AwaitFeatures { xid: u32 },
    /// ROLE_REQUEST(MASTER) sent with this xid (clustered controllers
    /// only). Apps see the switch only after it confirms mastership, so a
    /// fenced stale leader never gets to program flows.
    AwaitRole { dpid: u64, xid: u32 },
    /// Handshake complete.
    Ready { dpid: u64 },
}

struct Conn {
    state: ConnState,
    deframer: Deframer,
}

/// Messages to write, per connection.
#[derive(Debug, Default)]
pub struct ControllerOutput {
    /// `(connection, bytes)` pairs, in write order.
    pub to_switch: Vec<(ConnId, Vec<u8>)>,
    /// ECHO_REPLY payloads received on ready connections, for the transport
    /// layer to match against its outstanding keepalives (RTT, liveness).
    pub echo_replies: Vec<(ConnId, Vec<u8>)>,
    /// Connections the controller wants torn down (protocol violations such
    /// as a FEATURES_REPLY answering the wrong xid). The embedding I/O layer
    /// should close the socket and then call
    /// [`Controller::on_disconnect`].
    pub hangups: Vec<ConnId>,
}

/// Control-plane load counters (evaluation input).
#[derive(Debug, Default, Clone, Copy)]
pub struct ControllerStats {
    /// PACKET_INs dispatched to apps.
    pub packet_ins: u64,
    /// FLOW_MODs sent.
    pub flow_mods: u64,
    /// PACKET_OUTs sent.
    pub packet_outs: u64,
    /// Total messages received from switches.
    pub rx_messages: u64,
    /// Total messages sent to switches.
    pub tx_messages: u64,
    /// FLOW_REMOVED notifications received.
    pub flow_removed: u64,
    /// OpenFlow errors received from switches.
    pub errors: u64,
    /// ECHO_REQUESTs received from switches (each is answered).
    pub echo_requests: u64,
    /// ECHO_REPLYs received from switches (answers to our keepalives).
    pub echo_replies: u64,
    /// ECHO_REQUEST keepalives this controller sent.
    pub echo_sent: u64,
    /// Handshakes aborted for protocol violations (e.g. xid mismatch).
    pub handshake_failures: u64,
    /// ROLE_REQUESTs a switch refused (stale generation — we were fenced).
    pub role_rejections: u64,
}

/// The controller: connections + the app chain.
pub struct Controller {
    conns: HashMap<ConnId, Conn>,
    dpid_to_conn: HashMap<u64, ConnId>,
    apps: Vec<Box<dyn App>>,
    next_xid: u32,
    /// When set, every handshake asserts MASTER with this generation
    /// before apps see the switch (cluster mode). `None` = standalone.
    master_generation: Option<u64>,
    obs: Option<Obs>,
    /// Outstanding traced barriers: `(conn, xid)` of a `BarrierRequest`
    /// carrying a causal trace, waiting for its `BarrierReply`.
    pending_barriers: HashMap<(ConnId, u32), TraceId>,
    /// Counters for the evaluation harness.
    pub stats: ControllerStats,
}

impl Controller {
    /// A controller running the given app chain.
    pub fn new(apps: Vec<Box<dyn App>>) -> Controller {
        Controller {
            conns: HashMap::new(),
            dpid_to_conn: HashMap::new(),
            apps,
            next_xid: 1,
            master_generation: None,
            obs: None,
            pending_barriers: HashMap::new(),
            stats: ControllerStats::default(),
        }
    }

    /// Enter (or refresh) cluster-master mode: every subsequent switch
    /// handshake sends `ROLE_REQUEST(MASTER, generation)` after the
    /// features exchange, and apps are dispatched only once the switch
    /// confirms. A switch that refuses (it has seen a newer generation)
    /// is counted in [`ControllerStats::role_rejections`], surfaced as a
    /// `role_rejected` journal event, and hung up on — so a deposed
    /// leader can never program flows.
    pub fn set_master_generation(&mut self, generation: u64) {
        self.master_generation = Some(generation);
    }

    /// Attach an observability handle (role rejections reach its journal).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = Some(obs);
    }

    fn xid(&mut self) -> u32 {
        let x = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1).max(1);
        x
    }

    /// Datapath ids of all switches that completed the handshake.
    pub fn ready_dpids(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.dpid_to_conn.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// True once `conn` has completed the full handshake (HELLO,
    /// FEATURES, and — in cluster mode — role assertion). The transport
    /// uses the `false → true` flip to measure accept-to-ready handshake
    /// latency without peeking at connection state.
    pub fn conn_ready(&self, conn: ConnId) -> bool {
        matches!(
            self.conns.get(&conn),
            Some(Conn {
                state: ConnState::Ready { .. },
                ..
            })
        )
    }

    /// A new control channel appeared; returns the greeting bytes.
    pub fn on_connect(&mut self, conn: ConnId) -> Vec<u8> {
        self.conns.insert(
            conn,
            Conn {
                state: ConnState::AwaitHello,
                deframer: Deframer::new(),
            },
        );
        let x = self.xid();
        self.stats.tx_messages += 1;
        Message::Hello.encode(x)
    }

    /// A control channel died.
    pub fn on_disconnect(&mut self, now: SimTime, conn: ConnId) -> ControllerOutput {
        let mut out = ControllerOutput::default();
        // Barrier replies outstanding on this channel will never arrive:
        // abandon their traces cleanly instead of leaking half-open spans
        // (a recovering controller re-learns the binding and starts a
        // fresh trace).
        let stale: Vec<TraceId> = self
            .pending_barriers
            .iter()
            .filter(|(k, _)| k.0 == conn)
            .map(|(_, &t)| t)
            .collect();
        if !stale.is_empty() {
            self.pending_barriers.retain(|k, _| k.0 != conn);
            if let Some(obs) = &self.obs {
                for t in stale {
                    obs.abandon_trace(t);
                }
            }
        }
        if let Some(c) = self.conns.remove(&conn) {
            if let ConnState::Ready { dpid } = c.state {
                self.dpid_to_conn.remove(&dpid);
                let mut ctx = Ctx::new(now);
                for app in &mut self.apps {
                    app.on_switch_down(&mut ctx, dpid);
                }
                self.flush(ctx, &mut out);
            }
        }
        out
    }

    /// Feed bytes received on `conn`. Codec failures poison the connection.
    pub fn on_bytes(
        &mut self,
        now: SimTime,
        conn: ConnId,
        bytes: &[u8],
    ) -> Result<ControllerOutput, CodecError> {
        let mut out = ControllerOutput::default();
        // Decode everything first to keep borrows simple.
        let msgs = {
            let Some(c) = self.conns.get_mut(&conn) else {
                return Ok(out);
            };
            c.deframer.push(bytes)?;
            let mut msgs = Vec::new();
            while let Some(m) = c.deframer.next_message()? {
                msgs.push(m);
            }
            msgs
        };
        for (msg, xid) in msgs {
            self.stats.rx_messages += 1;
            self.handle_message(now, conn, msg, xid, &mut out);
        }
        Ok(out)
    }

    fn handle_message(
        &mut self,
        now: SimTime,
        conn: ConnId,
        msg: Message,
        xid: u32,
        out: &mut ControllerOutput,
    ) {
        let master_generation = self.master_generation;
        let state = match self.conns.get_mut(&conn) {
            Some(c) => &mut c.state,
            None => return,
        };
        match (&*state, &msg) {
            (ConnState::AwaitHello, Message::Hello) => {
                let x = self.xid();
                self.stats.tx_messages += 1;
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.state = ConnState::AwaitFeatures { xid: x };
                }
                out.to_switch
                    .push((conn, Message::FeaturesRequest.encode(x)));
            }
            (ConnState::AwaitFeatures { xid: expected }, Message::FeaturesReply(f)) => {
                if *expected != xid {
                    // The reply answers a request we never sent — a confused
                    // or hostile peer. Abort the handshake.
                    self.stats.handshake_failures += 1;
                    out.hangups.push(conn);
                    return;
                }
                let dpid = f.datapath_id;
                match master_generation {
                    Some(generation_id) => {
                        // Cluster mode: claim mastership before apps see
                        // the switch.
                        let x = self.xid();
                        self.stats.tx_messages += 1;
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.state = ConnState::AwaitRole { dpid, xid: x };
                        }
                        let m = RoleMsg {
                            role: ControllerRole::Master,
                            generation_id,
                        };
                        out.to_switch
                            .push((conn, Message::RoleRequest(m).encode(x)));
                    }
                    None => {
                        *state = ConnState::Ready { dpid };
                        self.mark_ready(now, conn, dpid, out);
                    }
                }
            }
            (
                ConnState::AwaitRole {
                    dpid,
                    xid: expected,
                },
                Message::RoleReply(m),
            ) => {
                if *expected != xid || m.role != ControllerRole::Master {
                    self.stats.handshake_failures += 1;
                    out.hangups.push(conn);
                    return;
                }
                let dpid = *dpid;
                *state = ConnState::Ready { dpid };
                self.mark_ready(now, conn, dpid, out);
            }
            (ConnState::AwaitRole { dpid, .. }, Message::Error(e))
                if e.err_type == error_type::ROLE_REQUEST_FAILED =>
            {
                // The switch has seen a newer master generation: we are a
                // deposed leader. Surface it and drop the channel — apps
                // never saw this switch, so no flow-mod can leak out.
                let dpid = *dpid;
                self.stats.role_rejections += 1;
                if let Some(obs) = &self.obs {
                    obs.event(
                        Severity::Warn,
                        EventKind::RoleRejected {
                            dpid,
                            generation: master_generation.unwrap_or(0),
                        },
                    );
                }
                out.hangups.push(conn);
            }
            (ConnState::Ready { dpid }, _) => {
                let dpid = *dpid;
                let mut ctx = Ctx::new(now);
                match &msg {
                    Message::EchoRequest(d) => {
                        self.stats.echo_requests += 1;
                        let x = self.xid();
                        self.stats.tx_messages += 1;
                        out.to_switch
                            .push((conn, Message::EchoReply(d.clone()).encode(x)));
                    }
                    Message::EchoReply(d) => {
                        self.stats.echo_replies += 1;
                        out.echo_replies.push((conn, d.0.clone()));
                    }
                    Message::PacketIn(pi) => {
                        self.stats.packet_ins += 1;
                        for app in &mut self.apps {
                            if app.on_packet_in(&mut ctx, dpid, pi) == Disposition::Consumed {
                                break;
                            }
                        }
                    }
                    Message::FlowRemoved(fr) => {
                        self.stats.flow_removed += 1;
                        for app in &mut self.apps {
                            app.on_flow_removed(&mut ctx, dpid, fr);
                        }
                    }
                    Message::PortStatus(ps) => {
                        for app in &mut self.apps {
                            app.on_port_status(&mut ctx, dpid, ps);
                        }
                    }
                    Message::Error(_) => {
                        self.stats.errors += 1;
                    }
                    Message::MultipartReply(body) => {
                        for app in &mut self.apps {
                            app.on_stats_reply(&mut ctx, dpid, body);
                        }
                    }
                    Message::BarrierReply => {
                        // A traced barrier coming home closes its causal
                        // trace: the switch has processed every flow-mod
                        // sent before the barrier, so the binding is
                        // enforced. Untraced barriers need no dispatch.
                        if let Some(trace) = self.pending_barriers.remove(&(conn, xid)) {
                            if let Some(obs) = &self.obs {
                                obs.complete_trace(trace);
                            }
                        }
                    }
                    // The rest need no dispatch.
                    _ => {}
                }
                self.flush(ctx, out);
            }
            // Anything unexpected during handshake: ignore (a resilient
            // controller does not crash on stray messages).
            _ => {}
        }
    }

    /// Emit an ECHO_REQUEST keepalive on `conn`, returning the bytes to
    /// write. The transport layer owns the schedule and the liveness
    /// deadline; the payload round-trips verbatim so it can carry a
    /// timestamp for RTT measurement. Returns `None` for unknown
    /// connections.
    pub fn send_echo(&mut self, conn: ConnId, payload: Vec<u8>) -> Option<Vec<u8>> {
        if !self.conns.contains_key(&conn) {
            return None;
        }
        let x = self.xid();
        self.stats.echo_sent += 1;
        self.stats.tx_messages += 1;
        Some(Message::EchoRequest(sav_openflow::messages::EchoData(payload)).encode(x))
    }

    /// Fire [`App::on_poll`] for every ready switch and return the queued
    /// requests as writable output. The embedding transport owns the
    /// schedule (like keepalives): call this on whatever period the stats
    /// poller should run at. No-op when no app polls or no switch is ready.
    pub fn poll_tick(&mut self, now: SimTime) -> ControllerOutput {
        let mut out = ControllerOutput::default();
        let dpids = self.ready_dpids();
        let mut ctx = Ctx::new(now);
        for dpid in dpids {
            for app in &mut self.apps {
                app.on_poll(&mut ctx, dpid);
            }
        }
        self.flush(ctx, &mut out);
        out
    }

    /// Let an external driver (the testbed command layer or tests) inject
    /// messages to switches through the app-visible path, e.g. to seed rules.
    pub fn send_all(&mut self, msgs: Vec<(u64, Message)>, out: &mut ControllerOutput) {
        self.send_tagged(msgs, Vec::new(), out);
    }

    /// Encode and dispatch queued messages; `traced` carries the causal
    /// trace tags of barrier requests, matched to barriers per dpid in
    /// emission order so the xid assigned here can be correlated with the
    /// eventual `BarrierReply`.
    fn send_tagged(
        &mut self,
        msgs: Vec<(u64, Message)>,
        traced: Vec<(u64, TraceId)>,
        out: &mut ControllerOutput,
    ) {
        let mut tags: HashMap<u64, VecDeque<TraceId>> = HashMap::new();
        for (dpid, trace) in &traced {
            tags.entry(*dpid).or_default().push_back(*trace);
        }
        for (dpid, msg) in msgs {
            match msg {
                Message::FlowMod(_) => self.stats.flow_mods += 1,
                Message::PacketOut(_) => self.stats.packet_outs += 1,
                _ => {}
            }
            self.stats.tx_messages += 1;
            if let Some(&conn) = self.dpid_to_conn.get(&dpid) {
                let x = self.xid();
                if matches!(msg, Message::BarrierRequest) {
                    if let Some(trace) = tags.get_mut(&dpid).and_then(|q| q.pop_front()) {
                        self.pending_barriers.insert((conn, x), trace);
                    }
                }
                out.to_switch.push((conn, msg.encode(x)));
            }
        }
        // Tags whose barrier never encoded (switch disconnected between
        // queueing and flush) can never complete: abandon them.
        if let Some(obs) = &self.obs {
            for q in tags.values_mut() {
                for trace in q.drain(..) {
                    obs.abandon_trace(trace);
                }
            }
        }
    }

    /// A connection finished its (possibly role-gated) handshake: index the
    /// dpid and let the apps program the switch.
    fn mark_ready(&mut self, now: SimTime, conn: ConnId, dpid: u64, out: &mut ControllerOutput) {
        self.dpid_to_conn.insert(dpid, conn);
        let mut ctx = Ctx::new(now);
        for app in &mut self.apps {
            app.on_switch_up(&mut ctx, dpid);
        }
        self.flush(ctx, out);
    }

    fn flush(&mut self, ctx: Ctx, out: &mut ControllerOutput) {
        let (msgs, traced) = ctx.take_traced();
        self.send_tagged(msgs, traced, out);
    }

    /// Run a closure against the first app of concrete type `A` (state
    /// peeking for tests and the harness). Relies on `App: Any` and trait
    /// upcasting.
    pub fn with_app<A: App, R>(&mut self, f: impl FnOnce(&mut A) -> R) -> Option<R> {
        for app in &mut self.apps {
            let any: &mut dyn std::any::Any = app.as_mut();
            if let Some(a) = any.downcast_mut::<A>() {
                return Some(f(a));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_dataplane::switch::{OpenFlowSwitch, SwitchConfig};
    use sav_net::addr::MacAddr;
    use sav_openflow::oxm::OxmMatch;
    use sav_openflow::ports::PortDesc;

    /// App that installs one flow on switch-up and counts packet-ins.
    struct Probe {
        ups: Vec<u64>,
        packet_ins: usize,
    }

    impl App for Probe {
        fn name(&self) -> &'static str {
            "probe"
        }
        fn on_switch_up(&mut self, ctx: &mut Ctx, dpid: u64) {
            self.ups.push(dpid);
            ctx.install(dpid, sav_openflow::messages::FlowMod::add(OxmMatch::new()));
        }
        fn on_packet_in(
            &mut self,
            _ctx: &mut Ctx,
            _dpid: u64,
            _pi: &sav_openflow::messages::PacketIn,
        ) -> Disposition {
            self.packet_ins += 1;
            Disposition::Continue
        }
    }

    fn mk_switch(dpid: u64) -> OpenFlowSwitch {
        OpenFlowSwitch::new(
            SwitchConfig::new(dpid),
            vec![
                PortDesc::new(1, MacAddr::from_index(1)),
                PortDesc::new(2, MacAddr::from_index(2)),
            ],
        )
    }

    /// Run the handshake between a real switch and the controller by
    /// ferrying bytes until quiescent. Returns bytes counts for sanity.
    fn converge(ctrl: &mut Controller, sw: &mut OpenFlowSwitch, conn: ConnId) {
        let now = SimTime::ZERO;
        let mut to_switch = vec![ctrl.on_connect(conn)];
        let mut to_ctrl = vec![sw.hello()];
        while !to_switch.is_empty() || !to_ctrl.is_empty() {
            let mut next_to_ctrl = Vec::new();
            for b in to_switch.drain(..) {
                let out = sw.handle_controller_bytes(now, &b).unwrap();
                next_to_ctrl.extend(out.to_controller);
            }
            let mut next_to_switch = Vec::new();
            for b in to_ctrl.drain(..) {
                let out = ctrl.on_bytes(now, conn, &b).unwrap();
                next_to_switch.extend(out.to_switch.into_iter().map(|(_, b)| b));
            }
            to_switch = next_to_switch;
            to_ctrl = next_to_ctrl;
        }
    }

    #[test]
    fn handshake_reaches_ready_and_fires_switch_up() {
        let mut ctrl = Controller::new(vec![Box::new(Probe {
            ups: vec![],
            packet_ins: 0,
        })]);
        let mut sw = mk_switch(0x42);
        converge(&mut ctrl, &mut sw, 0);
        assert_eq!(ctrl.ready_dpids(), vec![0x42]);
        ctrl.with_app::<Probe, _>(|p| assert_eq!(p.ups, vec![0x42]));
        // The probe's switch-up flow-mod reached the switch.
        assert_eq!(sw.total_flows(), 1);
        assert_eq!(ctrl.stats.flow_mods, 1);
    }

    #[test]
    fn packet_in_dispatch() {
        let mut ctrl = Controller::new(vec![Box::new(Probe {
            ups: vec![],
            packet_ins: 0,
        })]);
        let mut sw = mk_switch(7);
        converge(&mut ctrl, &mut sw, 3);
        // Fabricate a packet-in from the switch side.
        let pi = sav_openflow::messages::PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: 4,
            reason: sav_openflow::messages::PacketInReason::NoMatch,
            table_id: 0,
            cookie: u64::MAX,
            match_: OxmMatch::new().with(sav_openflow::oxm::OxmField::InPort(1)),
            data: vec![1, 2, 3, 4],
        };
        let bytes = Message::PacketIn(pi).encode(900);
        ctrl.on_bytes(SimTime::ZERO, 3, &bytes).unwrap();
        ctrl.with_app::<Probe, _>(|p| assert_eq!(p.packet_ins, 1));
        assert_eq!(ctrl.stats.packet_ins, 1);
    }

    #[test]
    fn echo_answered_without_apps() {
        let mut ctrl = Controller::new(vec![]);
        let mut sw = mk_switch(9);
        converge(&mut ctrl, &mut sw, 0);
        let bytes =
            Message::EchoRequest(sav_openflow::messages::EchoData(b"hb".to_vec())).encode(5);
        let out = ctrl.on_bytes(SimTime::ZERO, 0, &bytes).unwrap();
        assert_eq!(out.to_switch.len(), 1);
        let (msg, _) = Message::decode(&out.to_switch[0].1).unwrap();
        assert!(matches!(msg, Message::EchoReply(_)));
    }

    #[test]
    fn disconnect_fires_switch_down_and_forgets_dpid() {
        struct DownProbe {
            downs: Vec<u64>,
        }
        impl App for DownProbe {
            fn name(&self) -> &'static str {
                "down"
            }
            fn on_switch_down(&mut self, _ctx: &mut Ctx, dpid: u64) {
                self.downs.push(dpid);
            }
        }
        let mut ctrl = Controller::new(vec![Box::new(DownProbe { downs: vec![] })]);
        let mut sw = mk_switch(5);
        converge(&mut ctrl, &mut sw, 0);
        assert_eq!(ctrl.ready_dpids(), vec![5]);
        ctrl.on_disconnect(SimTime::ZERO, 0);
        assert!(ctrl.ready_dpids().is_empty());
        ctrl.with_app::<DownProbe, _>(|p| assert_eq!(p.downs, vec![5]));
    }

    /// Mints a causal trace per packet-in and fences it with a traced
    /// barrier — the controller-side half of what `SavApp` does for a
    /// DHCP-learned binding.
    struct TraceApp {
        obs: sav_obs::Obs,
    }
    impl App for TraceApp {
        fn name(&self) -> &'static str {
            "trace"
        }
        fn on_packet_in(
            &mut self,
            ctx: &mut Ctx,
            dpid: u64,
            _pi: &sav_openflow::messages::PacketIn,
        ) -> Disposition {
            let t = self.obs.traces.now_ns();
            let id = self
                .obs
                .traces
                .begin("10.0.0.1".into(), dpid, t)
                .expect("tracing enabled");
            self.obs
                .traces
                .stage(id, "packet_in", t, self.obs.traces.now_ns());
            ctx.install(dpid, sav_openflow::messages::FlowMod::add(OxmMatch::new()));
            self.obs.traces.stage_open(id, "barrier_ack");
            ctx.send_traced_barrier(dpid, id);
            Disposition::Consumed
        }
    }

    fn packet_in_bytes() -> Vec<u8> {
        let pi = sav_openflow::messages::PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: 4,
            reason: sav_openflow::messages::PacketInReason::NoMatch,
            table_id: 0,
            cookie: u64::MAX,
            match_: OxmMatch::new().with(sav_openflow::oxm::OxmField::InPort(1)),
            data: vec![1, 2, 3, 4],
        };
        Message::PacketIn(pi).encode(901)
    }

    #[test]
    fn traced_barrier_reply_completes_the_trace() {
        let obs = sav_obs::Obs::with_tracing();
        let mut ctrl = Controller::new(vec![Box::new(TraceApp { obs: obs.clone() })]);
        ctrl.set_obs(obs.clone());
        let mut sw = mk_switch(4);
        converge(&mut ctrl, &mut sw, 0);

        let out = ctrl.on_bytes(SimTime::ZERO, 0, &packet_in_bytes()).unwrap();
        assert_eq!(
            obs.traces.open_count(),
            1,
            "trace waits for the barrier ack"
        );
        // Ferry the flow-mod + barrier to the switch; it acks the barrier.
        let mut replies = Vec::new();
        for (_, b) in out.to_switch {
            replies.extend(
                sw.handle_controller_bytes(SimTime::ZERO, &b)
                    .unwrap()
                    .to_controller,
            );
        }
        for b in replies {
            ctrl.on_bytes(SimTime::ZERO, 0, &b).unwrap();
        }
        assert_eq!(obs.traces.open_count(), 0);
        assert_eq!(obs.traces.completed(), 1);
        let traces = obs.traces.tail(4);
        assert_eq!(traces.len(), 1);
        assert!(traces[0].stages.iter().any(|s| s.stage == "barrier_ack"));
        assert_eq!(
            obs.tracer
                .histogram("time_to_enforcement")
                .map(|h| h.count()),
            Some(1),
            "completion feeds the headline histogram"
        );
    }

    #[test]
    fn disconnect_abandons_half_open_traces() {
        let obs = sav_obs::Obs::with_tracing();
        let mut ctrl = Controller::new(vec![Box::new(TraceApp { obs: obs.clone() })]);
        ctrl.set_obs(obs.clone());
        let mut sw = mk_switch(4);
        converge(&mut ctrl, &mut sw, 0);

        // The barrier goes out but its reply is never delivered — the
        // channel dies first (crash/failover). The trace must be dropped
        // cleanly, not leaked half-open into a recovered controller.
        let _lost = ctrl.on_bytes(SimTime::ZERO, 0, &packet_in_bytes()).unwrap();
        assert_eq!(obs.traces.open_count(), 1);
        ctrl.on_disconnect(SimTime::ZERO, 0);
        assert_eq!(obs.traces.open_count(), 0, "no half-open trace survives");
        assert_eq!(obs.traces.abandoned(), 1);
        assert!(obs.traces.tail(4).is_empty(), "abandoned ≠ completed");
        assert_eq!(obs.counters.get("sav_traces_abandoned_total"), 1);
        assert_eq!(
            obs.tracer
                .histogram("time_to_enforcement")
                .map(|h| h.count()),
            None,
            "an unenforced binding must not pollute the latency histogram"
        );

        // Recovery: the switch reconnects and a fresh packet-in traces
        // end-to-end as usual.
        let mut sw2 = mk_switch(4);
        converge(&mut ctrl, &mut sw2, 1);
        let out = ctrl.on_bytes(SimTime::ZERO, 1, &packet_in_bytes()).unwrap();
        let mut replies = Vec::new();
        for (_, b) in out.to_switch {
            replies.extend(
                sw2.handle_controller_bytes(SimTime::ZERO, &b)
                    .unwrap()
                    .to_controller,
            );
        }
        for b in replies {
            ctrl.on_bytes(SimTime::ZERO, 1, &b).unwrap();
        }
        assert_eq!(obs.traces.completed(), 1);
        assert_eq!(obs.traces.abandoned(), 1, "old trace stays abandoned");
    }

    #[test]
    fn consumed_packet_in_stops_chain() {
        struct Eater;
        impl App for Eater {
            fn name(&self) -> &'static str {
                "eater"
            }
            fn on_packet_in(
                &mut self,
                _ctx: &mut Ctx,
                _dpid: u64,
                _pi: &sav_openflow::messages::PacketIn,
            ) -> Disposition {
                Disposition::Consumed
            }
        }
        let mut ctrl = Controller::new(vec![
            Box::new(Eater),
            Box::new(Probe {
                ups: vec![],
                packet_ins: 0,
            }),
        ]);
        let mut sw = mk_switch(7);
        converge(&mut ctrl, &mut sw, 0);
        let pi = sav_openflow::messages::PacketIn {
            buffer_id: sav_openflow::consts::NO_BUFFER,
            total_len: 0,
            reason: sav_openflow::messages::PacketInReason::NoMatch,
            table_id: 0,
            cookie: u64::MAX,
            match_: OxmMatch::new(),
            data: vec![],
        };
        ctrl.on_bytes(SimTime::ZERO, 0, &Message::PacketIn(pi).encode(1))
            .unwrap();
        ctrl.with_app::<Probe, _>(|p| assert_eq!(p.packet_ins, 0));
    }

    #[test]
    fn features_reply_with_wrong_xid_aborts_handshake() {
        let mut ctrl = Controller::new(vec![]);
        let greeting = ctrl.on_connect(0);
        assert!(!greeting.is_empty());
        // Peer says HELLO; controller asks for features with some xid.
        let out = ctrl
            .on_bytes(SimTime::ZERO, 0, &Message::Hello.encode(1))
            .unwrap();
        let (msg, req_xid) = Message::decode(&out.to_switch[0].1).unwrap();
        assert_eq!(msg, Message::FeaturesRequest);
        // Reply with a different xid: handshake must abort, not complete.
        let reply = sav_openflow::messages::FeaturesReply {
            datapath_id: 0x77,
            n_buffers: 0,
            n_tables: 1,
            auxiliary_id: 0,
            capabilities: 0,
        };
        let bytes = Message::FeaturesReply(reply).encode(req_xid.wrapping_add(9));
        let out = ctrl.on_bytes(SimTime::ZERO, 0, &bytes).unwrap();
        assert_eq!(out.hangups, vec![0]);
        assert!(ctrl.ready_dpids().is_empty());
        assert_eq!(ctrl.stats.handshake_failures, 1);
    }

    /// In cluster mode the handshake asserts MASTER before apps run: the
    /// switch ends the converge loop mastered at our generation, and the
    /// app's switch-up flow-mod still lands (proving dispatch happens
    /// after the role exchange, not instead of it).
    #[test]
    fn master_generation_inserts_role_exchange_into_handshake() {
        let mut ctrl = Controller::new(vec![Box::new(Probe {
            ups: vec![],
            packet_ins: 0,
        })]);
        ctrl.set_master_generation(7);
        let mut sw = mk_switch(0x42);
        converge(&mut ctrl, &mut sw, 0);
        assert_eq!(ctrl.ready_dpids(), vec![0x42]);
        assert_eq!(sw.role(), sav_openflow::messages::ControllerRole::Master);
        assert_eq!(sw.master_generation(), Some(7));
        ctrl.with_app::<Probe, _>(|p| assert_eq!(p.ups, vec![0x42]));
        assert_eq!(sw.total_flows(), 1);
    }

    /// A deposed leader (older generation than the switch has seen) is
    /// fenced during the handshake: the switch's refusal surfaces as a
    /// `role_rejected` journal event and a hangup, apps never see the
    /// switch, and no flow-mod reaches it.
    #[test]
    fn stale_generation_is_rejected_before_apps_run() {
        let mut sw = mk_switch(0x42);
        // The switch has already been mastered at generation 9 by the
        // real leader.
        sw.handle_controller_bytes(
            SimTime::ZERO,
            &Message::RoleRequest(sav_openflow::messages::RoleMsg {
                role: sav_openflow::messages::ControllerRole::Master,
                generation_id: 9,
            })
            .encode(1),
        )
        .unwrap();
        let _ = sw.on_control_reconnect();

        let obs = Obs::new();
        let mut ctrl = Controller::new(vec![Box::new(Probe {
            ups: vec![],
            packet_ins: 0,
        })]);
        ctrl.set_obs(obs.clone());
        ctrl.set_master_generation(3); // stale: 3 < 9
        let now = SimTime::ZERO;
        let mut to_switch = vec![ctrl.on_connect(0)];
        let mut to_ctrl = vec![sw.hello()];
        let mut hung_up = false;
        while !hung_up && (!to_switch.is_empty() || !to_ctrl.is_empty()) {
            let mut next_to_ctrl = Vec::new();
            for b in to_switch.drain(..) {
                let out = sw.handle_controller_bytes(now, &b).unwrap();
                next_to_ctrl.extend(out.to_controller);
            }
            let mut next_to_switch = Vec::new();
            for b in to_ctrl.drain(..) {
                let out = ctrl.on_bytes(now, 0, &b).unwrap();
                hung_up |= !out.hangups.is_empty();
                next_to_switch.extend(out.to_switch.into_iter().map(|(_, b)| b));
            }
            to_switch = next_to_switch;
            to_ctrl = next_to_ctrl;
        }
        assert!(hung_up, "stale leader must be hung up on");
        assert!(ctrl.ready_dpids().is_empty());
        assert_eq!(ctrl.stats.role_rejections, 1);
        ctrl.with_app::<Probe, _>(|p| assert!(p.ups.is_empty(), "apps must not run"));
        assert_eq!(sw.total_flows(), 0, "no flow from the fenced leader");
        assert!(obs.journal.tail_jsonl(1).contains("role_rejected"));
    }

    #[test]
    fn echo_roundtrip_counts_and_surfaces_payload() {
        let mut ctrl = Controller::new(vec![]);
        let mut sw = mk_switch(2);
        converge(&mut ctrl, &mut sw, 0);
        // Controller-initiated keepalive...
        let req = ctrl.send_echo(0, b"t=123".to_vec()).unwrap();
        assert_eq!(ctrl.stats.echo_sent, 1);
        // ...answered by the real switch...
        let out = sw.handle_controller_bytes(SimTime::ZERO, &req).unwrap();
        let mut reply_bytes = Vec::new();
        for b in out.to_controller {
            reply_bytes.extend_from_slice(&b);
        }
        // ...and the reply's payload surfaces for RTT matching.
        let out = ctrl.on_bytes(SimTime::ZERO, 0, &reply_bytes).unwrap();
        assert_eq!(out.echo_replies, vec![(0, b"t=123".to_vec())]);
        assert_eq!(ctrl.stats.echo_replies, 1);
        // Switch-initiated echo is still answered and now counted.
        let bytes =
            Message::EchoRequest(sav_openflow::messages::EchoData(b"hb".to_vec())).encode(5);
        ctrl.on_bytes(SimTime::ZERO, 0, &bytes).unwrap();
        assert_eq!(ctrl.stats.echo_requests, 1);
    }
}
