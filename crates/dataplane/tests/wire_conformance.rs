//! Wire-level conformance: the switch's error behaviour driven purely by
//! encoded OpenFlow bytes, the way a remote controller would see it.

use sav_dataplane::switch::{OpenFlowSwitch, SwitchConfig};
use sav_net::addr::MacAddr;
use sav_openflow::consts::{error_type, flow_mod_failed, flow_mod_flags, role_request_failed};
use sav_openflow::messages::{ControllerRole, FlowMod, Message, RoleMsg};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::ports::PortDesc;
use sav_sim::SimTime;

fn mk_switch(capacity: usize) -> OpenFlowSwitch {
    let mut cfg = SwitchConfig::new(0xabc);
    cfg.max_entries_per_table = capacity;
    OpenFlowSwitch::new(
        cfg,
        (1..=2)
            .map(|p| PortDesc::new(p, MacAddr::from_index(p as u64)))
            .collect(),
    )
}

fn errors_of(sw: &mut OpenFlowSwitch, msg: Message, xid: u32) -> Vec<(u16, u16, u32)> {
    let out = sw
        .handle_controller_bytes(SimTime::ZERO, &msg.encode(xid))
        .unwrap();
    out.to_controller
        .iter()
        .filter_map(|b| match Message::decode(b) {
            Ok((Message::Error(e), got_xid)) => Some((e.err_type, e.code, got_xid)),
            _ => None,
        })
        .collect()
}

#[test]
fn table_full_error_carries_request_xid() {
    let mut sw = mk_switch(2);
    for port in 1..=2 {
        let fm = FlowMod {
            priority: 5,
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(port)))
        };
        assert!(errors_of(&mut sw, Message::FlowMod(fm), 10 + port).is_empty());
    }
    let fm = FlowMod {
        priority: 5,
        ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(99)))
    };
    let errs = errors_of(&mut sw, Message::FlowMod(fm), 777);
    assert_eq!(
        errs,
        vec![(
            error_type::FLOW_MOD_FAILED,
            flow_mod_failed::TABLE_FULL,
            777
        )]
    );
    assert_eq!(sw.total_flows(), 2, "rejected add must not be installed");
}

#[test]
fn overlap_error_over_the_wire() {
    let mut sw = mk_switch(100);
    let wide = FlowMod {
        priority: 7,
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src(
                    "10.0.0.0".parse().unwrap(),
                    Some("255.0.0.0".parse().unwrap()),
                )),
        )
    };
    assert!(errors_of(&mut sw, Message::FlowMod(wide), 1).is_empty());
    let narrow = FlowMod {
        priority: 7,
        flags: flow_mod_flags::CHECK_OVERLAP,
        ..FlowMod::add(
            OxmMatch::new()
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src("10.1.2.3".parse().unwrap(), None)),
        )
    };
    let errs = errors_of(&mut sw, Message::FlowMod(narrow), 42);
    assert_eq!(
        errs,
        vec![(error_type::FLOW_MOD_FAILED, flow_mod_failed::OVERLAP, 42)]
    );
}

#[test]
fn controller_bound_message_rejected_as_bad_request() {
    let mut sw = mk_switch(10);
    // A PORT_STATUS arriving *at* a switch is protocol misuse.
    let bogus = Message::PortStatus(sav_openflow::messages::PortStatus {
        reason: sav_openflow::messages::PortStatusReason::Add,
        desc: PortDesc::new(9, MacAddr::from_index(9)),
    });
    let errs = errors_of(&mut sw, bogus, 5);
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].0, error_type::BAD_REQUEST);
}

#[test]
fn poisoned_stream_reports_codec_error() {
    let mut sw = mk_switch(10);
    // Valid message, then garbage claiming OpenFlow 1.0.
    let mut bytes = Message::Hello.encode(1);
    bytes.extend_from_slice(&[0x01, 0, 0, 8, 0, 0, 0, 0]);
    let err = sw.handle_controller_bytes(SimTime::ZERO, &bytes);
    assert!(err.is_err(), "bad version must poison the stream");
}

#[test]
fn bad_version_hello_yields_error_and_drop() {
    let mut sw = mk_switch(10);
    // A HELLO claiming OpenFlow 1.0: the deframer rejects the version, the
    // switch sends a HELLO_FAILED error as its goodbye, and the caller is
    // expected to drop the connection.
    let err = sw
        .handle_controller_bytes(SimTime::ZERO, &[0x01, 0, 0, 8, 0, 0, 0, 1])
        .unwrap_err();
    let goodbye = sw.goodbye(err).expect("bad version must produce a goodbye");
    match Message::decode(&goodbye) {
        Ok((Message::Error(e), _)) => {
            assert_eq!(e.err_type, error_type::HELLO_FAILED);
            assert_eq!(e.code, 0, "OFPHFC_INCOMPATIBLE");
        }
        other => panic!("expected an Error message, got {other:?}"),
    }
}

#[test]
fn poisoned_stream_stays_poisoned_without_panicking() {
    let mut sw = mk_switch(10);
    let mut bytes = Message::Hello.encode(1);
    bytes.extend_from_slice(&[0x01, 0, 0, 8, 0, 0, 0, 0]);
    assert!(sw.handle_controller_bytes(SimTime::ZERO, &bytes).is_err());
    // Every subsequent delivery — even of perfectly valid bytes — must
    // re-report the original error rather than panic or silently resume:
    // the embedding uses this to tear the connection down exactly once.
    for _ in 0..3 {
        let again = sw.handle_controller_bytes(SimTime::ZERO, &Message::Hello.encode(2));
        assert!(again.is_err(), "poison must be sticky");
    }
    // A reconnect resets the deframer and replays the handshake.
    let hello = sw.on_control_reconnect();
    assert!(matches!(Message::decode(&hello), Ok((Message::Hello, _))));
    assert!(sw
        .handle_controller_bytes(SimTime::ZERO, &Message::Hello.encode(3))
        .is_ok());
}

/// Role negotiation and generation fencing driven purely by encoded
/// bytes: grant, stale rejection (with the request's xid echoed), and the
/// IS_SLAVE fence on a state-changing message from a demoted connection.
#[test]
fn role_fencing_over_the_wire() {
    let mut sw = mk_switch(10);
    let master = |generation_id| {
        Message::RoleRequest(RoleMsg {
            role: ControllerRole::Master,
            generation_id,
        })
    };
    // Generation 5 is granted and echoed back in a ROLE_REPLY.
    let out = sw
        .handle_controller_bytes(SimTime::ZERO, &master(5).encode(31))
        .unwrap();
    let (msg, xid) = Message::decode(&out.to_controller[0]).unwrap();
    assert_eq!(xid, 31);
    assert_eq!(
        msg,
        Message::RoleReply(RoleMsg {
            role: ControllerRole::Master,
            generation_id: 5,
        })
    );
    // A reconnecting stale master replays generation 4: refused.
    sw.on_control_reconnect();
    let errs = errors_of(&mut sw, master(4), 57);
    assert_eq!(
        errs,
        vec![(
            error_type::ROLE_REQUEST_FAILED,
            role_request_failed::STALE,
            57
        )]
    );
    // Still not master, so its flow-mod bounces off the IS_SLAVE fence.
    let fm = FlowMod {
        priority: 5,
        ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
    };
    let errs = errors_of(&mut sw, Message::FlowMod(fm), 58);
    assert_eq!(errs, vec![(error_type::BAD_REQUEST, 10, 58)]);
    assert_eq!(sw.total_flows(), 0, "fenced flow-mod must not install");
}

#[test]
fn cookie_filtered_flow_stats_over_the_wire() {
    use sav_openflow::messages::{FlowStatsRequest, MultipartReplyBody, MultipartRequestBody};
    let mut sw = mk_switch(100);
    for (i, cookie) in [(1u32, 0xA0u64), (2, 0xB0)] {
        let fm = FlowMod {
            priority: 5,
            cookie,
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(i)))
        };
        sw.handle_controller_bytes(SimTime::ZERO, &Message::FlowMod(fm).encode(1))
            .unwrap();
    }
    let req = Message::MultipartRequest(MultipartRequestBody::Flow(FlowStatsRequest {
        cookie: 0xA0,
        cookie_mask: 0xF0,
        ..FlowStatsRequest::default()
    }));
    let out = sw
        .handle_controller_bytes(SimTime::ZERO, &req.encode(9))
        .unwrap();
    let (msg, xid) = Message::decode(&out.to_controller[0]).unwrap();
    assert_eq!(xid, 9);
    match msg {
        Message::MultipartReply(MultipartReplyBody::Flow(entries)) => {
            assert_eq!(entries.len(), 1);
            assert_eq!(entries[0].cookie, 0xA0);
        }
        other => panic!("expected flow stats, got {other:?}"),
    }
}
