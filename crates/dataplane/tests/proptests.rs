//! Property-based tests for the flow table and the matcher: the invariants
//! the pipeline correctness rests on.

use proptest::prelude::*;
use sav_dataplane::flow_table::FlowTable;
use sav_dataplane::matcher::{matches, MatchContext};
use sav_net::addr::MacAddr;
use sav_net::builder::build_ipv4_udp;
use sav_net::packet::ParsedPacket;
use sav_net::prelude::*;
use sav_openflow::messages::FlowMod;
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::prelude::Instruction;
use sav_sim::SimTime;
use std::net::Ipv4Addr;

fn frame(src: Ipv4Addr, sport: u16, dport: u16, smac: MacAddr) -> Vec<u8> {
    let udp = UdpRepr {
        src_port: sport,
        dst_port: dport,
        payload_len: 0,
    };
    let ip = Ipv4Repr::udp(src, "192.0.2.1".parse().unwrap(), udp.buffer_len());
    let eth = EthernetRepr {
        src: smac,
        dst: MacAddr::from_index(2),
        ethertype: EtherType::Ipv4,
    };
    build_ipv4_udp(&eth, &ip, &udp, b"")
}

proptest! {
    /// The table always returns the highest-priority matching entry,
    /// regardless of insertion order.
    #[test]
    fn lookup_returns_highest_priority(
        mut entries in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..32),
        probe_port in 1u32..8,
    ) {
        // Entry i matches in_port = (i % 8) + 1 at a random priority; the
        // cookie records (priority, index) for verification.
        let mut t = FlowTable::new(1024);
        for (i, (prio, _)) in entries.iter().enumerate() {
            let m = OxmMatch::new().with(OxmField::InPort((i as u32 % 8) + 1));
            let fm = FlowMod {
                priority: *prio,
                cookie: ((*prio as u64) << 32) | i as u64,
                instructions: vec![Instruction::GotoTable(1)],
                ..FlowMod::add(m)
            };
            t.add(&fm, SimTime::ZERO);
        }
        let f = frame("10.0.0.1".parse().unwrap(), 1, 2, MacAddr::from_index(1));
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext { in_port: probe_port, packet: &p };
        let hit = t.lookup(&ctx, SimTime::ZERO, f.len());
        // Compute the expected winner by hand: the max priority among
        // entries whose port matches, with identical (priority, match)
        // replaced by the later insertion.
        let mut best: Option<(u16, usize)> = None;
        // Deduplicate identical (priority, port) pairs: last write wins.
        let mut seen = std::collections::HashMap::new();
        for (i, (prio, _)) in entries.iter().enumerate() {
            seen.insert((*prio, (i as u32 % 8) + 1), i);
        }
        entries.clear();
        for ((prio, port), i) in seen {
            if port == probe_port {
                match best {
                    Some((bp, _)) if bp >= prio => {}
                    _ => best = Some((prio, i)),
                }
            }
        }
        match (hit, best) {
            (None, None) => {}
            (Some((_, cookie)), Some((prio, _))) => {
                prop_assert_eq!((cookie >> 32) as u16, prio, "highest priority wins");
            }
            (got, want) => prop_assert!(false, "mismatch: got {:?}, want {:?}", got.is_some(), want),
        }
    }

    /// Adding then strictly deleting every entry leaves an empty table.
    #[test]
    fn add_delete_roundtrip(ports in proptest::collection::vec(1u32..64, 1..40), prio in any::<u16>()) {
        let mut t = FlowTable::new(4096);
        let mut uniq: Vec<u32> = ports.clone();
        uniq.sort_unstable();
        uniq.dedup();
        for &p in &ports {
            let fm = FlowMod {
                priority: prio,
                ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(p)))
            };
            t.add(&fm, SimTime::ZERO);
        }
        prop_assert_eq!(t.len(), uniq.len(), "identical adds replace");
        for &p in &uniq {
            let mut fm = FlowMod::delete(0, OxmMatch::new().with(OxmField::InPort(p)));
            fm.command = sav_openflow::messages::FlowModCommand::DeleteStrict;
            fm.priority = prio;
            let removed = t.delete(&fm);
            prop_assert_eq!(removed.len(), 1);
        }
        prop_assert!(t.is_empty());
    }

    /// An entry never matches a packet its own match rejects, and the
    /// empty match accepts everything (soundness of the matcher against a
    /// brute-force field check).
    #[test]
    fn matcher_agrees_with_field_semantics(
        src in any::<u32>(),
        sport in any::<u16>(),
        rule_src in any::<u32>(),
        masklen in 0u8..=32,
        rule_port in proptest::option::of(any::<u16>()),
    ) {
        let src = Ipv4Addr::from(src);
        let f = frame(src, sport, 53, MacAddr::from_index(7));
        let p = ParsedPacket::parse(&f).unwrap();
        let cidr = sav_net::addr::Ipv4Cidr::new(Ipv4Addr::from(rule_src), masklen);
        let mut m = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::Ipv4Src(cidr.network(), Some(cidr.netmask())));
        if let Some(pt) = rule_port {
            m.push(OxmField::IpProto(17));
            m.push(OxmField::UdpSrc(pt));
        }
        let ctx = MatchContext { in_port: 1, packet: &p };
        let expect = cidr.contains(src) && rule_port.map(|pt| pt == sport).unwrap_or(true);
        prop_assert_eq!(matches(&m, &ctx), expect);
        prop_assert!(matches(&OxmMatch::new(), &ctx));
    }

    /// Timeout expiry is exact: entries die at their deadline, not before.
    #[test]
    fn expiry_is_exact(hard in 1u16..300, probe_offset in 0u64..600) {
        let mut t = FlowTable::new(16);
        let mut fm = FlowMod::add(OxmMatch::new());
        fm.hard_timeout = hard;
        t.add(&fm, SimTime::ZERO);
        let now = SimTime::from_secs(probe_offset);
        let expired = t.expire(now);
        if probe_offset >= u64::from(hard) {
            prop_assert_eq!(expired.len(), 1);
            prop_assert!(t.is_empty());
        } else {
            prop_assert!(expired.is_empty());
            prop_assert_eq!(t.len(), 1);
        }
    }
}
