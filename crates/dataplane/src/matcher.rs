//! OXM match evaluation against parsed frames.
//!
//! The switch parses each frame once into a [`ParsedPacket`] and then
//! evaluates candidate flow entries' matches against it. Field semantics
//! follow the OpenFlow 1.3 matching rules: a field that is absent from the
//! packet (e.g. `ipv4_src` on an ARP frame) makes any match requiring it
//! fail, and masked fields compare only the masked bits.

use sav_net::packet::{L4Info, ParsedPacket};
use sav_net::prelude::*;
use sav_openflow::oxm::{OxmField, OxmMatch};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Everything a match can see: the parsed packet plus pipeline metadata.
#[derive(Debug, Clone, Copy)]
pub struct MatchContext<'a> {
    /// The port the frame arrived on.
    pub in_port: u32,
    /// The parsed frame.
    pub packet: &'a ParsedPacket,
}

fn mac_masked_eq(value: MacAddr, mask: Option<MacAddr>, actual: MacAddr) -> bool {
    match mask {
        None => value == actual,
        Some(m) => value
            .as_bytes()
            .iter()
            .zip(m.as_bytes())
            .zip(actual.as_bytes())
            .all(|((v, m), a)| v & m == a & m),
    }
}

fn ip4_masked_eq(value: Ipv4Addr, mask: Option<Ipv4Addr>, actual: Ipv4Addr) -> bool {
    match mask {
        None => value == actual,
        Some(m) => u32::from(value) & u32::from(m) == u32::from(actual) & u32::from(m),
    }
}

fn ip6_masked_eq(value: Ipv6Addr, mask: Option<Ipv6Addr>, actual: Ipv6Addr) -> bool {
    match mask {
        None => value == actual,
        Some(m) => u128::from(value) & u128::from(m) == u128::from(actual) & u128::from(m),
    }
}

/// Does `m` match the frame in `ctx`? An empty match matches everything.
pub fn matches(m: &OxmMatch, ctx: &MatchContext<'_>) -> bool {
    let p = ctx.packet;
    for field in m.fields() {
        let ok = match *field {
            OxmField::InPort(want) => ctx.in_port == want,
            OxmField::EthDst(v, mask) => mac_masked_eq(v, mask, p.ethernet.dst),
            OxmField::EthSrc(v, mask) => mac_masked_eq(v, mask, p.ethernet.src),
            OxmField::EthType(want) => u16::from(p.ethernet.ethertype) == want,
            OxmField::IpProto(want) => match (&p.ipv4, &p.ipv6) {
                (Some(ip), _) => u8::from(ip.protocol) == want,
                (None, Some(ip)) => u8::from(ip.next_header) == want,
                _ => false,
            },
            OxmField::Ipv4Src(v, mask) => p
                .ipv4
                .map(|ip| ip4_masked_eq(v, mask, ip.src))
                .unwrap_or(false),
            OxmField::Ipv4Dst(v, mask) => p
                .ipv4
                .map(|ip| ip4_masked_eq(v, mask, ip.dst))
                .unwrap_or(false),
            OxmField::TcpSrc(want) => {
                matches!(p.l4, Some(L4Info::Tcp { src, .. }) if src == want)
            }
            OxmField::TcpDst(want) => {
                matches!(p.l4, Some(L4Info::Tcp { dst, .. }) if dst == want)
            }
            OxmField::UdpSrc(want) => {
                matches!(p.l4, Some(L4Info::Udp { src, .. }) if src == want)
            }
            OxmField::UdpDst(want) => {
                matches!(p.l4, Some(L4Info::Udp { dst, .. }) if dst == want)
            }
            OxmField::ArpOp(want) => p
                .arp
                .map(|a| match a.op {
                    ArpOp::Request => want == 1,
                    ArpOp::Reply => want == 2,
                })
                .unwrap_or(false),
            OxmField::ArpSpa(v, mask) => p
                .arp
                .map(|a| ip4_masked_eq(v, mask, a.sender_ip))
                .unwrap_or(false),
            OxmField::ArpTpa(v, mask) => p
                .arp
                .map(|a| ip4_masked_eq(v, mask, a.target_ip))
                .unwrap_or(false),
            OxmField::ArpSha(v) => p.arp.map(|a| a.sender_mac == v).unwrap_or(false),
            OxmField::ArpTha(v) => p.arp.map(|a| a.target_mac == v).unwrap_or(false),
            OxmField::Ipv6Src(v, mask) => p
                .ipv6
                .map(|ip| ip6_masked_eq(v, mask, ip.src))
                .unwrap_or(false),
            OxmField::Ipv6Dst(v, mask) => p
                .ipv6
                .map(|ip| ip6_masked_eq(v, mask, ip.dst))
                .unwrap_or(false),
        };
        if !ok {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_net::builder::{build_arp, build_ipv4_udp};

    fn udp_frame(src_ip: &str, dst_ip: &str, src_port: u16, dst_port: u16) -> Vec<u8> {
        let udp = UdpRepr {
            src_port,
            dst_port,
            payload_len: 0,
        };
        let ip = Ipv4Repr::udp(
            src_ip.parse().unwrap(),
            dst_ip.parse().unwrap(),
            udp.buffer_len(),
        );
        let eth = EthernetRepr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, b"")
    }

    fn ctx(packet: &ParsedPacket, in_port: u32) -> MatchContext<'_> {
        MatchContext { in_port, packet }
    }

    #[test]
    fn empty_match_matches_all() {
        let f = udp_frame("10.0.0.1", "10.0.0.2", 1, 2);
        let p = ParsedPacket::parse(&f).unwrap();
        assert!(matches(&OxmMatch::new(), &ctx(&p, 1)));
    }

    #[test]
    fn sav_binding_rule_matching() {
        let f = udp_frame("10.0.1.5", "8.8.8.8", 1000, 53);
        let p = ParsedPacket::parse(&f).unwrap();
        let rule = OxmMatch::new()
            .with(OxmField::InPort(3))
            .with(OxmField::EthType(0x0800))
            .with(OxmField::EthSrc(MacAddr::from_index(1), None))
            .with(OxmField::Ipv4Src("10.0.1.5".parse().unwrap(), None));
        assert!(matches(&rule, &ctx(&p, 3)));
        // Wrong port.
        assert!(!matches(&rule, &ctx(&p, 4)));
        // Spoofed source.
        let spoofed = udp_frame("10.0.9.9", "8.8.8.8", 1000, 53);
        let sp = ParsedPacket::parse(&spoofed).unwrap();
        assert!(!matches(&rule, &ctx(&sp, 3)));
    }

    #[test]
    fn masked_ipv4_prefix() {
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::Ipv4Src(
                "10.0.0.0".parse().unwrap(),
                Some("255.255.0.0".parse().unwrap()),
            ));
        let inside = udp_frame("10.0.200.1", "1.1.1.1", 1, 2);
        let p = ParsedPacket::parse(&inside).unwrap();
        assert!(matches(&rule, &ctx(&p, 1)));
        let outside = udp_frame("10.1.0.1", "1.1.1.1", 1, 2);
        let p = ParsedPacket::parse(&outside).unwrap();
        assert!(!matches(&rule, &ctx(&p, 1)));
    }

    #[test]
    fn masked_mac() {
        let rule = OxmMatch::new().with(OxmField::EthDst(
            MacAddr([0x01, 0x00, 0x5e, 0, 0, 0]),
            Some(MacAddr([0xff, 0xff, 0xff, 0x80, 0, 0])),
        ));
        let mut f = udp_frame("10.0.0.1", "224.0.0.5", 1, 2);
        f[0..6].copy_from_slice(&[0x01, 0x00, 0x5e, 0x00, 0x00, 0x05]);
        let p = ParsedPacket::parse(&f).unwrap();
        assert!(matches(&rule, &ctx(&p, 1)));
    }

    #[test]
    fn l4_ports() {
        let f = udp_frame("10.0.0.1", "10.0.0.2", 5353, 53);
        let p = ParsedPacket::parse(&f).unwrap();
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(17))
            .with(OxmField::UdpDst(53));
        assert!(matches(&rule, &ctx(&p, 1)));
        // TCP match against a UDP packet fails.
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::IpProto(6))
            .with(OxmField::TcpDst(53));
        assert!(!matches(&rule, &ctx(&p, 1)));
    }

    #[test]
    fn ip_fields_fail_on_arp() {
        let arp = ArpRepr::request(
            MacAddr::from_index(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.2".parse().unwrap(),
        );
        let f = build_arp(&arp);
        let p = ParsedPacket::parse(&f).unwrap();
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::Ipv4Src("10.0.0.1".parse().unwrap(), None));
        assert!(!matches(&rule, &ctx(&p, 1)));
        // But ARP fields work.
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0806))
            .with(OxmField::ArpOp(1))
            .with(OxmField::ArpSpa("10.0.0.1".parse().unwrap(), None))
            .with(OxmField::ArpSha(MacAddr::from_index(1)));
        assert!(matches(&rule, &ctx(&p, 1)));
        let rule = OxmMatch::new()
            .with(OxmField::EthType(0x0806))
            .with(OxmField::ArpOp(2));
        assert!(!matches(&rule, &ctx(&p, 1)));
    }

    #[test]
    fn eth_type_mismatch() {
        let f = udp_frame("10.0.0.1", "10.0.0.2", 1, 2);
        let p = ParsedPacket::parse(&f).unwrap();
        let rule = OxmMatch::new().with(OxmField::EthType(0x0806));
        assert!(!matches(&rule, &ctx(&p, 1)));
    }
}
