//! # sav-dataplane — a software OpenFlow 1.3 switch and host endpoints
//!
//! The forwarding substrate of the `sdn-sav` testbed:
//!
//! * [`matcher`] — evaluates OXM matches against parsed frames (with masks).
//! * [`flow_table`] — priority-ordered flow tables with idle/hard timeouts,
//!   counters, and loose/strict modify/delete semantics.
//! * [`switch`] — [`switch::OpenFlowSwitch`], a sans-IO switch that consumes
//!   *encoded* OpenFlow bytes from its control channel and raw Ethernet
//!   frames from its ports, and produces encoded replies plus frames to
//!   transmit. Everything a controller does to it travels through the real
//!   `sav-openflow` codec, exactly as over a TCP control channel.
//! * [`host`] — [`host::Host`], a minimal endpoint stack (ARP, IPv4/UDP,
//!   ICMP echo, DNS responder, DHCP client) able to source both honest and
//!   spoofed traffic for the SAV evaluation.
//!
//! The switch deliberately implements the OpenFlow 1.3 *required* behaviour
//! the SAV system relies on — multi-table pipeline, table-miss entries,
//! priority matching, timeouts with `FLOW_REMOVED`, `PACKET_IN`/`PACKET_OUT`
//! with optional buffering, port stats — and returns proper `OFPT_ERROR`
//! replies for the rest (groups, meters), like a small hardware switch.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow_table;
pub mod host;
pub mod matcher;
pub mod switch;

pub use flow_table::{FlowEntry, FlowTable};
pub use host::{DhcpServerState, Host, HostApp, HostConfig, HostOutput, SpoofMode};
pub use matcher::{matches, MatchContext};
pub use switch::{OpenFlowSwitch, SwitchConfig, SwitchOutput};
