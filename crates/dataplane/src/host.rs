//! [`Host`] — a minimal endpoint stack for the simulated data plane.
//!
//! Hosts speak real wire formats: ARP resolution with a pending-packet
//! queue, IPv4/UDP with checksums, ICMP echo, a DNS-responder application
//! (the "open resolver" in the reflection scenario), a UDP echo service and
//! a DHCP client. A host can also emit **spoofed** traffic — the attack
//! primitive whose containment this whole workspace measures — while still
//! performing honest L2 resolution, exactly like a real compromised machine.
//!
//! The simulation models a flat L2 domain (hosts ARP for any destination
//! IP, including ones in other subnets). This keeps the data plane purely
//! OpenFlow-driven — no router model is needed — and is documented as a
//! substitution in DESIGN.md: SAV behaviour depends on edge-port bindings,
//! not on L3 hops.

use sav_net::builder::{build_arp, build_ipv4_udp};
use sav_net::packet::{L4Info, ParsedPacket};
use sav_net::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Application behaviour bound to a host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostApp {
    /// Pure client / sink: receives and records, never answers.
    Sink,
    /// Echo any UDP datagram arriving on `port` back to its source.
    UdpEcho {
        /// Listening port.
        port: u16,
    },
    /// An open DNS resolver: answers any DNS query on port 53 with a
    /// response `amplification` times the request size (padded with TXT
    /// records) — the reflection-attack amplifier.
    DnsResolver {
        /// Approximate response/request size ratio.
        amplification: usize,
    },
    /// A generic UDP amplifier: any datagram arriving on `port` is answered
    /// with a padded reply `amplification` times the request size. Models
    /// non-DNS reflectors (NTP monlist on 123, SSDP on 1900, ...).
    UdpAmplifier {
        /// Listening port.
        port: u16,
        /// Approximate response/request size ratio.
        amplification: usize,
    },
    /// A DHCP server managing one address pool. Runs as a regular host so
    /// that DHCP traffic crosses the data plane, where SAV snooping rules
    /// can genuinely observe it.
    DhcpServer(DhcpServerState),
}

/// State of a host-resident DHCP server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpServerState {
    /// Pool the server allocates from (host addresses only).
    pub pool: sav_net::addr::Ipv4Cidr,
    /// First pool index handed out (skips infrastructure addresses).
    pub first_index: u32,
    /// Next fresh pool index to try.
    next_index: u32,
    /// Current leases by client MAC.
    leases: HashMap<MacAddr, Ipv4Addr>,
    /// Lease time offered, seconds.
    pub lease_secs: u32,
}

impl DhcpServerState {
    /// A server over `pool` starting allocations at `first_index`.
    pub fn new(pool: sav_net::addr::Ipv4Cidr, first_index: u32, lease_secs: u32) -> Self {
        DhcpServerState {
            pool,
            first_index,
            next_index: first_index,
            leases: HashMap::new(),
            lease_secs,
        }
    }

    /// Current leases (client MAC → address).
    pub fn leases(&self) -> &HashMap<MacAddr, Ipv4Addr> {
        &self.leases
    }

    fn allocate(&mut self, mac: MacAddr) -> Option<Ipv4Addr> {
        if let Some(ip) = self.leases.get(&mac) {
            return Some(*ip);
        }
        let taken: std::collections::HashSet<Ipv4Addr> = self.leases.values().copied().collect();
        // Linear scan from next_index with wraparound over the pool.
        let size = self.pool.size() as u32;
        for _ in 0..size {
            let idx = self.next_index;
            self.next_index += 1;
            if self.next_index >= size.saturating_sub(1) {
                self.next_index = self.first_index;
            }
            if let Some(ip) = self.pool.nth(idx) {
                if ip != self.pool.broadcast() && !taken.contains(&ip) {
                    self.leases.insert(mac, ip);
                    return Some(ip);
                }
            }
        }
        None
    }

    fn release(&mut self, mac: MacAddr) {
        self.leases.remove(&mac);
    }
}

/// How to falsify the source of an outgoing packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpoofMode {
    /// Honest traffic.
    None,
    /// Spoof the IPv4 source address only (the common DDoS case).
    Ipv4(Ipv4Addr),
    /// Spoof both the IPv4 source and the Ethernet source.
    Ipv4AndMac(Ipv4Addr, MacAddr),
}

/// Static host parameters.
#[derive(Debug, Clone)]
pub struct HostConfig {
    /// The host's MAC address.
    pub mac: MacAddr,
    /// The host's IPv4 address (may be reassigned by DHCP).
    pub ip: Ipv4Addr,
    /// Application behaviour.
    pub app: HostApp,
}

/// A UDP datagram (or ICMP echo) delivered to this host's application.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// IPv4 source as it appeared on the wire (spoofed or not).
    pub src_ip: Ipv4Addr,
    /// IPv4 destination.
    pub dst_ip: Ipv4Addr,
    /// UDP source port (0 for ICMP).
    pub src_port: u16,
    /// UDP destination port (0 for ICMP).
    pub dst_port: u16,
    /// Application payload bytes.
    pub payload: Vec<u8>,
    /// Size of the whole frame, for bandwidth accounting.
    pub frame_len: usize,
}

/// Frames to transmit plus payloads delivered locally.
#[derive(Debug, Default)]
pub struct HostOutput {
    /// Frames for the host's access link.
    pub tx: Vec<Vec<u8>>,
    /// Datagrams handed to the local application.
    pub delivered: Vec<Delivery>,
}

impl HostOutput {
    fn merge(&mut self, other: HostOutput) {
        self.tx.extend(other.tx);
        self.delivered.extend(other.delivered);
    }
}

#[derive(Debug, Clone)]
struct QueuedDatagram {
    dst_ip: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: Vec<u8>,
    spoof: SpoofMode,
}

/// DHCP client state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhcpState {
    /// Not using DHCP.
    Idle,
    /// DISCOVER sent, waiting for OFFER.
    Discovering(u32),
    /// REQUEST sent, waiting for ACK.
    Requesting(u32),
    /// Address bound.
    Bound,
}

/// A simulated endpoint.
pub struct Host {
    /// The host's MAC address (stable).
    pub mac: MacAddr,
    /// The host's current IPv4 address.
    pub ip: Ipv4Addr,
    app: HostApp,
    arp_table: HashMap<Ipv4Addr, MacAddr>,
    pending: HashMap<Ipv4Addr, Vec<QueuedDatagram>>,
    /// DHCP client state.
    pub dhcp: DhcpState,
    /// Count of ARP requests sent (control-overhead accounting).
    pub arp_requests_sent: u64,
}

impl Host {
    /// Create a host from config.
    pub fn new(config: HostConfig) -> Host {
        Host {
            mac: config.mac,
            ip: config.ip,
            app: config.app,
            arp_table: HashMap::new(),
            pending: HashMap::new(),
            dhcp: DhcpState::Idle,
            arp_requests_sent: 0,
        }
    }

    /// Pre-seed an ARP entry (used by workload setup to skip resolution).
    pub fn learn_arp(&mut self, ip: Ipv4Addr, mac: MacAddr) {
        self.arp_table.insert(ip, mac);
    }

    /// Send a UDP datagram to `dst_ip`. If the destination MAC is unknown,
    /// an ARP request is emitted and the datagram is queued until the reply
    /// arrives. Spoofing (if any) affects only the emitted packet's source
    /// fields, never the ARP exchange.
    pub fn send_udp(
        &mut self,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
        spoof: SpoofMode,
    ) -> HostOutput {
        let mut out = HostOutput::default();
        match self.arp_table.get(&dst_ip) {
            Some(&dst_mac) => {
                out.tx
                    .push(self.build_udp(dst_mac, dst_ip, src_port, dst_port, payload, spoof));
            }
            None => {
                self.pending
                    .entry(dst_ip)
                    .or_default()
                    .push(QueuedDatagram {
                        dst_ip,
                        src_port,
                        dst_port,
                        payload: payload.to_vec(),
                        spoof,
                    });
                let arp = ArpRepr::request(self.mac, self.ip, dst_ip);
                self.arp_requests_sent += 1;
                out.tx.push(build_arp(&arp));
            }
        }
        out
    }

    fn build_udp(
        &self,
        dst_mac: MacAddr,
        dst_ip: Ipv4Addr,
        src_port: u16,
        dst_port: u16,
        payload: &[u8],
        spoof: SpoofMode,
    ) -> Vec<u8> {
        let (src_ip, src_mac) = match spoof {
            SpoofMode::None => (self.ip, self.mac),
            SpoofMode::Ipv4(ip) => (ip, self.mac),
            SpoofMode::Ipv4AndMac(ip, mac) => (ip, mac),
        };
        let udp = UdpRepr {
            src_port,
            dst_port,
            payload_len: payload.len(),
        };
        let ip = Ipv4Repr::udp(src_ip, dst_ip, udp.buffer_len());
        let eth = EthernetRepr {
            src: src_mac,
            dst: dst_mac,
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, payload)
    }

    /// Begin a DHCP exchange (broadcast DISCOVER).
    pub fn dhcp_discover(&mut self, xid: u32) -> HostOutput {
        self.dhcp = DhcpState::Discovering(xid);
        let msg = DhcpRepr::client(DhcpMessageType::Discover, xid, self.mac);
        HostOutput {
            tx: vec![self.dhcp_frame(&msg)],
            delivered: vec![],
        }
    }

    /// Release the current DHCP address (unicast-as-broadcast RELEASE).
    pub fn dhcp_release(&mut self, xid: u32) -> HostOutput {
        let mut msg = DhcpRepr::client(DhcpMessageType::Release, xid, self.mac);
        msg.client_ip = self.ip;
        self.dhcp = DhcpState::Idle;
        HostOutput {
            tx: vec![self.dhcp_frame(&msg)],
            delivered: vec![],
        }
    }

    fn dhcp_frame(&self, msg: &DhcpRepr) -> Vec<u8> {
        let payload = msg.to_bytes();
        let udp = UdpRepr {
            src_port: sav_net::dhcpv4::DHCP_CLIENT_PORT,
            dst_port: sav_net::dhcpv4::DHCP_SERVER_PORT,
            payload_len: payload.len(),
        };
        // Clients without an address use 0.0.0.0 → 255.255.255.255.
        let src_ip = if self.dhcp == DhcpState::Bound {
            self.ip
        } else {
            Ipv4Addr::UNSPECIFIED
        };
        let ip = Ipv4Repr::udp(src_ip, Ipv4Addr::BROADCAST, udp.buffer_len());
        let eth = EthernetRepr {
            src: self.mac,
            dst: MacAddr::BROADCAST,
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, &payload)
    }

    /// Process a frame arriving on the host's link.
    pub fn on_frame(&mut self, frame: &[u8]) -> HostOutput {
        let mut out = HostOutput::default();
        let Ok(p) = ParsedPacket::parse(frame) else {
            return out;
        };
        // Accept frames addressed to us or broadcast/multicast.
        if p.ethernet.dst != self.mac
            && !p.ethernet.dst.is_broadcast()
            && !p.ethernet.dst.is_multicast()
        {
            return out;
        }
        if let Some(arp) = p.arp {
            out.merge(self.on_arp(&arp));
            return out;
        }
        let Some(ip) = p.ipv4 else {
            return out;
        };
        // DHCP frames are handled before the IP-destination filter: client
        // replies may target the offered IP or broadcast, and a server host
        // must see broadcast DISCOVERs.
        if p.is_dhcp() {
            if let Some(payload) = p.l4_payload(frame) {
                if let Ok(dhcp) = DhcpRepr::parse(payload) {
                    if matches!(self.app, HostApp::DhcpServer(_)) {
                        out.merge(self.serve_dhcp(&dhcp, p.ethernet.src));
                    } else {
                        out.merge(self.on_dhcp(&dhcp));
                    }
                }
            }
            return out;
        }
        if ip.dst != self.ip && ip.dst != Ipv4Addr::BROADCAST {
            return out;
        }
        match p.l4 {
            Some(L4Info::Udp { src, dst }) => {
                let payload = p.l4_payload(frame).unwrap_or(&[]).to_vec();
                out.delivered.push(Delivery {
                    src_ip: ip.src,
                    dst_ip: ip.dst,
                    src_port: src,
                    dst_port: dst,
                    payload: payload.clone(),
                    frame_len: frame.len(),
                });
                out.merge(self.run_app(ip.src, src, dst, &payload));
            }
            Some(L4Info::Icmp { icmp_type: 8, .. }) => {
                if let Some(off) = p.l4_payload_offset {
                    if let Ok(req) = Icmpv4Repr::parse(&frame[off..]) {
                        let reply = req.reply();
                        let icmp_bytes = reply.to_bytes();
                        let ipr = Ipv4Repr {
                            src: self.ip,
                            dst: ip.src,
                            protocol: IpProtocol::Icmp,
                            payload_len: icmp_bytes.len(),
                            ttl: sav_net::ipv4::DEFAULT_TTL,
                        };
                        let eth = EthernetRepr {
                            src: self.mac,
                            dst: p.ethernet.src,
                            ethertype: EtherType::Ipv4,
                        };
                        let mut buf = vec![0u8; ETHERNET_HEADER_LEN + ipr.buffer_len()];
                        {
                            let mut f = EthernetFrame::new_unchecked(&mut buf[..]);
                            eth.emit(&mut f);
                            let mut ipp = Ipv4Packet::new_unchecked(f.payload_mut());
                            ipr.emit(&mut ipp);
                            ipp.payload_mut().copy_from_slice(&icmp_bytes);
                        }
                        out.tx.push(buf);
                    }
                }
            }
            _ => {}
        }
        out
    }

    fn on_arp(&mut self, arp: &ArpRepr) -> HostOutput {
        let mut out = HostOutput::default();
        // Learn the sender mapping opportunistically (hosts do).
        if arp.sender_ip != Ipv4Addr::UNSPECIFIED {
            self.arp_table.insert(arp.sender_ip, arp.sender_mac);
            out.merge(self.flush_pending(arp.sender_ip));
        }
        if arp.op == ArpOp::Request && arp.target_ip == self.ip {
            let reply = arp.reply_to(self.mac);
            out.tx.push(build_arp(&reply));
        }
        out
    }

    fn flush_pending(&mut self, ip: Ipv4Addr) -> HostOutput {
        let mut out = HostOutput::default();
        let Some(queued) = self.pending.remove(&ip) else {
            return out;
        };
        let Some(&dst_mac) = self.arp_table.get(&ip) else {
            return out;
        };
        for q in queued {
            out.tx.push(self.build_udp(
                dst_mac, q.dst_ip, q.src_port, q.dst_port, &q.payload, q.spoof,
            ));
        }
        out
    }

    fn on_dhcp(&mut self, msg: &DhcpRepr) -> HostOutput {
        let mut out = HostOutput::default();
        if msg.client_mac != self.mac {
            return out;
        }
        match (self.dhcp, msg.message_type) {
            (DhcpState::Discovering(xid), DhcpMessageType::Offer) if msg.xid == xid => {
                let mut req = DhcpRepr::client(DhcpMessageType::Request, xid, self.mac);
                req.requested_ip = Some(msg.your_ip);
                req.server_id = msg.server_id;
                self.dhcp = DhcpState::Requesting(xid);
                out.tx.push(self.dhcp_frame(&req));
            }
            (DhcpState::Requesting(xid), DhcpMessageType::Ack) if msg.xid == xid => {
                self.ip = msg.your_ip;
                self.dhcp = DhcpState::Bound;
                // Gratuitous ARP announces the new binding; the SDN host
                // tracker and the other hosts' ARP caches learn from it.
                let garp = ArpRepr {
                    op: ArpOp::Request,
                    sender_mac: self.mac,
                    sender_ip: self.ip,
                    target_mac: MacAddr::ZERO,
                    target_ip: self.ip,
                };
                out.tx.push(build_arp(&garp));
            }
            (DhcpState::Requesting(xid), DhcpMessageType::Nak) if msg.xid == xid => {
                self.dhcp = DhcpState::Idle;
            }
            _ => {}
        }
        out
    }

    /// Server-side DHCP: answer DISCOVER with OFFER, REQUEST with ACK,
    /// honour RELEASE. Replies unicast to the client MAC with broadcast IP
    /// (the standard pre-address exchange).
    fn serve_dhcp(&mut self, msg: &DhcpRepr, client_l2: MacAddr) -> HostOutput {
        let mut out = HostOutput::default();
        let HostApp::DhcpServer(ref mut state) = self.app else {
            return out;
        };
        let reply = match msg.message_type {
            DhcpMessageType::Discover => {
                let Some(ip) = state.allocate(msg.client_mac) else {
                    return out;
                };
                let mut r = DhcpRepr::client(DhcpMessageType::Discover, msg.xid, msg.client_mac);
                r.message_type = DhcpMessageType::Offer;
                r.your_ip = ip;
                r.server_id = Some(self.ip);
                r.lease_secs = Some(state.lease_secs);
                r.subnet_mask = Some(state.pool.netmask());
                Some(r)
            }
            DhcpMessageType::Request => {
                let offered = state.allocate(msg.client_mac);
                match (offered, msg.requested_ip) {
                    (Some(ip), Some(req)) if ip == req => {
                        let mut r =
                            DhcpRepr::client(DhcpMessageType::Request, msg.xid, msg.client_mac);
                        r.message_type = DhcpMessageType::Ack;
                        r.your_ip = ip;
                        r.server_id = Some(self.ip);
                        r.lease_secs = Some(state.lease_secs);
                        r.subnet_mask = Some(state.pool.netmask());
                        Some(r)
                    }
                    _ => {
                        let mut r =
                            DhcpRepr::client(DhcpMessageType::Request, msg.xid, msg.client_mac);
                        r.message_type = DhcpMessageType::Nak;
                        r.server_id = Some(self.ip);
                        Some(r)
                    }
                }
            }
            DhcpMessageType::Release => {
                state.release(msg.client_mac);
                None
            }
            _ => None,
        };
        if let Some(r) = reply {
            let payload = r.to_bytes();
            let udp = UdpRepr {
                src_port: sav_net::dhcpv4::DHCP_SERVER_PORT,
                dst_port: sav_net::dhcpv4::DHCP_CLIENT_PORT,
                payload_len: payload.len(),
            };
            let ip = Ipv4Repr::udp(self.ip, Ipv4Addr::BROADCAST, udp.buffer_len());
            let eth = EthernetRepr {
                src: self.mac,
                dst: client_l2,
                ethertype: EtherType::Ipv4,
            };
            out.tx.push(build_ipv4_udp(&eth, &ip, &udp, &payload));
        }
        out
    }

    fn run_app(
        &mut self,
        peer_ip: Ipv4Addr,
        peer_port: u16,
        local_port: u16,
        payload: &[u8],
    ) -> HostOutput {
        let mut out = HostOutput::default();
        match &self.app {
            HostApp::Sink => {}
            HostApp::UdpEcho { port } if *port == local_port => {
                out.merge(self.send_udp(peer_ip, local_port, peer_port, payload, SpoofMode::None));
            }
            HostApp::UdpEcho { .. } => {}
            HostApp::DnsResolver { amplification } if local_port == 53 => {
                if let Ok(query) = DnsRepr::parse(payload) {
                    if !query.flags.response {
                        let amp = *amplification;
                        let target = payload.len().saturating_mul(amp).max(payload.len());
                        let mut answers = Vec::new();
                        let mut size = query.buffer_len();
                        while size < target {
                            let a = sav_net::dns::DnsAnswer::txt(
                                &query.question.name,
                                300,
                                &[b'x'; 120],
                            );
                            size += a.name.len() + 2 + 10 + a.rdata.len();
                            answers.push(a);
                        }
                        let resp = query.respond(answers);
                        let bytes = resp.to_bytes();
                        out.merge(self.send_udp(peer_ip, 53, peer_port, &bytes, SpoofMode::None));
                    }
                }
            }
            HostApp::DnsResolver { .. } => {}
            HostApp::UdpAmplifier {
                port,
                amplification,
            } if *port == local_port => {
                let target = payload
                    .len()
                    .saturating_mul(*amplification)
                    .max(payload.len())
                    .min(4096);
                let reply = vec![b'A'; target];
                out.merge(self.send_udp(peer_ip, local_port, peer_port, &reply, SpoofMode::None));
            }
            HostApp::UdpAmplifier { .. } => {}
            // DHCP is handled before UDP delivery in on_frame.
            HostApp::DhcpServer(_) => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(ip: &str, idx: u64, app: HostApp) -> Host {
        Host::new(HostConfig {
            mac: MacAddr::from_index(idx),
            ip: ip.parse().unwrap(),
            app,
        })
    }

    #[test]
    fn arp_resolution_then_send() {
        let mut a = host("10.0.0.1", 1, HostApp::Sink);
        let mut b = host("10.0.0.2", 2, HostApp::Sink);

        // a sends to b: first an ARP request goes out.
        let out = a.send_udp(
            "10.0.0.2".parse().unwrap(),
            1000,
            2000,
            b"hi",
            SpoofMode::None,
        );
        assert_eq!(out.tx.len(), 1);
        let p = ParsedPacket::parse(&out.tx[0]).unwrap();
        assert!(p.arp.is_some());
        assert_eq!(a.arp_requests_sent, 1);

        // b replies; a flushes the queued datagram.
        let breply = b.on_frame(&out.tx[0]);
        assert_eq!(breply.tx.len(), 1);
        let aout = a.on_frame(&breply.tx[0]);
        assert_eq!(aout.tx.len(), 1);
        let p = ParsedPacket::parse(&aout.tx[0]).unwrap();
        assert_eq!(p.ipv4_src(), Some("10.0.0.1".parse().unwrap()));
        assert_eq!(p.l4_dst_port(), Some(2000));

        // b receives the datagram.
        let bout = b.on_frame(&aout.tx[0]);
        assert_eq!(bout.delivered.len(), 1);
        assert_eq!(bout.delivered[0].payload, b"hi");
    }

    #[test]
    fn spoofed_send_keeps_honest_arp() {
        let mut a = host("10.0.0.1", 1, HostApp::Sink);
        a.learn_arp("10.0.0.2".parse().unwrap(), MacAddr::from_index(2));
        let victim: Ipv4Addr = "203.0.113.7".parse().unwrap();
        let out = a.send_udp(
            "10.0.0.2".parse().unwrap(),
            1000,
            53,
            b"q",
            SpoofMode::Ipv4(victim),
        );
        let p = ParsedPacket::parse(&out.tx[0]).unwrap();
        assert_eq!(p.ipv4_src(), Some(victim));
        assert_eq!(p.ethernet.src, a.mac, "MAC stays honest in Ipv4 mode");

        let out = a.send_udp(
            "10.0.0.2".parse().unwrap(),
            1000,
            53,
            b"q",
            SpoofMode::Ipv4AndMac(victim, MacAddr::from_index(99)),
        );
        let p = ParsedPacket::parse(&out.tx[0]).unwrap();
        assert_eq!(p.ethernet.src, MacAddr::from_index(99));
    }

    #[test]
    fn udp_echo_answers() {
        let mut e = host("10.0.0.9", 9, HostApp::UdpEcho { port: 7 });
        e.learn_arp("10.0.0.1".parse().unwrap(), MacAddr::from_index(1));
        let mut a = host("10.0.0.1", 1, HostApp::Sink);
        a.learn_arp("10.0.0.9".parse().unwrap(), MacAddr::from_index(9));
        let out = a.send_udp(
            "10.0.0.9".parse().unwrap(),
            5555,
            7,
            b"ping",
            SpoofMode::None,
        );
        let eo = e.on_frame(&out.tx[0]);
        assert_eq!(eo.delivered.len(), 1);
        assert_eq!(eo.tx.len(), 1, "echo reply");
        let p = ParsedPacket::parse(&eo.tx[0]).unwrap();
        assert_eq!(p.l4_dst_port(), Some(5555));
        // Reply delivered back to a.
        let ao = a.on_frame(&eo.tx[0]);
        assert_eq!(ao.delivered.len(), 1);
        assert_eq!(ao.delivered[0].payload, b"ping");
        // Wrong port: delivered but not echoed.
        let out = a.send_udp("10.0.0.9".parse().unwrap(), 5555, 8, b"x", SpoofMode::None);
        let eo = e.on_frame(&out.tx[0]);
        assert!(eo.tx.is_empty());
    }

    #[test]
    fn dns_resolver_amplifies() {
        let mut r = host("10.0.0.53", 53, HostApp::DnsResolver { amplification: 10 });
        r.learn_arp("203.0.113.7".parse().unwrap(), MacAddr::from_index(7));
        let query = DnsRepr::query(42, "victim.example", DnsType::Any).to_bytes();
        let mut bot = host("10.0.0.66", 66, HostApp::Sink);
        bot.learn_arp("10.0.0.53".parse().unwrap(), MacAddr::from_index(53));
        // Bot spoofs the victim's address.
        let out = bot.send_udp(
            "10.0.0.53".parse().unwrap(),
            33333,
            53,
            &query,
            SpoofMode::Ipv4("203.0.113.7".parse().unwrap()),
        );
        let ro = r.on_frame(&out.tx[0]);
        assert_eq!(ro.tx.len(), 1, "amplified response emitted");
        let resp = ParsedPacket::parse(&ro.tx[0]).unwrap();
        // Response goes to the *victim*, not the bot: reflection.
        assert_eq!(resp.ipv4_dst(), Some("203.0.113.7".parse().unwrap()));
        // The x10 target applies to the UDP payload; frame-level overhead
        // (42 header bytes on each side) dilutes it slightly.
        assert!(
            ro.tx[0].len() >= out.tx[0].len() * 4,
            "amplification: {} -> {}",
            out.tx[0].len(),
            ro.tx[0].len()
        );
    }

    #[test]
    fn udp_amplifier_reflects_on_its_port_only() {
        let mut ntp = host(
            "10.0.0.123",
            123,
            HostApp::UdpAmplifier {
                port: 123,
                amplification: 20,
            },
        );
        ntp.learn_arp("203.0.113.7".parse().unwrap(), MacAddr::from_index(7));
        let mut bot = host("10.0.0.66", 66, HostApp::Sink);
        bot.learn_arp("10.0.0.123".parse().unwrap(), MacAddr::from_index(123));
        // monlist-style tiny query, source spoofed to the victim.
        let out = bot.send_udp(
            "10.0.0.123".parse().unwrap(),
            40000,
            123,
            b"\x17\x00\x03\x2a",
            SpoofMode::Ipv4("203.0.113.7".parse().unwrap()),
        );
        let ro = ntp.on_frame(&out.tx[0]);
        assert_eq!(ro.tx.len(), 1, "amplified reply emitted");
        let resp = ParsedPacket::parse(&ro.tx[0]).unwrap();
        assert_eq!(resp.ipv4_dst(), Some("203.0.113.7".parse().unwrap()));
        assert_eq!(resp.l4_src_port(), Some(123));
        // x20 applies to the UDP payload: 4-byte query -> 80-byte reply.
        assert_eq!(ro.tx[0].len(), 42 + 4 * 20, "payload-level amplification");
        // Off-port traffic is delivered but never answered, and the reply
        // size is capped so huge requests don't explode.
        let out = bot.send_udp(
            "10.0.0.123".parse().unwrap(),
            40000,
            124,
            b"x",
            SpoofMode::None,
        );
        assert!(ntp.on_frame(&out.tx[0]).tx.is_empty());
        let big = vec![0u8; 2000];
        let out = bot.send_udp(
            "10.0.0.123".parse().unwrap(),
            40000,
            123,
            &big,
            SpoofMode::None,
        );
        let ro = ntp.on_frame(&out.tx[0]);
        assert!(ro.tx[0].len() <= 4096 + 42, "reply payload capped at 4096");
    }

    #[test]
    fn dns_resolver_ignores_responses() {
        let mut r = host("10.0.0.53", 53, HostApp::DnsResolver { amplification: 10 });
        let resp = DnsRepr::query(1, "a.b", DnsType::A)
            .respond(vec![])
            .to_bytes();
        let mut c = host("10.0.0.1", 1, HostApp::Sink);
        c.learn_arp("10.0.0.53".parse().unwrap(), MacAddr::from_index(53));
        let out = c.send_udp("10.0.0.53".parse().unwrap(), 53, 53, &resp, SpoofMode::None);
        let ro = r.on_frame(&out.tx[0]);
        assert!(ro.tx.is_empty(), "responses must not be re-amplified");
    }

    #[test]
    fn icmp_echo_reply() {
        let mut h = host("10.0.0.5", 5, HostApp::Sink);
        let icmp = Icmpv4Repr::echo_request(7, 1, b"abc").to_bytes();
        let ipr = Ipv4Repr {
            src: "10.0.0.1".parse().unwrap(),
            dst: "10.0.0.5".parse().unwrap(),
            protocol: IpProtocol::Icmp,
            payload_len: icmp.len(),
            ttl: 64,
        };
        let eth = EthernetRepr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(5),
            ethertype: EtherType::Ipv4,
        };
        let mut frame = vec![0u8; ETHERNET_HEADER_LEN + ipr.buffer_len()];
        {
            let mut f = EthernetFrame::new_unchecked(&mut frame[..]);
            eth.emit(&mut f);
            let mut ipp = Ipv4Packet::new_unchecked(f.payload_mut());
            ipr.emit(&mut ipp);
            ipp.payload_mut().copy_from_slice(&icmp);
        }
        let out = h.on_frame(&frame);
        assert_eq!(out.tx.len(), 1);
        let p = ParsedPacket::parse(&out.tx[0]).unwrap();
        assert_eq!(p.ipv4_dst(), Some("10.0.0.1".parse().unwrap()));
        match p.l4 {
            Some(L4Info::Icmp { icmp_type, .. }) => assert_eq!(icmp_type, 0),
            other => panic!("expected ICMP, got {other:?}"),
        }
    }

    #[test]
    fn frames_for_other_macs_ignored() {
        let mut h = host("10.0.0.5", 5, HostApp::Sink);
        let mut other = host("10.0.0.1", 1, HostApp::Sink);
        other.learn_arp("10.0.0.5".parse().unwrap(), MacAddr::from_index(77)); // wrong MAC
        let out = other.send_udp("10.0.0.5".parse().unwrap(), 1, 2, b"x", SpoofMode::None);
        let ho = h.on_frame(&out.tx[0]);
        assert!(ho.delivered.is_empty());
    }

    #[test]
    fn arp_request_for_other_ip_not_answered_but_learned() {
        let mut h = host("10.0.0.5", 5, HostApp::Sink);
        let req = ArpRepr::request(
            MacAddr::from_index(1),
            "10.0.0.1".parse().unwrap(),
            "10.0.0.9".parse().unwrap(),
        );
        let out = h.on_frame(&build_arp(&req));
        assert!(out.tx.is_empty());
        // But the sender was learned: a later send needs no ARP.
        let o = h.send_udp("10.0.0.1".parse().unwrap(), 1, 2, b"x", SpoofMode::None);
        let p = ParsedPacket::parse(&o.tx[0]).unwrap();
        assert!(p.arp.is_none(), "no ARP needed after opportunistic learn");
    }

    #[test]
    fn dhcp_dora_assigns_address() {
        let mut h = host("0.0.0.0", 3, HostApp::Sink);
        let out = h.dhcp_discover(0x1234);
        assert_eq!(out.tx.len(), 1);
        let p = ParsedPacket::parse(&out.tx[0]).unwrap();
        assert!(p.is_dhcp());
        assert_eq!(p.ipv4_src(), Some(Ipv4Addr::UNSPECIFIED));

        // Server offers 10.0.1.50.
        let mut offer = DhcpRepr::client(DhcpMessageType::Discover, 0x1234, h.mac);
        offer.message_type = DhcpMessageType::Offer;
        offer.your_ip = "10.0.1.50".parse().unwrap();
        offer.server_id = Some("10.0.1.1".parse().unwrap());
        let offer_frame = server_dhcp_frame(&offer, h.mac);
        let out = h.on_frame(&offer_frame);
        assert_eq!(out.tx.len(), 1, "REQUEST follows OFFER");
        assert_eq!(h.dhcp, DhcpState::Requesting(0x1234));

        // Server acks.
        let mut ack = offer.clone();
        ack.message_type = DhcpMessageType::Ack;
        let ack_frame = server_dhcp_frame(&ack, h.mac);
        h.on_frame(&ack_frame);
        assert_eq!(h.dhcp, DhcpState::Bound);
        assert_eq!(h.ip, "10.0.1.50".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn dhcp_wrong_xid_ignored() {
        let mut h = host("0.0.0.0", 3, HostApp::Sink);
        h.dhcp_discover(1);
        let mut offer = DhcpRepr::client(DhcpMessageType::Discover, 999, h.mac);
        offer.message_type = DhcpMessageType::Offer;
        offer.your_ip = "10.0.1.50".parse().unwrap();
        let out = h.on_frame(&server_dhcp_frame(&offer, h.mac));
        assert!(out.tx.is_empty());
        assert_eq!(h.dhcp, DhcpState::Discovering(1));
    }

    #[test]
    fn full_dora_against_server_host() {
        let pool: sav_net::addr::Ipv4Cidr = "10.0.1.0/24".parse().unwrap();
        let mut server = host(
            "10.0.1.1",
            0xd5,
            HostApp::DhcpServer(DhcpServerState::new(pool, 10, 3600)),
        );
        let mut client = host("0.0.0.0", 3, HostApp::Sink);

        // DISCOVER → server
        let out = client.dhcp_discover(0xaa);
        let so = server.on_frame(&out.tx[0]);
        assert_eq!(so.tx.len(), 1, "OFFER");
        // OFFER → client emits REQUEST
        let co = client.on_frame(&so.tx[0]);
        assert_eq!(co.tx.len(), 1, "REQUEST");
        // REQUEST → server ACKs
        let so = server.on_frame(&co.tx[0]);
        assert_eq!(so.tx.len(), 1, "ACK");
        // ACK → client binds and announces via gratuitous ARP.
        let co = client.on_frame(&so.tx[0]);
        assert_eq!(client.dhcp, DhcpState::Bound);
        assert_eq!(client.ip, pool.nth(10).unwrap());
        assert_eq!(co.tx.len(), 1, "gratuitous ARP");
        let garp = ParsedPacket::parse(&co.tx[0]).unwrap().arp.unwrap();
        assert_eq!(garp.sender_ip, client.ip);
        assert_eq!(garp.target_ip, client.ip);

        // Same client re-discovering gets the same address.
        let out = client.dhcp_discover(0xbb);
        let so = server.on_frame(&out.tx[0]);
        let p = ParsedPacket::parse(&so.tx[0]).unwrap();
        let offer = DhcpRepr::parse(p.l4_payload(&so.tx[0]).unwrap()).unwrap();
        assert_eq!(offer.your_ip, pool.nth(10).unwrap());

        // A second client gets the next address.
        let mut c2 = host("0.0.0.0", 4, HostApp::Sink);
        let out = c2.dhcp_discover(0xcc);
        let so = server.on_frame(&out.tx[0]);
        let p = ParsedPacket::parse(&so.tx[0]).unwrap();
        let offer = DhcpRepr::parse(p.l4_payload(&so.tx[0]).unwrap()).unwrap();
        assert_eq!(offer.your_ip, pool.nth(11).unwrap());

        // Release frees the first address for reuse.
        let rel = client.dhcp_release(0xdd);
        server.on_frame(&rel.tx[0]);
        if let HostApp::DhcpServer(s) = &server.app {
            assert!(!s.leases().contains_key(&client.mac));
        } else {
            unreachable!();
        }
    }

    #[test]
    fn request_for_wrong_ip_gets_nak() {
        let pool: sav_net::addr::Ipv4Cidr = "10.0.1.0/24".parse().unwrap();
        let mut server = host(
            "10.0.1.1",
            0xd5,
            HostApp::DhcpServer(DhcpServerState::new(pool, 10, 3600)),
        );
        let mut req = DhcpRepr::client(DhcpMessageType::Request, 5, MacAddr::from_index(9));
        req.requested_ip = Some("10.0.1.250".parse().unwrap()); // not what we'd allocate
        let mut fake_client = host("0.0.0.0", 9, HostApp::Sink);
        fake_client.dhcp = DhcpState::Requesting(5);
        let frame = {
            let payload = req.to_bytes();
            let udp = UdpRepr {
                src_port: sav_net::dhcpv4::DHCP_CLIENT_PORT,
                dst_port: sav_net::dhcpv4::DHCP_SERVER_PORT,
                payload_len: payload.len(),
            };
            let ip = Ipv4Repr::udp(Ipv4Addr::UNSPECIFIED, Ipv4Addr::BROADCAST, udp.buffer_len());
            let eth = EthernetRepr {
                src: fake_client.mac,
                dst: MacAddr::BROADCAST,
                ethertype: EtherType::Ipv4,
            };
            build_ipv4_udp(&eth, &ip, &udp, &payload)
        };
        let so = server.on_frame(&frame);
        assert_eq!(so.tx.len(), 1);
        let p = ParsedPacket::parse(&so.tx[0]).unwrap();
        let msg = DhcpRepr::parse(p.l4_payload(&so.tx[0]).unwrap()).unwrap();
        assert_eq!(msg.message_type, DhcpMessageType::Nak);
        // Client returns to Idle on NAK.
        fake_client.on_frame(&so.tx[0]);
        assert_eq!(fake_client.dhcp, DhcpState::Idle);
    }

    fn server_dhcp_frame(msg: &DhcpRepr, client_mac: MacAddr) -> Vec<u8> {
        let payload = msg.to_bytes();
        let udp = UdpRepr {
            src_port: sav_net::dhcpv4::DHCP_SERVER_PORT,
            dst_port: sav_net::dhcpv4::DHCP_CLIENT_PORT,
            payload_len: payload.len(),
        };
        let ip = Ipv4Repr::udp(
            "10.0.1.1".parse().unwrap(),
            Ipv4Addr::BROADCAST,
            udp.buffer_len(),
        );
        let eth = EthernetRepr {
            src: MacAddr::from_index(0xd4c9),
            dst: client_mac,
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, &payload)
    }
}
