//! Priority-ordered flow tables with OpenFlow add/modify/delete semantics,
//! idle/hard timeouts and per-entry counters.

use crate::matcher::{matches, MatchContext};
use sav_openflow::messages::{FlowMod, FlowRemovedReason};
use sav_openflow::oxm::OxmMatch;
use sav_openflow::prelude::Instruction;
use sav_sim::{SimDuration, SimTime};

/// One installed flow.
#[derive(Debug, Clone)]
pub struct FlowEntry {
    /// Match priority (higher wins).
    pub priority: u16,
    /// The match.
    pub match_: OxmMatch,
    /// Instructions executed on match.
    pub instructions: Vec<Instruction>,
    /// Controller cookie.
    pub cookie: u64,
    /// Idle timeout (0 = none).
    pub idle_timeout: u16,
    /// Hard timeout (0 = none).
    pub hard_timeout: u16,
    /// Flow-mod flags (`SEND_FLOW_REM` etc.).
    pub flags: u16,
    /// When the flow was installed.
    pub installed_at: SimTime,
    /// Last time a packet matched (= `installed_at` until first hit).
    pub last_hit: SimTime,
    /// Packets matched.
    pub packet_count: u64,
    /// Bytes matched.
    pub byte_count: u64,
}

impl FlowEntry {
    fn from_flow_mod(fm: &FlowMod, now: SimTime) -> FlowEntry {
        FlowEntry {
            priority: fm.priority,
            match_: fm.match_.clone(),
            instructions: fm.instructions.clone(),
            cookie: fm.cookie,
            idle_timeout: fm.idle_timeout,
            hard_timeout: fm.hard_timeout,
            flags: fm.flags,
            installed_at: now,
            last_hit: now,
            packet_count: 0,
            byte_count: 0,
        }
    }

    /// Is this entry expired at `now`? Returns the reason if so.
    pub fn expired(&self, now: SimTime) -> Option<FlowRemovedReason> {
        if self.hard_timeout > 0 {
            let deadline = self.installed_at + SimDuration::from_secs(u64::from(self.hard_timeout));
            if now >= deadline {
                return Some(FlowRemovedReason::HardTimeout);
            }
        }
        if self.idle_timeout > 0 {
            let deadline = self.last_hit + SimDuration::from_secs(u64::from(self.idle_timeout));
            if now >= deadline {
                return Some(FlowRemovedReason::IdleTimeout);
            }
        }
        None
    }

    /// Seconds (whole + nanos) this entry has been installed, for stats.
    pub fn duration(&self, now: SimTime) -> (u32, u32) {
        let d = now.saturating_since(self.installed_at);
        let ns = d.as_nanos();
        ((ns / 1_000_000_000) as u32, (ns % 1_000_000_000) as u32)
    }
}

/// Would two matches overlap: could a single packet match both? Conservative
/// per-field comparison — fields present in both must be compatible; a field
/// present in only one never prevents overlap.
fn overlaps(a: &OxmMatch, b: &OxmMatch) -> bool {
    use sav_openflow::oxm::OxmField;
    fn field_key(f: &OxmField) -> u8 {
        f.field_num()
    }
    for fa in a.fields() {
        for fb in b.fields() {
            if field_key(fa) != field_key(fb) {
                continue;
            }
            let compatible = match (fa, fb) {
                (OxmField::InPort(x), OxmField::InPort(y)) => x == y,
                (OxmField::EthType(x), OxmField::EthType(y)) => x == y,
                (OxmField::IpProto(x), OxmField::IpProto(y)) => x == y,
                (OxmField::TcpSrc(x), OxmField::TcpSrc(y)) => x == y,
                (OxmField::TcpDst(x), OxmField::TcpDst(y)) => x == y,
                (OxmField::UdpSrc(x), OxmField::UdpSrc(y)) => x == y,
                (OxmField::UdpDst(x), OxmField::UdpDst(y)) => x == y,
                (OxmField::ArpOp(x), OxmField::ArpOp(y)) => x == y,
                (OxmField::EthSrc(x, mx), OxmField::EthSrc(y, my))
                | (OxmField::EthDst(x, mx), OxmField::EthDst(y, my))
                    if mx_none(mx, my) =>
                {
                    x == y
                }
                (OxmField::ArpSha(x), OxmField::ArpSha(y)) => x == y,
                (OxmField::Ipv4Src(x, mx), OxmField::Ipv4Src(y, my))
                | (OxmField::Ipv4Dst(x, mx), OxmField::Ipv4Dst(y, my)) => {
                    let mask = u32::from(mx.unwrap_or(std::net::Ipv4Addr::BROADCAST))
                        & u32::from(my.unwrap_or(std::net::Ipv4Addr::BROADCAST));
                    u32::from(*x) & mask == u32::from(*y) & mask
                }
                // Other combinations: assume they can overlap.
                _ => true,
            };
            if !compatible {
                return false;
            }
        }
    }
    true
}

// Helper for the match-arm guard above: only treat exact (unmasked) MAC
// comparisons as decisive.
fn mx_none<T>(a: &Option<T>, b: &Option<T>) -> bool {
    a.is_none() && b.is_none()
}

/// Outcome of applying a flow-mod to a table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowModOutcome {
    /// Applied cleanly.
    Ok,
    /// Add rejected: `CHECK_OVERLAP` set and an overlapping entry exists.
    Overlap,
    /// Add rejected: the table is full.
    TableFull,
}

/// One flow table: entries kept sorted by descending priority; among equal
/// priorities, insertion order (OpenFlow leaves this unspecified; stable
/// order keeps the simulator deterministic).
pub struct FlowTable {
    entries: Vec<FlowEntry>,
    max_entries: usize,
    /// Packets looked up in this table.
    pub lookup_count: u64,
    /// Packets that matched some entry.
    pub matched_count: u64,
}

impl FlowTable {
    /// An empty table capped at `max_entries` flows.
    pub fn new(max_entries: usize) -> FlowTable {
        FlowTable {
            entries: Vec::new(),
            max_entries,
            lookup_count: 0,
            matched_count: 0,
        }
    }

    /// Number of installed flows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no flows are installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in match order (priority descending).
    pub fn entries(&self) -> impl Iterator<Item = &FlowEntry> {
        self.entries.iter()
    }

    /// Find the highest-priority entry matching `ctx` and update its
    /// counters. Returns a clone of the matched entry's instructions and
    /// cookie (cheap: instruction lists are tiny).
    pub fn lookup(
        &mut self,
        ctx: &MatchContext<'_>,
        now: SimTime,
        frame_len: usize,
    ) -> Option<(Vec<Instruction>, u64)> {
        self.lookup_count += 1;
        for e in &mut self.entries {
            if matches(&e.match_, ctx) {
                e.packet_count += 1;
                e.byte_count += frame_len as u64;
                e.last_hit = now;
                self.matched_count += 1;
                return Some((e.instructions.clone(), e.cookie));
            }
        }
        None
    }

    /// Apply an ADD. Identical `(priority, match)` replaces the existing
    /// entry (counters reset unless the spec's no-reset behaviour is wanted;
    /// this switch resets, as Open vSwitch does without `RESET_COUNTS`... the
    /// flag is accepted but replacement always starts fresh).
    pub fn add(&mut self, fm: &FlowMod, now: SimTime) -> FlowModOutcome {
        use sav_openflow::consts::flow_mod_flags::CHECK_OVERLAP;
        if fm.flags & CHECK_OVERLAP != 0 {
            let clash = self.entries.iter().any(|e| {
                e.priority == fm.priority
                    && e.match_ != fm.match_
                    && overlaps(&e.match_, &fm.match_)
            });
            if clash {
                return FlowModOutcome::Overlap;
            }
        }
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|e| e.priority == fm.priority && e.match_ == fm.match_)
        {
            *existing = FlowEntry::from_flow_mod(fm, now);
            return FlowModOutcome::Ok;
        }
        if self.entries.len() >= self.max_entries {
            return FlowModOutcome::TableFull;
        }
        let entry = FlowEntry::from_flow_mod(fm, now);
        // Insert after the last entry with priority >= new priority.
        let pos = self
            .entries
            .iter()
            .position(|e| e.priority < entry.priority)
            .unwrap_or(self.entries.len());
        self.entries.insert(pos, entry);
        FlowModOutcome::Ok
    }

    /// Loose subset test: does `sup` match at least every packet `sub`'s
    /// fields say it matches? Used for loose modify/delete: an entry is
    /// selected if its match is *more specific or equal* to the request.
    fn is_loose_superset(request: &OxmMatch, entry: &OxmMatch) -> bool {
        use sav_openflow::oxm::OxmField;
        // Every field in the request must be implied by the entry's fields.
        'outer: for rf in request.fields() {
            for ef in entry.fields() {
                if ef.field_num() != rf.field_num() {
                    continue;
                }
                let implied = match (rf, ef) {
                    (OxmField::Ipv4Src(rv, rm), OxmField::Ipv4Src(ev, em))
                    | (OxmField::Ipv4Dst(rv, rm), OxmField::Ipv4Dst(ev, em)) => {
                        let rmask = rm.map(u32::from).unwrap_or(u32::MAX);
                        let emask = em.map(u32::from).unwrap_or(u32::MAX);
                        // Entry must be at least as specific and agree on bits.
                        (emask & rmask) == rmask
                            && (u32::from(*ev) & rmask) == (u32::from(*rv) & rmask)
                    }
                    _ => rf == ef,
                };
                if implied {
                    continue 'outer;
                } else {
                    return false;
                }
            }
            // Request constrains a field the entry leaves wild: not a subset.
            return false;
        }
        true
    }

    /// Loose MODIFY: update instructions of all entries whose match is a
    /// subset of the request match (and cookie-filter compatible). Returns
    /// how many entries changed.
    pub fn modify(&mut self, fm: &FlowMod) -> usize {
        let mut n = 0;
        for e in &mut self.entries {
            if fm.cookie_mask != 0 && (e.cookie & fm.cookie_mask) != (fm.cookie & fm.cookie_mask) {
                continue;
            }
            let selected = match fm.command {
                sav_openflow::messages::FlowModCommand::ModifyStrict => {
                    e.priority == fm.priority && e.match_ == fm.match_
                }
                _ => Self::is_loose_superset(&fm.match_, &e.match_),
            };
            if selected {
                e.instructions = fm.instructions.clone();
                n += 1;
            }
        }
        n
    }

    /// DELETE (loose or strict). Returns the removed entries so the switch
    /// can emit FLOW_REMOVED for those with `SEND_FLOW_REM`.
    pub fn delete(&mut self, fm: &FlowMod) -> Vec<FlowEntry> {
        let strict = fm.command == sav_openflow::messages::FlowModCommand::DeleteStrict;
        let mut removed = Vec::new();
        self.entries.retain(|e| {
            if fm.cookie_mask != 0 && (e.cookie & fm.cookie_mask) != (fm.cookie & fm.cookie_mask) {
                return true;
            }
            let selected = if strict {
                e.priority == fm.priority && e.match_ == fm.match_
            } else {
                Self::is_loose_superset(&fm.match_, &e.match_)
            };
            if selected {
                removed.push(e.clone());
                false
            } else {
                true
            }
        });
        removed
    }

    /// Remove all expired entries at `now`, returning them with reasons.
    pub fn expire(&mut self, now: SimTime) -> Vec<(FlowEntry, FlowRemovedReason)> {
        let mut out = Vec::new();
        self.entries.retain(|e| match e.expired(now) {
            Some(reason) => {
                out.push((e.clone(), reason));
                false
            }
            None => true,
        });
        out
    }

    /// The soonest instant at which some entry could expire (for scheduling
    /// the next expiry sweep), or `None` if no entry carries a timeout.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.entries
            .iter()
            .flat_map(|e| {
                let hard = (e.hard_timeout > 0)
                    .then(|| e.installed_at + SimDuration::from_secs(u64::from(e.hard_timeout)));
                let idle = (e.idle_timeout > 0)
                    .then(|| e.last_hit + SimDuration::from_secs(u64::from(e.idle_timeout)));
                [hard, idle].into_iter().flatten()
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_net::builder::build_ipv4_udp;
    use sav_net::packet::ParsedPacket;
    use sav_net::prelude::*;
    use sav_openflow::consts::flow_mod_flags;
    use sav_openflow::oxm::OxmField;

    fn frame(src: &str) -> Vec<u8> {
        let udp = UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        };
        let ip = Ipv4Repr::udp(
            src.parse().unwrap(),
            "1.1.1.1".parse().unwrap(),
            udp.buffer_len(),
        );
        let eth = EthernetRepr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, b"")
    }

    fn fm_add(priority: u16, m: OxmMatch) -> FlowMod {
        FlowMod {
            priority,
            ..FlowMod::add(m)
        }
    }

    fn src_match(cidr: &str, len: u8) -> OxmMatch {
        OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::Ipv4Src(
                cidr.parse().unwrap(),
                Some(sav_net::addr::Ipv4Cidr::new(cidr.parse().unwrap(), len).netmask()),
            ))
    }

    #[test]
    fn priority_order_wins() {
        let mut t = FlowTable::new(100);
        let m_any = OxmMatch::new();
        let m_specific = OxmMatch::new()
            .with(OxmField::EthType(0x0800))
            .with(OxmField::Ipv4Src("10.0.0.5".parse().unwrap(), None));
        assert_eq!(
            t.add(
                &FlowMod {
                    cookie: 1,
                    ..fm_add(0, m_any)
                },
                SimTime::ZERO
            ),
            FlowModOutcome::Ok
        );
        assert_eq!(
            t.add(
                &FlowMod {
                    cookie: 2,
                    ..fm_add(100, m_specific)
                },
                SimTime::ZERO
            ),
            FlowModOutcome::Ok
        );
        let f = frame("10.0.0.5");
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext {
            in_port: 1,
            packet: &p,
        };
        let (_, cookie) = t.lookup(&ctx, SimTime::ZERO, f.len()).unwrap();
        assert_eq!(cookie, 2, "specific high-priority entry must win");
        let f = frame("10.0.0.6");
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext {
            in_port: 1,
            packet: &p,
        };
        let (_, cookie) = t.lookup(&ctx, SimTime::ZERO, f.len()).unwrap();
        assert_eq!(cookie, 1, "fallthrough to the miss entry");
        assert_eq!(t.lookup_count, 2);
        assert_eq!(t.matched_count, 2);
    }

    #[test]
    fn identical_add_replaces() {
        let mut t = FlowTable::new(10);
        let m = OxmMatch::new().with(OxmField::InPort(1));
        t.add(
            &FlowMod {
                cookie: 1,
                ..fm_add(5, m.clone())
            },
            SimTime::ZERO,
        );
        t.add(
            &FlowMod {
                cookie: 2,
                ..fm_add(5, m)
            },
            SimTime::ZERO,
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries().next().unwrap().cookie, 2);
    }

    #[test]
    fn table_full() {
        let mut t = FlowTable::new(2);
        t.add(
            &fm_add(1, OxmMatch::new().with(OxmField::InPort(1))),
            SimTime::ZERO,
        );
        t.add(
            &fm_add(1, OxmMatch::new().with(OxmField::InPort(2))),
            SimTime::ZERO,
        );
        assert_eq!(
            t.add(
                &fm_add(1, OxmMatch::new().with(OxmField::InPort(3))),
                SimTime::ZERO
            ),
            FlowModOutcome::TableFull
        );
        // Replacement still allowed at capacity.
        assert_eq!(
            t.add(
                &fm_add(1, OxmMatch::new().with(OxmField::InPort(2))),
                SimTime::ZERO
            ),
            FlowModOutcome::Ok
        );
    }

    #[test]
    fn check_overlap() {
        let mut t = FlowTable::new(10);
        t.add(&fm_add(7, src_match("10.0.0.0", 8)), SimTime::ZERO);
        // Overlapping prefix at same priority with CHECK_OVERLAP: rejected.
        let fm = FlowMod {
            flags: flow_mod_flags::CHECK_OVERLAP,
            ..fm_add(7, src_match("10.0.1.0", 24))
        };
        assert_eq!(t.add(&fm, SimTime::ZERO), FlowModOutcome::Overlap);
        // Different priority: fine.
        let fm = FlowMod {
            flags: flow_mod_flags::CHECK_OVERLAP,
            ..fm_add(8, src_match("10.0.1.0", 24))
        };
        assert_eq!(t.add(&fm, SimTime::ZERO), FlowModOutcome::Ok);
        // Disjoint prefixes at same priority: fine.
        let fm = FlowMod {
            flags: flow_mod_flags::CHECK_OVERLAP,
            ..fm_add(7, src_match("192.168.0.0", 16))
        };
        assert_eq!(t.add(&fm, SimTime::ZERO), FlowModOutcome::Ok);
    }

    #[test]
    fn loose_delete_selects_subsets() {
        let mut t = FlowTable::new(100);
        // Per-host rules under 10.0.1.0/24 plus one unrelated.
        for i in 1..=3 {
            let m = OxmMatch::new()
                .with(OxmField::EthType(0x0800))
                .with(OxmField::Ipv4Src(
                    format!("10.0.1.{i}").parse().unwrap(),
                    None,
                ));
            t.add(&fm_add(10, m), SimTime::ZERO);
        }
        t.add(
            &fm_add(
                10,
                OxmMatch::new()
                    .with(OxmField::EthType(0x0800))
                    .with(OxmField::Ipv4Src("192.168.0.1".parse().unwrap(), None)),
            ),
            SimTime::ZERO,
        );
        let del = FlowMod::delete(0, src_match("10.0.1.0", 24));
        let removed = t.delete(&del);
        assert_eq!(removed.len(), 3);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn strict_delete_needs_exact_priority_and_match() {
        let mut t = FlowTable::new(10);
        let m = OxmMatch::new().with(OxmField::InPort(1));
        t.add(&fm_add(5, m.clone()), SimTime::ZERO);
        let mut del = FlowMod::delete(0, m.clone());
        del.command = sav_openflow::messages::FlowModCommand::DeleteStrict;
        del.priority = 6;
        assert_eq!(t.delete(&del).len(), 0);
        del.priority = 5;
        assert_eq!(t.delete(&del).len(), 1);
        assert!(t.is_empty());
    }

    #[test]
    fn delete_all_with_empty_match() {
        let mut t = FlowTable::new(10);
        t.add(
            &fm_add(1, OxmMatch::new().with(OxmField::InPort(1))),
            SimTime::ZERO,
        );
        t.add(
            &fm_add(2, OxmMatch::new().with(OxmField::InPort(2))),
            SimTime::ZERO,
        );
        let removed = t.delete(&FlowMod::delete(0, OxmMatch::new()));
        assert_eq!(removed.len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn cookie_filtered_delete() {
        let mut t = FlowTable::new(10);
        t.add(
            &FlowMod {
                cookie: 0xA0,
                ..fm_add(1, OxmMatch::new().with(OxmField::InPort(1)))
            },
            SimTime::ZERO,
        );
        t.add(
            &FlowMod {
                cookie: 0xB0,
                ..fm_add(1, OxmMatch::new().with(OxmField::InPort(2)))
            },
            SimTime::ZERO,
        );
        let mut del = FlowMod::delete(0, OxmMatch::new());
        del.cookie = 0xA0;
        del.cookie_mask = 0xF0;
        let removed = t.delete(&del);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].cookie, 0xA0);
    }

    #[test]
    fn modify_updates_instructions() {
        let mut t = FlowTable::new(10);
        let m = OxmMatch::new().with(OxmField::InPort(1));
        t.add(&fm_add(5, m.clone()), SimTime::ZERO);
        let mut fm = fm_add(5, m);
        fm.command = sav_openflow::messages::FlowModCommand::Modify;
        fm.instructions = vec![Instruction::GotoTable(1)];
        assert_eq!(t.modify(&fm), 1);
        assert_eq!(
            t.entries().next().unwrap().instructions,
            vec![Instruction::GotoTable(1)]
        );
    }

    #[test]
    fn hard_timeout_expires() {
        let mut t = FlowTable::new(10);
        let mut fm = fm_add(1, OxmMatch::new());
        fm.hard_timeout = 10;
        t.add(&fm, SimTime::ZERO);
        assert!(t.expire(SimTime::from_secs(9)).is_empty());
        assert_eq!(t.next_expiry(), Some(SimTime::from_secs(10)));
        let gone = t.expire(SimTime::from_secs(10));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::HardTimeout);
        assert!(t.is_empty());
    }

    #[test]
    fn idle_timeout_refreshed_by_traffic() {
        let mut t = FlowTable::new(10);
        let mut fm = fm_add(1, OxmMatch::new());
        fm.idle_timeout = 10;
        t.add(&fm, SimTime::ZERO);
        // Traffic at t=8 pushes expiry to t=18.
        let f = frame("10.0.0.1");
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext {
            in_port: 1,
            packet: &p,
        };
        t.lookup(&ctx, SimTime::from_secs(8), f.len());
        assert!(t.expire(SimTime::from_secs(12)).is_empty());
        let gone = t.expire(SimTime::from_secs(18));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].1, FlowRemovedReason::IdleTimeout);
    }

    #[test]
    fn counters_accumulate() {
        let mut t = FlowTable::new(10);
        t.add(&fm_add(1, OxmMatch::new()), SimTime::ZERO);
        let f = frame("10.0.0.1");
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext {
            in_port: 1,
            packet: &p,
        };
        for _ in 0..5 {
            t.lookup(&ctx, SimTime::ZERO, f.len());
        }
        let e = t.entries().next().unwrap();
        assert_eq!(e.packet_count, 5);
        assert_eq!(e.byte_count, 5 * f.len() as u64);
    }

    #[test]
    fn miss_counts_lookups() {
        let mut t = FlowTable::new(10);
        t.add(
            &fm_add(1, OxmMatch::new().with(OxmField::InPort(9))),
            SimTime::ZERO,
        );
        let f = frame("10.0.0.1");
        let p = ParsedPacket::parse(&f).unwrap();
        let ctx = MatchContext {
            in_port: 1,
            packet: &p,
        };
        assert!(t.lookup(&ctx, SimTime::ZERO, f.len()).is_none());
        assert_eq!(t.lookup_count, 1);
        assert_eq!(t.matched_count, 0);
    }

    #[test]
    fn duration_reporting() {
        let mut t = FlowTable::new(10);
        t.add(&fm_add(1, OxmMatch::new()), SimTime::from_millis(500));
        let e = t.entries().next().unwrap();
        let (s, ns) = e.duration(SimTime::from_millis(2750));
        assert_eq!(s, 2);
        assert_eq!(ns, 250_000_000);
    }
}
