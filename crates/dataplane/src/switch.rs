//! [`OpenFlowSwitch`] — a sans-IO OpenFlow 1.3 switch.
//!
//! The switch has two inputs and two outputs, all plain data:
//!
//! * control channel in: raw bytes from the controller
//!   ([`OpenFlowSwitch::handle_controller_bytes`]) — parsed with the real
//!   `sav-openflow` deframer/codec;
//! * data plane in: Ethernet frames arriving on ports
//!   ([`OpenFlowSwitch::receive_frame`]);
//! * control channel out / data plane out: collected in [`SwitchOutput`].
//!
//! The pipeline follows OpenFlow 1.3 semantics: packets enter table 0,
//! `Goto-Table` moves them forward, `Apply-Actions` executes immediately,
//! `Write-Actions`/`Clear-Actions` maintain the action set, and the action
//! set executes when the pipeline stops. A packet that misses in a table is
//! dropped (the controller installs explicit table-miss entries to punt).

use crate::flow_table::{FlowModOutcome, FlowTable};
use crate::matcher::MatchContext;
use sav_net::packet::ParsedPacket;
use sav_openflow::consts::{
    error_type, flow_mod_failed, flow_mod_flags, port, role_request_failed, table, NO_BUFFER,
};
use sav_openflow::error::CodecError;
use sav_openflow::framing::Deframer;
use sav_openflow::messages::{
    generation_is_stale, ControllerRole, ErrorMsg, FeaturesReply, FlowMod, FlowRemoved,
    FlowRemovedReason, FlowStatsEntry, Message, MultipartReplyBody, MultipartRequestBody, PacketIn,
    PacketInReason, PortStats, PortStatus, PortStatusReason, RoleMsg,
    SwitchConfig as WireSwitchConfig, TableStats,
};
use sav_openflow::oxm::{OxmField, OxmMatch};
use sav_openflow::ports::{PortDesc, PortState};
use sav_openflow::prelude::{Action, Instruction};
use sav_sim::SimTime;
use std::collections::{BTreeMap, HashMap};

/// Static switch parameters.
#[derive(Debug, Clone, Copy)]
pub struct SwitchConfig {
    /// Datapath id reported in FEATURES_REPLY.
    pub datapath_id: u64,
    /// Number of flow tables.
    pub n_tables: u8,
    /// Per-table flow capacity (models TCAM size).
    pub max_entries_per_table: usize,
    /// PACKET_IN buffer slots.
    pub n_buffers: u32,
}

impl SwitchConfig {
    /// Defaults modelled on a small hardware switch: 4 tables, 8k flows
    /// per table, 256 buffers.
    pub fn new(datapath_id: u64) -> SwitchConfig {
        SwitchConfig {
            datapath_id,
            n_tables: 4,
            max_entries_per_table: 8192,
            n_buffers: 256,
        }
    }
}

/// Per-port traffic counters (the subset reported in port stats).
#[derive(Debug, Clone, Copy, Default)]
pub struct PortCounters {
    /// Packets received.
    pub rx_packets: u64,
    /// Packets transmitted.
    pub tx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Bytes transmitted.
    pub tx_bytes: u64,
    /// Received packets dropped by the pipeline.
    pub rx_dropped: u64,
    /// Transmissions suppressed (port down / missing).
    pub tx_dropped: u64,
}

/// What a switch wants the outside world to do after an input.
#[derive(Debug, Default)]
pub struct SwitchOutput {
    /// Encoded OpenFlow messages for the controller, in order.
    pub to_controller: Vec<Vec<u8>>,
    /// Frames to transmit: `(egress port, frame bytes)`.
    pub tx: Vec<(u32, Vec<u8>)>,
}

impl SwitchOutput {
    fn merge(&mut self, other: SwitchOutput) {
        self.to_controller.extend(other.to_controller);
        self.tx.extend(other.tx);
    }
}

/// A software OpenFlow 1.3 switch.
pub struct OpenFlowSwitch {
    config: SwitchConfig,
    miss_send_len: u16,
    tables: Vec<FlowTable>,
    ports: BTreeMap<u32, PortDesc>,
    counters: BTreeMap<u32, PortCounters>,
    port_up_since: BTreeMap<u32, SimTime>,
    buffers: HashMap<u32, (u32, Vec<u8>)>, // buffer_id -> (in_port, frame)
    next_buffer_id: u32,
    deframer: Deframer,
    next_xid: u32,
    /// Role of the current control connection (OF1.3 §6.3.6). Resets to
    /// EQUAL on reconnect — a new connection must re-assert mastership.
    role: ControllerRole,
    /// Highest master-election generation ever accepted. Survives
    /// reconnects so a resurrected stale master cannot fence itself back
    /// in with an old generation_id.
    master_generation: Option<u64>,
    /// Frames dropped because they failed to parse at all.
    pub malformed_rx: u64,
}

impl OpenFlowSwitch {
    /// Create a switch with the given ports (all initially up).
    pub fn new(config: SwitchConfig, ports: Vec<PortDesc>) -> OpenFlowSwitch {
        let tables = (0..config.n_tables)
            .map(|_| FlowTable::new(config.max_entries_per_table))
            .collect();
        let counters = ports
            .iter()
            .map(|p| (p.port_no, PortCounters::default()))
            .collect();
        let port_up_since = ports.iter().map(|p| (p.port_no, SimTime::ZERO)).collect();
        OpenFlowSwitch {
            config,
            miss_send_len: 0xffff,
            tables,
            ports: ports.into_iter().map(|p| (p.port_no, p)).collect(),
            counters,
            port_up_since,
            buffers: HashMap::new(),
            next_buffer_id: 1,
            deframer: Deframer::new(),
            next_xid: 0x8000_0000, // switch-initiated xids live in the top half
            role: ControllerRole::Equal,
            master_generation: None,
            malformed_rx: 0,
        }
    }

    /// The datapath id.
    pub fn datapath_id(&self) -> u64 {
        self.config.datapath_id
    }

    /// Port numbers currently configured.
    pub fn port_numbers(&self) -> Vec<u32> {
        self.ports.keys().copied().collect()
    }

    /// Per-port counters.
    pub fn port_counters(&self, port_no: u32) -> Option<&PortCounters> {
        self.counters.get(&port_no)
    }

    /// Flows installed in `table_id`.
    pub fn flow_count(&self, table_id: u8) -> usize {
        self.tables
            .get(usize::from(table_id))
            .map(FlowTable::len)
            .unwrap_or(0)
    }

    /// Total flows across all tables.
    pub fn total_flows(&self) -> usize {
        self.tables.iter().map(FlowTable::len).sum()
    }

    /// Borrow a flow table (e.g. for assertions in tests).
    pub fn table(&self, table_id: u8) -> Option<&FlowTable> {
        self.tables.get(usize::from(table_id))
    }

    fn fresh_xid(&mut self) -> u32 {
        self.next_xid = self.next_xid.wrapping_add(1);
        self.next_xid
    }

    /// The greeting the switch sends when its control channel connects.
    pub fn hello(&mut self) -> Vec<u8> {
        let xid = self.fresh_xid();
        Message::Hello.encode(xid)
    }

    /// Feed bytes arriving on the control channel. Codec failures poison the
    /// connection (returned as `Err`); the caller should send
    /// [`OpenFlowSwitch::goodbye`] (if any) and drop the channel.
    pub fn handle_controller_bytes(
        &mut self,
        now: SimTime,
        bytes: &[u8],
    ) -> Result<SwitchOutput, CodecError> {
        self.deframer.push(bytes)?;
        let mut out = SwitchOutput::default();
        while let Some((msg, xid)) = self.deframer.next_message()? {
            out.merge(self.handle_message(now, msg, xid));
        }
        Ok(out)
    }

    /// The farewell to write before closing a poisoned control channel.
    ///
    /// A peer speaking another OpenFlow version gets a HELLO_FAILED /
    /// INCOMPATIBLE error, per OF1.3 §6.3.1; other codec failures get
    /// BAD_REQUEST. Garbage that never framed a message gets nothing.
    pub fn goodbye(&mut self, err: CodecError) -> Option<Vec<u8>> {
        let (err_type, code) = match err {
            CodecError::BadVersion(_) => (error_type::HELLO_FAILED, 0), // OFPHFC_INCOMPATIBLE
            CodecError::BufferOverflow | CodecError::BadLength => return None,
            _ => (error_type::BAD_REQUEST, 1), // OFPBRC_BAD_TYPE
        };
        let xid = self.fresh_xid();
        Some(
            Message::Error(ErrorMsg {
                err_type,
                code,
                data: vec![],
            })
            .encode(xid),
        )
    }

    /// The control channel reconnected: discard the old connection's stream
    /// state (including any poison) and greet the controller again. Flow
    /// tables are kept — the controller re-syncs them after the handshake.
    /// The connection's role resets to EQUAL, but the highest accepted
    /// `master_generation` persists: whoever reconnects must prove
    /// mastership with a generation at least as new.
    pub fn on_control_reconnect(&mut self) -> Vec<u8> {
        self.deframer = Deframer::new();
        self.role = ControllerRole::Equal;
        self.hello()
    }

    /// Role of the current control connection.
    pub fn role(&self) -> ControllerRole {
        self.role
    }

    /// Highest master-election generation accepted so far.
    pub fn master_generation(&self) -> Option<u64> {
        self.master_generation
    }

    /// Process one decoded controller message.
    pub fn handle_message(&mut self, now: SimTime, msg: Message, xid: u32) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        match msg {
            Message::Hello => {}
            Message::EchoRequest(d) => {
                out.to_controller.push(Message::EchoReply(d).encode(xid));
            }
            Message::EchoReply(_) | Message::Error(_) => {}
            Message::FeaturesRequest => {
                let reply = FeaturesReply {
                    datapath_id: self.config.datapath_id,
                    n_buffers: self.config.n_buffers,
                    n_tables: self.config.n_tables,
                    auxiliary_id: 0,
                    capabilities: 0x0000_0047, // FLOW_STATS|TABLE_STATS|PORT_STATS|QUEUE? (0x47 as commonly reported)
                };
                out.to_controller
                    .push(Message::FeaturesReply(reply).encode(xid));
            }
            Message::GetConfigRequest => {
                out.to_controller.push(
                    Message::GetConfigReply(WireSwitchConfig {
                        flags: 0,
                        miss_send_len: self.miss_send_len,
                    })
                    .encode(xid),
                );
            }
            Message::SetConfig(c) => {
                self.miss_send_len = c.miss_send_len;
            }
            Message::RoleRequest(m) => {
                out.merge(self.handle_role_request(m, xid));
            }
            Message::FlowMod(fm) => {
                if let Some(err) = self.fence_non_master(xid) {
                    out.to_controller.push(err);
                    return out;
                }
                out.merge(self.handle_flow_mod(now, fm, xid));
            }
            Message::PacketOut(po) => {
                if let Some(err) = self.fence_non_master(xid) {
                    out.to_controller.push(err);
                    return out;
                }
                let frame = if po.buffer_id != NO_BUFFER {
                    match self.buffers.remove(&po.buffer_id) {
                        Some((_, frame)) => frame,
                        None => {
                            out.to_controller.push(
                                Message::Error(ErrorMsg {
                                    err_type: error_type::BAD_REQUEST,
                                    code: 8, // OFPBRC_BUFFER_UNKNOWN
                                    data: vec![],
                                })
                                .encode(xid),
                            );
                            return out;
                        }
                    }
                } else {
                    po.data
                };
                out.merge(self.execute_actions(now, po.in_port, &po.actions, frame));
            }
            Message::MultipartRequest(body) => {
                out.to_controller
                    .push(self.handle_multipart(now, body, xid));
            }
            Message::BarrierRequest => {
                out.to_controller.push(Message::BarrierReply.encode(xid));
            }
            // Controller-bound messages arriving at a switch are protocol
            // misuse; answer with BAD_REQUEST like a real switch.
            Message::FeaturesReply(_)
            | Message::GetConfigReply(_)
            | Message::PacketIn(_)
            | Message::FlowRemoved(_)
            | Message::PortStatus(_)
            | Message::MultipartReply(_)
            | Message::RoleReply(_)
            | Message::BarrierReply => {
                out.to_controller.push(
                    Message::Error(ErrorMsg {
                        err_type: error_type::BAD_REQUEST,
                        code: 1, // OFPBRC_BAD_TYPE
                        data: vec![],
                    })
                    .encode(xid),
                );
            }
        }
        out
    }

    /// OFPT_ROLE_REQUEST, per OF1.3 §6.3.6. MASTER/SLAVE requests carry a
    /// generation_id; one older than the highest accepted so far is a
    /// fenced-out stale master and gets ROLE_REQUEST_FAILED / STALE.
    /// NOCHANGE queries the current role; EQUAL needs no generation.
    fn handle_role_request(&mut self, m: RoleMsg, xid: u32) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        match m.role {
            ControllerRole::NoChange => {}
            ControllerRole::Equal => self.role = ControllerRole::Equal,
            ControllerRole::Master | ControllerRole::Slave => {
                if let Some(current) = self.master_generation {
                    if generation_is_stale(m.generation_id, current) {
                        out.to_controller.push(
                            Message::Error(ErrorMsg {
                                err_type: error_type::ROLE_REQUEST_FAILED,
                                code: role_request_failed::STALE,
                                data: vec![],
                            })
                            .encode(xid),
                        );
                        return out;
                    }
                }
                self.master_generation = Some(m.generation_id);
                self.role = m.role;
            }
        }
        out.to_controller.push(
            Message::RoleReply(RoleMsg {
                role: self.role,
                generation_id: self.master_generation.unwrap_or(m.generation_id),
            })
            .encode(xid),
        );
        out
    }

    /// The split-brain fence: once any controller has asserted mastership
    /// (a generation exists), state-changing messages from a connection
    /// that has not proven itself MASTER are refused with BAD_REQUEST /
    /// IS_SLAVE. Before the first role assertion every connection has
    /// full EQUAL access, so single-controller deployments are untouched.
    fn fence_non_master(&mut self, xid: u32) -> Option<Vec<u8>> {
        if self.master_generation.is_none() || self.role == ControllerRole::Master {
            return None;
        }
        Some(
            Message::Error(ErrorMsg {
                err_type: error_type::BAD_REQUEST,
                code: 10, // OFPBRC_IS_SLAVE
                data: vec![],
            })
            .encode(xid),
        )
    }

    fn handle_flow_mod(&mut self, now: SimTime, fm: FlowMod, xid: u32) -> SwitchOutput {
        use sav_openflow::messages::FlowModCommand::*;
        let mut out = SwitchOutput::default();
        if let Err(_e) = fm.match_.validate_prerequisites() {
            out.to_controller.push(
                Message::Error(ErrorMsg {
                    err_type: error_type::BAD_MATCH,
                    code: 11, // OFPBMC_BAD_PREREQ
                    data: vec![],
                })
                .encode(xid),
            );
            return out;
        }
        // Resolve target tables.
        if fm.table_id == table::ALL && matches!(fm.command, Delete | DeleteStrict) {
            for tid in 0..self.tables.len() {
                let removed = self.tables[tid].delete(&fm);
                out.merge(self.emit_flow_removed(now, tid as u8, removed));
            }
            return out;
        }
        let tid = usize::from(fm.table_id);
        if tid >= self.tables.len() {
            out.to_controller.push(
                Message::Error(ErrorMsg {
                    err_type: error_type::FLOW_MOD_FAILED,
                    code: flow_mod_failed::BAD_TABLE_ID,
                    data: vec![],
                })
                .encode(xid),
            );
            return out;
        }
        match fm.command {
            Add => {
                match self.tables[tid].add(&fm, now) {
                    FlowModOutcome::Ok => {
                        // Apply to a buffered packet if requested.
                        if fm.buffer_id != NO_BUFFER {
                            if let Some((in_port, frame)) = self.buffers.remove(&fm.buffer_id) {
                                out.merge(self.run_pipeline(now, in_port, frame, 0));
                            }
                        }
                    }
                    FlowModOutcome::Overlap => {
                        out.to_controller.push(
                            Message::Error(ErrorMsg {
                                err_type: error_type::FLOW_MOD_FAILED,
                                code: flow_mod_failed::OVERLAP,
                                data: vec![],
                            })
                            .encode(xid),
                        );
                    }
                    FlowModOutcome::TableFull => {
                        out.to_controller.push(
                            Message::Error(ErrorMsg {
                                err_type: error_type::FLOW_MOD_FAILED,
                                code: flow_mod_failed::TABLE_FULL,
                                data: vec![],
                            })
                            .encode(xid),
                        );
                    }
                }
            }
            Modify | ModifyStrict => {
                self.tables[tid].modify(&fm);
            }
            Delete | DeleteStrict => {
                let removed = self.tables[tid].delete(&fm);
                out.merge(self.emit_flow_removed(now, fm.table_id, removed));
            }
        }
        out
    }

    fn emit_flow_removed(
        &mut self,
        now: SimTime,
        table_id: u8,
        removed: Vec<crate::flow_table::FlowEntry>,
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        for e in removed {
            if e.flags & flow_mod_flags::SEND_FLOW_REM == 0 {
                continue;
            }
            let (duration_sec, duration_nsec) = e.duration(now);
            let xid = self.fresh_xid();
            out.to_controller.push(
                Message::FlowRemoved(FlowRemoved {
                    cookie: e.cookie,
                    priority: e.priority,
                    reason: FlowRemovedReason::Delete,
                    table_id,
                    duration_sec,
                    duration_nsec,
                    idle_timeout: e.idle_timeout,
                    hard_timeout: e.hard_timeout,
                    packet_count: e.packet_count,
                    byte_count: e.byte_count,
                    match_: e.match_,
                })
                .encode(xid),
            );
        }
        out
    }

    fn handle_multipart(&mut self, now: SimTime, body: MultipartRequestBody, xid: u32) -> Vec<u8> {
        let reply = match body {
            MultipartRequestBody::Flow(req) => {
                let mut entries = Vec::new();
                let table_ids: Vec<u8> = if req.table_id == table::ALL {
                    (0..self.config.n_tables).collect()
                } else {
                    vec![req.table_id]
                };
                for tid in table_ids {
                    let Some(t) = self.tables.get(usize::from(tid)) else {
                        continue;
                    };
                    for e in t.entries() {
                        if req.cookie_mask != 0
                            && (e.cookie & req.cookie_mask) != (req.cookie & req.cookie_mask)
                        {
                            continue;
                        }
                        let (duration_sec, duration_nsec) = e.duration(now);
                        entries.push(FlowStatsEntry {
                            table_id: tid,
                            duration_sec,
                            duration_nsec,
                            priority: e.priority,
                            idle_timeout: e.idle_timeout,
                            hard_timeout: e.hard_timeout,
                            flags: e.flags,
                            cookie: e.cookie,
                            packet_count: e.packet_count,
                            byte_count: e.byte_count,
                            match_: e.match_.clone(),
                            instructions: e.instructions.clone(),
                        });
                    }
                }
                MultipartReplyBody::Flow(entries)
            }
            MultipartRequestBody::PortStats { port_no } => {
                let mut stats = Vec::new();
                for (no, c) in &self.counters {
                    if port_no != port::ANY && *no != port_no {
                        continue;
                    }
                    let up_since = self.port_up_since.get(no).copied().unwrap_or(SimTime::ZERO);
                    stats.push(PortStats {
                        port_no: *no,
                        rx_packets: c.rx_packets,
                        tx_packets: c.tx_packets,
                        rx_bytes: c.rx_bytes,
                        tx_bytes: c.tx_bytes,
                        rx_dropped: c.rx_dropped,
                        tx_dropped: c.tx_dropped,
                        duration_sec: (now.saturating_since(up_since).as_secs_f64()) as u32,
                    });
                }
                MultipartReplyBody::PortStats(stats)
            }
            MultipartRequestBody::Table => {
                let stats = self
                    .tables
                    .iter()
                    .enumerate()
                    .map(|(i, t)| TableStats {
                        table_id: i as u8,
                        active_count: t.len() as u32,
                        lookup_count: t.lookup_count,
                        matched_count: t.matched_count,
                    })
                    .collect();
                MultipartReplyBody::Table(stats)
            }
            MultipartRequestBody::PortDesc => {
                MultipartReplyBody::PortDesc(self.ports.values().cloned().collect())
            }
        };
        Message::MultipartReply(reply).encode(xid)
    }

    /// A frame arrives on `in_port`. Runs the pipeline from table 0.
    pub fn receive_frame(&mut self, now: SimTime, in_port: u32, frame: Vec<u8>) -> SwitchOutput {
        let Some(desc) = self.ports.get(&in_port) else {
            self.malformed_rx += 1;
            return SwitchOutput::default();
        };
        if !desc.is_up() {
            return SwitchOutput::default();
        }
        {
            let c = self.counters.entry(in_port).or_default();
            c.rx_packets += 1;
            c.rx_bytes += frame.len() as u64;
        }
        self.run_pipeline(now, in_port, frame, 0)
    }

    fn run_pipeline(
        &mut self,
        now: SimTime,
        in_port: u32,
        frame: Vec<u8>,
        start_table: u8,
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        let parsed = match ParsedPacket::parse(&frame) {
            Ok(p) => p,
            Err(_) => {
                self.malformed_rx += 1;
                if let Some(c) = self.counters.get_mut(&in_port) {
                    c.rx_dropped += 1;
                }
                return out;
            }
        };
        let mut table_id = start_table;
        let mut action_set: Vec<Action> = Vec::new();
        let mut matched_cookie = u64::MAX;
        let mut matched_table = start_table;
        while let Some(t) = self.tables.get_mut(usize::from(table_id)) {
            let ctx = MatchContext {
                in_port,
                packet: &parsed,
            };
            let Some((instructions, cookie)) = t.lookup(&ctx, now, frame.len()) else {
                // Table miss with no miss entry: drop (OF1.3 §5.4).
                if let Some(c) = self.counters.get_mut(&in_port) {
                    c.rx_dropped += 1;
                }
                return out;
            };
            matched_cookie = cookie;
            matched_table = table_id;
            let mut goto = None;
            for ins in instructions {
                match ins {
                    Instruction::ApplyActions(actions) => {
                        out.merge(self.apply_actions_immediate(
                            now,
                            in_port,
                            &actions,
                            &frame,
                            matched_cookie,
                            matched_table,
                        ));
                    }
                    Instruction::WriteActions(actions) => {
                        for a in actions {
                            // The action set holds at most one output; the
                            // latest write wins (OF1.3 §5.10).
                            if matches!(a, Action::Output { .. }) {
                                action_set.retain(|x| !matches!(x, Action::Output { .. }));
                            }
                            action_set.push(a);
                        }
                    }
                    Instruction::ClearActions => action_set.clear(),
                    Instruction::GotoTable(t) => goto = Some(t),
                    Instruction::Meter(_) => {} // accepted, not rate-limited
                }
            }
            match goto {
                Some(next) if next > table_id => table_id = next,
                _ => break,
            }
        }
        if !action_set.is_empty() {
            let set = std::mem::take(&mut action_set);
            out.merge(self.apply_actions_immediate(
                now,
                in_port,
                &set,
                &frame,
                matched_cookie,
                matched_table,
            ));
        }
        out
    }

    /// Execute an action list on a packet-out (public path; used by the
    /// PACKET_OUT handler and tests).
    pub fn execute_actions(
        &mut self,
        now: SimTime,
        in_port: u32,
        actions: &[Action],
        frame: Vec<u8>,
    ) -> SwitchOutput {
        self.apply_actions_immediate(now, in_port, actions, &frame, u64::MAX, 0)
    }

    fn apply_actions_immediate(
        &mut self,
        now: SimTime,
        in_port: u32,
        actions: &[Action],
        frame: &[u8],
        cookie: u64,
        table_id: u8,
    ) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        let mut frame = frame.to_vec();
        for a in actions {
            match a {
                Action::SetField(f) => {
                    // Supported rewrites: Ethernet addresses (enough for the
                    // L2 use-cases in this workspace). Others are ignored.
                    match f {
                        OxmField::EthSrc(mac, None) if frame.len() >= 12 => {
                            frame[6..12].copy_from_slice(mac.as_bytes());
                        }
                        OxmField::EthDst(mac, None) if frame.len() >= 12 => {
                            frame[0..6].copy_from_slice(mac.as_bytes());
                        }
                        _ => {}
                    }
                }
                Action::Group(_) => {
                    // Groups are out of scope; a real switch without group
                    // support would have rejected the flow-mod — emitting a
                    // late error keeps the contract visible.
                    let xid = self.fresh_xid();
                    out.to_controller.push(
                        Message::Error(ErrorMsg {
                            err_type: error_type::BAD_ACTION,
                            code: 9, // OFPBAC_BAD_OUT_GROUP
                            data: vec![],
                        })
                        .encode(xid),
                    );
                }
                Action::Output { port: p, max_len } => match *p {
                    port::CONTROLLER => {
                        out.to_controller
                            .push(self.make_packet_in(in_port, &frame, *max_len, cookie, table_id));
                    }
                    port::FLOOD | port::ALL => {
                        let ports: Vec<u32> = self
                            .ports
                            .values()
                            .filter(|d| d.is_up() && d.port_no != in_port)
                            .map(|d| d.port_no)
                            .collect();
                        for p in ports {
                            self.tx_frame(&mut out, p, frame.clone());
                        }
                    }
                    port::IN_PORT => self.tx_frame(&mut out, in_port, frame.clone()),
                    port::TABLE => {
                        out.merge(self.run_pipeline(now, in_port, frame.clone(), 0));
                    }
                    port::LOCAL | port::NORMAL | port::ANY => {}
                    p => self.tx_frame(&mut out, p, frame.clone()),
                },
            }
        }
        out
    }

    fn tx_frame(&mut self, out: &mut SwitchOutput, port_no: u32, frame: Vec<u8>) {
        match self.ports.get(&port_no) {
            Some(d) if d.is_up() => {
                let c = self.counters.entry(port_no).or_default();
                c.tx_packets += 1;
                c.tx_bytes += frame.len() as u64;
                out.tx.push((port_no, frame));
            }
            _ => {
                let c = self.counters.entry(port_no).or_default();
                c.tx_dropped += 1;
            }
        }
    }

    fn make_packet_in(
        &mut self,
        in_port: u32,
        frame: &[u8],
        max_len: u16,
        cookie: u64,
        table_id: u8,
    ) -> Vec<u8> {
        let total_len = frame.len() as u16;
        let send_len = usize::from(max_len.min(self.miss_send_len)).min(frame.len());
        let (buffer_id, data) =
            if send_len < frame.len() && self.buffers.len() < self.config.n_buffers as usize {
                let id = self.next_buffer_id;
                self.next_buffer_id = self.next_buffer_id.wrapping_add(1).max(1);
                self.buffers.insert(id, (in_port, frame.to_vec()));
                (id, frame[..send_len].to_vec())
            } else {
                (NO_BUFFER, frame.to_vec())
            };
        let reason = if cookie == u64::MAX {
            PacketInReason::NoMatch
        } else {
            PacketInReason::Action
        };
        let xid = self.fresh_xid();
        Message::PacketIn(PacketIn {
            buffer_id,
            total_len,
            reason,
            table_id,
            cookie,
            match_: OxmMatch::new().with(OxmField::InPort(in_port)),
            data,
        })
        .encode(xid)
    }

    /// Administratively flip a port's link state, emitting PORT_STATUS.
    pub fn set_port_up(&mut self, now: SimTime, port_no: u32, up: bool) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        let Some(desc) = self.ports.get_mut(&port_no) else {
            return out;
        };
        let was_up = desc.is_up();
        desc.state = if up {
            PortState::LIVE
        } else {
            PortState::LINK_DOWN
        };
        if up && !was_up {
            self.port_up_since.insert(port_no, now);
        }
        if was_up != up {
            let xid = self.fresh_xid();
            out.to_controller.push(
                Message::PortStatus(PortStatus {
                    reason: PortStatusReason::Modify,
                    desc: self.ports[&port_no].clone(),
                })
                .encode(xid),
            );
        }
        out
    }

    /// Expire timed-out flows; returns FLOW_REMOVED notifications for those
    /// installed with `SEND_FLOW_REM`.
    pub fn tick(&mut self, now: SimTime) -> SwitchOutput {
        let mut out = SwitchOutput::default();
        for tid in 0..self.tables.len() {
            let expired = self.tables[tid].expire(now);
            for (e, reason) in expired {
                if e.flags & flow_mod_flags::SEND_FLOW_REM == 0 {
                    continue;
                }
                let (duration_sec, duration_nsec) = e.duration(now);
                let xid = self.fresh_xid();
                out.to_controller.push(
                    Message::FlowRemoved(FlowRemoved {
                        cookie: e.cookie,
                        priority: e.priority,
                        reason,
                        table_id: tid as u8,
                        duration_sec,
                        duration_nsec,
                        idle_timeout: e.idle_timeout,
                        hard_timeout: e.hard_timeout,
                        packet_count: e.packet_count,
                        byte_count: e.byte_count,
                        match_: e.match_,
                    })
                    .encode(xid),
                );
            }
        }
        out
    }

    /// Earliest future instant any installed flow could expire.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.tables.iter().filter_map(FlowTable::next_expiry).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sav_net::builder::build_ipv4_udp;
    use sav_net::prelude::*;
    use sav_openflow::ports::PortDesc as OfPortDesc;

    fn mk_switch(nports: u32) -> OpenFlowSwitch {
        let ports = (1..=nports)
            .map(|i| OfPortDesc::new(i, sav_net::addr::MacAddr::from_index(0x100 + u64::from(i))))
            .collect();
        OpenFlowSwitch::new(SwitchConfig::new(0xd1), ports)
    }

    fn udp_frame(src_ip: &str, dst_ip: &str) -> Vec<u8> {
        let udp = UdpRepr {
            src_port: 1000,
            dst_port: 2000,
            payload_len: 4,
        };
        let ip = Ipv4Repr::udp(
            src_ip.parse().unwrap(),
            dst_ip.parse().unwrap(),
            udp.buffer_len(),
        );
        let eth = EthernetRepr {
            src: MacAddr::from_index(1),
            dst: MacAddr::from_index(2),
            ethertype: EtherType::Ipv4,
        };
        build_ipv4_udp(&eth, &ip, &udp, b"data")
    }

    fn decode_all(out: &SwitchOutput) -> Vec<Message> {
        out.to_controller
            .iter()
            .map(|b| Message::decode(b).unwrap().0)
            .collect()
    }

    fn flow_mod(sw: &mut OpenFlowSwitch, fm: FlowMod) -> SwitchOutput {
        let bytes = Message::FlowMod(fm).encode(1);
        sw.handle_controller_bytes(SimTime::ZERO, &bytes).unwrap()
    }

    #[test]
    fn handshake_over_bytes() {
        let mut sw = mk_switch(2);
        let hello = Message::Hello.encode(1);
        let feat = Message::FeaturesRequest.encode(2);
        let mut stream = hello;
        stream.extend_from_slice(&feat);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &stream).unwrap();
        let msgs = decode_all(&out);
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::FeaturesReply(f) => {
                assert_eq!(f.datapath_id, 0xd1);
                assert_eq!(f.n_tables, 4);
            }
            other => panic!("expected FeaturesReply, got {other:?}"),
        }
    }

    #[test]
    fn echo_and_barrier_preserve_xid() {
        let mut sw = mk_switch(1);
        let out = sw
            .handle_controller_bytes(
                SimTime::ZERO,
                &Message::EchoRequest(sav_openflow::messages::EchoData(b"x".to_vec())).encode(77),
            )
            .unwrap();
        let (msg, xid) = Message::decode(&out.to_controller[0]).unwrap();
        assert_eq!(xid, 77);
        assert!(matches!(msg, Message::EchoReply(_)));
        let out = sw
            .handle_controller_bytes(SimTime::ZERO, &Message::BarrierRequest.encode(78))
            .unwrap();
        let (msg, xid) = Message::decode(&out.to_controller[0]).unwrap();
        assert_eq!(xid, 78);
        assert_eq!(msg, Message::BarrierReply);
    }

    #[test]
    fn miss_without_entry_drops() {
        let mut sw = mk_switch(2);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        assert!(out.tx.is_empty());
        assert!(out.to_controller.is_empty());
        assert_eq!(sw.port_counters(1).unwrap().rx_dropped, 1);
    }

    #[test]
    fn table_miss_entry_punts_to_controller() {
        let mut sw = mk_switch(2);
        let miss = FlowMod {
            priority: 0,
            instructions: vec![Instruction::apply_output(port::CONTROLLER)],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, miss);
        let frame = udp_frame("10.0.0.1", "10.0.0.2");
        let out = sw.receive_frame(SimTime::ZERO, 1, frame.clone());
        let msgs = decode_all(&out);
        assert_eq!(msgs.len(), 1);
        match &msgs[0] {
            Message::PacketIn(pi) => {
                assert_eq!(pi.in_port(), Some(1));
                assert_eq!(pi.data, frame);
                assert_eq!(pi.total_len as usize, frame.len());
                assert_eq!(pi.buffer_id, NO_BUFFER);
            }
            other => panic!("expected PacketIn, got {other:?}"),
        }
    }

    #[test]
    fn forwarding_via_flow() {
        let mut sw = mk_switch(3);
        let fm = FlowMod {
            priority: 10,
            instructions: vec![Instruction::apply_output(2)],
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
        };
        flow_mod(&mut sw, fm);
        let frame = udp_frame("10.0.0.1", "10.0.0.2");
        let out = sw.receive_frame(SimTime::ZERO, 1, frame.clone());
        assert_eq!(out.tx, vec![(2, frame)]);
        assert_eq!(sw.port_counters(2).unwrap().tx_packets, 1);
    }

    #[test]
    fn two_table_pipeline_sav_then_forward() {
        let mut sw = mk_switch(3);
        // Table 0: allow this binding, goto table 1. Default: drop (no miss entry).
        let allow = FlowMod {
            priority: 40_000,
            table_id: 0,
            instructions: vec![Instruction::GotoTable(1)],
            ..FlowMod::add(
                OxmMatch::new()
                    .with(OxmField::InPort(1))
                    .with(OxmField::EthType(0x0800))
                    .with(OxmField::Ipv4Src("10.0.0.1".parse().unwrap(), None)),
            )
        };
        flow_mod(&mut sw, allow);
        // Table 1: forward everything to port 3.
        let fwd = FlowMod {
            priority: 1,
            table_id: 1,
            instructions: vec![Instruction::apply_output(3)],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, fwd);

        // Legit packet goes through both tables.
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "8.8.8.8"));
        assert_eq!(out.tx.len(), 1);
        assert_eq!(out.tx[0].0, 3);
        // Spoofed source dies in table 0.
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("99.9.9.9", "8.8.8.8"));
        assert!(out.tx.is_empty());
    }

    #[test]
    fn write_actions_execute_at_pipeline_end() {
        let mut sw = mk_switch(3);
        let t0 = FlowMod {
            priority: 1,
            table_id: 0,
            instructions: vec![
                Instruction::WriteActions(vec![Action::output(2)]),
                Instruction::GotoTable(1),
            ],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, t0);
        // Table 1 overrides the action-set output.
        let t1 = FlowMod {
            priority: 1,
            table_id: 1,
            instructions: vec![Instruction::WriteActions(vec![Action::output(3)])],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, t1);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        assert_eq!(out.tx.len(), 1, "single output from the action set");
        assert_eq!(out.tx[0].0, 3, "later write wins");
    }

    #[test]
    fn clear_actions_drops() {
        let mut sw = mk_switch(2);
        let t0 = FlowMod {
            priority: 1,
            table_id: 0,
            instructions: vec![
                Instruction::WriteActions(vec![Action::output(2)]),
                Instruction::GotoTable(1),
            ],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, t0);
        let t1 = FlowMod {
            priority: 1,
            table_id: 1,
            instructions: vec![Instruction::ClearActions],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, t1);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        assert!(out.tx.is_empty());
    }

    #[test]
    fn flood_excludes_ingress_and_down_ports() {
        let mut sw = mk_switch(4);
        sw.set_port_up(SimTime::ZERO, 3, false);
        let fm = FlowMod {
            priority: 1,
            instructions: vec![Instruction::apply_output(port::FLOOD)],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, fm);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        let mut ports: Vec<u32> = out.tx.iter().map(|(p, _)| *p).collect();
        ports.sort_unstable();
        assert_eq!(ports, vec![2, 4]);
    }

    #[test]
    fn packet_out_transmits() {
        let mut sw = mk_switch(2);
        let frame = udp_frame("10.0.0.1", "10.0.0.2");
        let po = Message::PacketOut(sav_openflow::messages::PacketOut {
            buffer_id: NO_BUFFER,
            in_port: port::CONTROLLER,
            actions: vec![Action::output(2)],
            data: frame.clone(),
        })
        .encode(5);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &po).unwrap();
        assert_eq!(out.tx, vec![(2, frame)]);
    }

    #[test]
    fn packet_in_buffering_and_release() {
        let mut sw = mk_switch(2);
        // Truncate packet-ins to 32 bytes → switch buffers the frame.
        let sc = Message::SetConfig(WireSwitchConfig {
            flags: 0,
            miss_send_len: 32,
        })
        .encode(1);
        sw.handle_controller_bytes(SimTime::ZERO, &sc).unwrap();
        let miss = FlowMod {
            priority: 0,
            instructions: vec![Instruction::apply_output(port::CONTROLLER)],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, miss);

        let frame = udp_frame("10.0.0.1", "10.0.0.2");
        let out = sw.receive_frame(SimTime::ZERO, 1, frame.clone());
        let msgs = decode_all(&out);
        let Message::PacketIn(pi) = &msgs[0] else {
            panic!("expected PacketIn");
        };
        assert_ne!(pi.buffer_id, NO_BUFFER);
        assert_eq!(pi.data.len(), 32);
        assert_eq!(pi.total_len as usize, frame.len());

        // Controller releases the buffer out port 2.
        let po = Message::PacketOut(sav_openflow::messages::PacketOut {
            buffer_id: pi.buffer_id,
            in_port: 1,
            actions: vec![Action::output(2)],
            data: vec![],
        })
        .encode(9);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &po).unwrap();
        assert_eq!(out.tx, vec![(2, frame)]);
        // Releasing again is an error (buffer consumed).
        let po = Message::PacketOut(sav_openflow::messages::PacketOut {
            buffer_id: pi.buffer_id,
            in_port: 1,
            actions: vec![Action::output(2)],
            data: vec![],
        })
        .encode(10);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &po).unwrap();
        assert!(matches!(
            Message::decode(&out.to_controller[0]).unwrap().0,
            Message::Error(_)
        ));
    }

    #[test]
    fn bad_prereq_flow_mod_rejected() {
        let mut sw = mk_switch(1);
        let fm = FlowMod::add(
            OxmMatch::new().with(OxmField::Ipv4Src("10.0.0.1".parse().unwrap(), None)),
        );
        let out = flow_mod(&mut sw, fm);
        let msgs = decode_all(&out);
        match &msgs[0] {
            Message::Error(e) => assert_eq!(e.err_type, error_type::BAD_MATCH),
            other => panic!("expected error, got {other:?}"),
        }
        assert_eq!(sw.total_flows(), 0);
    }

    #[test]
    fn bad_table_id_rejected() {
        let mut sw = mk_switch(1);
        let fm = FlowMod {
            table_id: 9,
            ..FlowMod::add(OxmMatch::new())
        };
        let out = flow_mod(&mut sw, fm);
        match &decode_all(&out)[0] {
            Message::Error(e) => {
                assert_eq!(e.err_type, error_type::FLOW_MOD_FAILED);
                assert_eq!(e.code, flow_mod_failed::BAD_TABLE_ID);
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn delete_with_send_flow_rem_notifies() {
        let mut sw = mk_switch(1);
        let fm = FlowMod {
            priority: 5,
            cookie: 0xc0ffee,
            flags: flow_mod_flags::SEND_FLOW_REM,
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
        };
        flow_mod(&mut sw, fm);
        let out = flow_mod(&mut sw, FlowMod::delete(0, OxmMatch::new()));
        match &decode_all(&out)[0] {
            Message::FlowRemoved(fr) => {
                assert_eq!(fr.cookie, 0xc0ffee);
                assert_eq!(fr.reason, FlowRemovedReason::Delete);
            }
            other => panic!("expected FlowRemoved, got {other:?}"),
        }
    }

    #[test]
    fn timeout_expiry_notifies() {
        let mut sw = mk_switch(1);
        let fm = FlowMod {
            priority: 5,
            hard_timeout: 2,
            flags: flow_mod_flags::SEND_FLOW_REM,
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, fm);
        assert_eq!(sw.next_expiry(), Some(SimTime::from_secs(2)));
        let out = sw.tick(SimTime::from_secs(2));
        match &decode_all(&out)[0] {
            Message::FlowRemoved(fr) => {
                assert_eq!(fr.reason, FlowRemovedReason::HardTimeout);
                assert_eq!(fr.duration_sec, 2);
            }
            other => panic!("expected FlowRemoved, got {other:?}"),
        }
        assert_eq!(sw.total_flows(), 0);
    }

    #[test]
    fn port_status_on_link_change() {
        let mut sw = mk_switch(2);
        let out = sw.set_port_up(SimTime::from_secs(1), 2, false);
        match &decode_all(&out)[0] {
            Message::PortStatus(ps) => {
                assert_eq!(ps.desc.port_no, 2);
                assert!(!ps.desc.is_up());
            }
            other => panic!("expected PortStatus, got {other:?}"),
        }
        // No duplicate event when state unchanged.
        let out = sw.set_port_up(SimTime::from_secs(2), 2, false);
        assert!(out.to_controller.is_empty());
    }

    #[test]
    fn rx_on_down_port_ignored() {
        let mut sw = mk_switch(2);
        sw.set_port_up(SimTime::ZERO, 1, false);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        assert!(out.tx.is_empty());
        assert_eq!(sw.port_counters(1).unwrap().rx_packets, 0);
    }

    #[test]
    fn multipart_flow_and_table_stats() {
        let mut sw = mk_switch(2);
        let fm = FlowMod {
            priority: 9,
            cookie: 0xabc,
            instructions: vec![Instruction::apply_output(2)],
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
        };
        flow_mod(&mut sw, fm);
        sw.receive_frame(SimTime::from_secs(1), 1, udp_frame("10.0.0.1", "10.0.0.2"));

        let req = Message::MultipartRequest(MultipartRequestBody::Flow(
            sav_openflow::messages::FlowStatsRequest::default(),
        ))
        .encode(3);
        let out = sw
            .handle_controller_bytes(SimTime::from_secs(2), &req)
            .unwrap();
        match &decode_all(&out)[0] {
            Message::MultipartReply(MultipartReplyBody::Flow(entries)) => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].cookie, 0xabc);
                assert_eq!(entries[0].packet_count, 1);
                assert_eq!(entries[0].duration_sec, 2);
            }
            other => panic!("expected flow stats, got {other:?}"),
        }

        let req = Message::MultipartRequest(MultipartRequestBody::Table).encode(4);
        let out = sw
            .handle_controller_bytes(SimTime::from_secs(2), &req)
            .unwrap();
        match &decode_all(&out)[0] {
            Message::MultipartReply(MultipartReplyBody::Table(stats)) => {
                assert_eq!(stats.len(), 4);
                assert_eq!(stats[0].active_count, 1);
                assert_eq!(stats[0].lookup_count, 1);
                assert_eq!(stats[0].matched_count, 1);
            }
            other => panic!("expected table stats, got {other:?}"),
        }
    }

    #[test]
    fn multipart_port_desc_lists_ports() {
        let mut sw = mk_switch(3);
        let req = Message::MultipartRequest(MultipartRequestBody::PortDesc).encode(4);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &req).unwrap();
        match &decode_all(&out)[0] {
            Message::MultipartReply(MultipartReplyBody::PortDesc(ports)) => {
                assert_eq!(ports.len(), 3);
                assert_eq!(ports[0].port_no, 1);
            }
            other => panic!("expected port desc, got {other:?}"),
        }
    }

    #[test]
    fn set_field_rewrites_mac() {
        let mut sw = mk_switch(2);
        let new_dst = MacAddr::from_index(0xbeef);
        let fm = FlowMod {
            priority: 1,
            instructions: vec![Instruction::ApplyActions(vec![
                Action::SetField(OxmField::EthDst(new_dst, None)),
                Action::output(2),
            ])],
            ..FlowMod::add(OxmMatch::new())
        };
        flow_mod(&mut sw, fm);
        let out = sw.receive_frame(SimTime::ZERO, 1, udp_frame("10.0.0.1", "10.0.0.2"));
        let frame = &out.tx[0].1;
        let parsed = ParsedPacket::parse(frame).unwrap();
        assert_eq!(parsed.ethernet.dst, new_dst);
    }

    fn role_request(sw: &mut OpenFlowSwitch, role: ControllerRole, generation: u64) -> Message {
        let bytes = Message::RoleRequest(RoleMsg {
            role,
            generation_id: generation,
        })
        .encode(42);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &bytes).unwrap();
        decode_all(&out).remove(0)
    }

    #[test]
    fn role_request_grants_master_and_reports_generation() {
        let mut sw = mk_switch(1);
        assert_eq!(sw.role(), ControllerRole::Equal);
        assert_eq!(sw.master_generation(), None);
        match role_request(&mut sw, ControllerRole::Master, 7) {
            Message::RoleReply(m) => {
                assert_eq!(m.role, ControllerRole::Master);
                assert_eq!(m.generation_id, 7);
            }
            other => panic!("expected RoleReply, got {other:?}"),
        }
        assert_eq!(sw.role(), ControllerRole::Master);
        assert_eq!(sw.master_generation(), Some(7));
        // NOCHANGE queries without modifying anything.
        match role_request(&mut sw, ControllerRole::NoChange, 999) {
            Message::RoleReply(m) => {
                assert_eq!(m.role, ControllerRole::Master);
                assert_eq!(m.generation_id, 7);
            }
            other => panic!("expected RoleReply, got {other:?}"),
        }
    }

    #[test]
    fn stale_generation_rejected_and_role_unchanged() {
        let mut sw = mk_switch(1);
        role_request(&mut sw, ControllerRole::Master, 5);
        match role_request(&mut sw, ControllerRole::Master, 4) {
            Message::Error(e) => {
                assert_eq!(e.err_type, error_type::ROLE_REQUEST_FAILED);
                assert_eq!(e.code, role_request_failed::STALE);
            }
            other => panic!("expected stale error, got {other:?}"),
        }
        assert_eq!(sw.master_generation(), Some(5));
        // Equal or newer generations are accepted.
        match role_request(&mut sw, ControllerRole::Master, 6) {
            Message::RoleReply(m) => assert_eq!(m.generation_id, 6),
            other => panic!("expected RoleReply, got {other:?}"),
        }
    }

    #[test]
    fn generation_survives_reconnect_and_fences_stale_master() {
        let mut sw = mk_switch(2);
        role_request(&mut sw, ControllerRole::Master, 3);
        // The fenced connection dies; a reconnect resets the role but the
        // generation floor persists.
        sw.on_control_reconnect();
        assert_eq!(sw.role(), ControllerRole::Equal);
        assert_eq!(sw.master_generation(), Some(3));
        // The resurrected stale master replays its old generation: refused.
        match role_request(&mut sw, ControllerRole::Master, 2) {
            Message::Error(e) => assert_eq!(e.err_type, error_type::ROLE_REQUEST_FAILED),
            other => panic!("expected stale error, got {other:?}"),
        }
        // And without mastership its flow-mods are fenced too.
        let fm = FlowMod {
            priority: 1,
            instructions: vec![Instruction::apply_output(2)],
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
        };
        let out = flow_mod(&mut sw, fm.clone());
        match &decode_all(&out)[0] {
            Message::Error(e) => {
                assert_eq!(e.err_type, error_type::BAD_REQUEST);
                assert_eq!(e.code, 10); // OFPBRC_IS_SLAVE
            }
            other => panic!("expected IS_SLAVE error, got {other:?}"),
        }
        assert_eq!(sw.total_flows(), 0, "fenced flow-mod must not install");
        // The rightful new master (higher generation) still gets through.
        role_request(&mut sw, ControllerRole::Master, 4);
        flow_mod(&mut sw, fm);
        assert_eq!(sw.total_flows(), 1);
    }

    #[test]
    fn fencing_inactive_before_first_role_assertion() {
        let mut sw = mk_switch(2);
        // No generation yet: plain EQUAL connections keep full access.
        let fm = FlowMod {
            priority: 1,
            instructions: vec![Instruction::apply_output(2)],
            ..FlowMod::add(OxmMatch::new().with(OxmField::InPort(1)))
        };
        flow_mod(&mut sw, fm);
        assert_eq!(sw.total_flows(), 1);
        // A slave is fenced from packet-out as well.
        role_request(&mut sw, ControllerRole::Slave, 1);
        let po = Message::PacketOut(sav_openflow::messages::PacketOut {
            buffer_id: NO_BUFFER,
            in_port: port::CONTROLLER,
            actions: vec![Action::output(2)],
            data: udp_frame("10.0.0.1", "10.0.0.2"),
        })
        .encode(5);
        let out = sw.handle_controller_bytes(SimTime::ZERO, &po).unwrap();
        assert!(out.tx.is_empty());
        assert!(matches!(
            decode_all(&out)[0],
            Message::Error(ErrorMsg { err_type, code, .. })
                if err_type == error_type::BAD_REQUEST && code == 10
        ));
    }

    #[test]
    fn malformed_frame_counted() {
        let mut sw = mk_switch(1);
        flow_mod(
            &mut sw,
            FlowMod {
                priority: 0,
                instructions: vec![Instruction::apply_output(port::CONTROLLER)],
                ..FlowMod::add(OxmMatch::new())
            },
        );
        // IPv4 ethertype but garbage payload: parse fails.
        let mut junk = vec![0u8; 20];
        junk[12] = 0x08;
        junk[13] = 0x00;
        let out = sw.receive_frame(SimTime::ZERO, 1, junk);
        assert!(out.to_controller.is_empty());
        assert_eq!(sw.malformed_rx, 1);
    }
}
