//! `ofp_port` — the 64-byte port description used in FEATURES_REPLY (by
//! convention, as in OpenFlow 1.0/1.3 switches that append ports) and in
//! PORT_STATUS.

use crate::error::{CodecError, Result};
use crate::wire::{Reader, Writer};
use sav_net::addr::MacAddr;

/// Encoded size of one `ofp_port`.
pub const PORT_DESC_LEN: usize = 64;

/// `ofp_port_config` bits (administrative state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortConfig(pub u32);

impl PortConfig {
    /// OFPPC_PORT_DOWN: administratively down.
    pub const PORT_DOWN: PortConfig = PortConfig(1 << 0);
    /// OFPPC_NO_FWD: drop packets forwarded to the port.
    pub const NO_FWD: PortConfig = PortConfig(1 << 5);

    /// Does `self` contain all bits of `other`?
    pub fn contains(self, other: PortConfig) -> bool {
        self.0 & other.0 == other.0
    }
}

/// `ofp_port_state` bits (live state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PortState(pub u32);

impl PortState {
    /// OFPPS_LINK_DOWN: no physical link.
    pub const LINK_DOWN: PortState = PortState(1 << 0);
    /// OFPPS_LIVE: port is up and forwarding.
    pub const LIVE: PortState = PortState(1 << 2);

    /// Does `self` contain all bits of `other`?
    pub fn contains(self, other: PortState) -> bool {
        self.0 & other.0 == other.0
    }
}

/// One switch port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortDesc {
    /// Port number.
    pub port_no: u32,
    /// Hardware address.
    pub hw_addr: MacAddr,
    /// Human-readable name (at most 15 bytes are preserved on the wire).
    pub name: String,
    /// Administrative config bits.
    pub config: PortConfig,
    /// Live state bits.
    pub state: PortState,
    /// Current speed in kbps.
    pub curr_speed: u32,
    /// Maximum speed in kbps.
    pub max_speed: u32,
}

impl PortDesc {
    /// A live 1 Gbps port with a generated name.
    pub fn new(port_no: u32, hw_addr: MacAddr) -> PortDesc {
        PortDesc {
            port_no,
            hw_addr,
            name: format!("port{port_no}"),
            config: PortConfig::default(),
            state: PortState::LIVE,
            curr_speed: 1_000_000,
            max_speed: 1_000_000,
        }
    }

    /// True when the port can carry traffic.
    pub fn is_up(&self) -> bool {
        !self.config.contains(PortConfig::PORT_DOWN) && !self.state.contains(PortState::LINK_DOWN)
    }

    /// Append the 64-byte structure to `w`.
    pub fn encode(&self, w: &mut Writer) {
        w.u32(self.port_no);
        w.pad(4);
        w.bytes(self.hw_addr.as_bytes());
        w.pad(2);
        let mut name = [0u8; 16];
        let n = self.name.len().min(15);
        name[..n].copy_from_slice(&self.name.as_bytes()[..n]);
        w.bytes(&name);
        w.u32(self.config.0);
        w.u32(self.state.0);
        w.u32(0); // curr features
        w.u32(0); // advertised
        w.u32(0); // supported
        w.u32(0); // peer
        w.u32(self.curr_speed);
        w.u32(self.max_speed);
    }

    /// Decode one 64-byte structure from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<PortDesc> {
        let port_no = r.u32()?;
        r.skip(4)?;
        let hw_addr = MacAddr::from_bytes(r.take(6)?).map_err(|_| CodecError::Truncated)?;
        r.skip(2)?;
        let name_raw = r.take(16)?;
        let end = name_raw.iter().position(|&b| b == 0).unwrap_or(16);
        let name = String::from_utf8_lossy(&name_raw[..end]).into_owned();
        let config = PortConfig(r.u32()?);
        let state = PortState(r.u32()?);
        r.skip(16)?; // feature bitmaps
        let curr_speed = r.u32()?;
        let max_speed = r.u32()?;
        Ok(PortDesc {
            port_no,
            hw_addr,
            name,
            config,
            state,
            curr_speed,
            max_speed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let p = PortDesc::new(3, MacAddr::from_index(3));
        let mut w = Writer::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), PORT_DESC_LEN);
        let mut r = Reader::new(&bytes);
        assert_eq!(PortDesc::decode(&mut r).unwrap(), p);
        assert!(r.is_empty());
    }

    #[test]
    fn long_names_truncate() {
        let mut p = PortDesc::new(1, MacAddr::from_index(1));
        p.name = "a-very-long-port-name-indeed".to_string();
        let mut w = Writer::new();
        p.encode(&mut w);
        let mut r = Reader::new(w.as_slice());
        let out = PortDesc::decode(&mut r).unwrap();
        assert_eq!(out.name, "a-very-long-por");
        assert_eq!(out.name.len(), 15);
    }

    #[test]
    fn up_down_logic() {
        let mut p = PortDesc::new(1, MacAddr::from_index(1));
        assert!(p.is_up());
        p.state = PortState::LINK_DOWN;
        assert!(!p.is_up());
        p.state = PortState::LIVE;
        p.config = PortConfig::PORT_DOWN;
        assert!(!p.is_up());
    }

    #[test]
    fn truncated_decode() {
        let mut r = Reader::new(&[0u8; 63]);
        assert!(PortDesc::decode(&mut r).is_err());
    }
}
