//! Bounds-checked big-endian cursor primitives shared by every codec module.

use crate::error::{CodecError, Result};

/// A read cursor over a byte slice. Every accessor is bounds-checked and
//  advances the cursor; running off the end yields `Truncated`.
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `data`.
    pub fn new(data: &'a [u8]) -> Reader<'a> {
        Reader { data, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let b = *self.data.get(self.pos).ok_or(CodecError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a big-endian u16.
    pub fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Read a big-endian u32.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a big-endian u64.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Take exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        let s = self.data.get(self.pos..end).ok_or(CodecError::Truncated)?;
        self.pos = end;
        Ok(s)
    }

    /// Skip `n` padding bytes.
    pub fn skip(&mut self, n: usize) -> Result<()> {
        self.take(n).map(|_| ())
    }

    /// Take all remaining bytes.
    pub fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    /// A sub-reader over the next `n` bytes (consumes them here).
    pub fn sub(&mut self, n: usize) -> Result<Reader<'a>> {
        Ok(Reader::new(self.take(n)?))
    }
}

/// A write cursor appending big-endian values to a `Vec<u8>`.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer { buf: Vec::new() }
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(n: usize) -> Writer {
        Writer {
            buf: Vec::with_capacity(n),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a big-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Append raw bytes.
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Append `n` zero bytes.
    pub fn pad(&mut self, n: usize) {
        self.buf.resize(self.buf.len() + n, 0);
    }

    /// Zero-pad so the total length since `start` is a multiple of 8.
    pub fn pad8_from(&mut self, start: usize) {
        let len = self.buf.len() - start;
        self.pad(crate::consts::pad8(len) - len);
    }

    /// Overwrite a previously written big-endian u16 at `at`.
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_roundtrips_writer() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0x1234);
        w.u32(0xdeadbeef);
        w.u64(0x0102030405060708);
        w.bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xdeadbeef);
        assert_eq!(r.u64().unwrap(), 0x0102030405060708);
        assert_eq!(r.rest(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn reader_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.u16().err(), Some(CodecError::Truncated));
        // Cursor did not advance past the failed read's start.
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.u8().unwrap(), 3);
    }

    #[test]
    fn sub_reader_isolates() {
        let data = [1, 2, 3, 4, 5];
        let mut r = Reader::new(&data);
        let mut s = r.sub(3).unwrap();
        assert_eq!(s.u8().unwrap(), 1);
        assert_eq!(s.remaining(), 2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.u8().unwrap(), 4);
        assert!(r.sub(5).is_err());
    }

    #[test]
    fn writer_padding() {
        let mut w = Writer::new();
        w.bytes(b"abc");
        w.pad8_from(0);
        assert_eq!(w.len(), 8);
        let mut w2 = Writer::new();
        w2.bytes(&[0u8; 8]);
        w2.pad8_from(0);
        assert_eq!(w2.len(), 8);
    }

    #[test]
    fn patch_u16() {
        let mut w = Writer::new();
        w.u16(0);
        w.u16(0xffff);
        w.patch_u16(0, 0x0a0b);
        assert_eq!(w.as_slice(), &[0x0a, 0x0b, 0xff, 0xff]);
    }

    #[test]
    fn skip_checks_bounds() {
        let mut r = Reader::new(&[0; 4]);
        assert!(r.skip(4).is_ok());
        assert_eq!(r.skip(1).err(), Some(CodecError::Truncated));
    }
}
