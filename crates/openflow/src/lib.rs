//! # sav-openflow — a hand-rolled OpenFlow 1.3 wire protocol
//!
//! The control-channel protocol between the `sdn-sav` controller and its
//! switches, implemented from the OpenFlow 1.3.5 specification with no
//! protocol dependencies: fixed header and framing, HELLO/ECHO/ERROR,
//! feature discovery, `FLOW_MOD` with OXM matches / actions / instructions,
//! `PACKET_IN` / `PACKET_OUT`, `FLOW_REMOVED`, `PORT_STATUS`, barriers and
//! the flow/port/table multipart statistics used by the evaluation harness.
//!
//! Scope note (documented rather than hidden): group/meter tables, queues,
//! role/async-config negotiation and auxiliary connections are not modelled —
//! the SAV application and its baselines exercise none of them. Every message
//! that *is* modelled is byte-accurate per the spec, including OXM TLV
//! prerequisites, so captured byte strings can be compared against
//! spec examples (see the unit tests).
//!
//! ## Layering
//!
//! * [`wire`] — bounds-checked cursor reader/writer primitives.
//! * [`header`] — the 8-byte fixed header and [`framing`] for streams.
//! * [`oxm`] — OXM match TLVs with mask support and prerequisite checking.
//! * [`actions`] / [`instructions`] — the action and instruction lists.
//! * [`ports`] — `ofp_port` descriptions used in features and port-status.
//! * [`messages`] — the [`messages::Message`] enum with `encode`/`decode`.
//!
//! ```
//! use sav_openflow::prelude::*;
//!
//! // A SAV allow-rule: match (in_port=3, eth_src, ipv4_src) and goto the
//! // forwarding table.
//! let m = OxmMatch::new()
//!     .with(OxmField::InPort(3))
//!     .with(OxmField::EthType(0x0800))
//!     .with(OxmField::EthSrc([0x02, 0, 0, 0, 0, 1].into(), None))
//!     .with(OxmField::Ipv4Src("10.0.1.5".parse().unwrap(), None));
//! assert!(m.validate_prerequisites().is_ok());
//!
//! let fm = FlowMod {
//!     priority: 40_000,
//!     table_id: 0,
//!     instructions: vec![Instruction::GotoTable(1)],
//!     ..FlowMod::add(m)
//! };
//! let bytes = Message::FlowMod(fm.clone()).encode(7);
//! let (msg, xid) = Message::decode(&bytes).unwrap();
//! assert_eq!(xid, 7);
//! assert_eq!(msg, Message::FlowMod(fm));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actions;
pub mod consts;
pub mod error;
pub mod framing;
pub mod header;
pub mod instructions;
pub mod messages;
pub mod oxm;
pub mod ports;
pub mod wire;

/// One-stop import for downstream crates.
pub mod prelude {
    pub use crate::actions::Action;
    pub use crate::consts::{port, NO_BUFFER, OFP_VERSION};
    pub use crate::error::CodecError;
    pub use crate::framing::Deframer;
    pub use crate::header::Header;
    pub use crate::instructions::Instruction;
    pub use crate::messages::{
        EchoData, ErrorMsg, FeaturesReply, FlowMod, FlowModCommand, FlowRemoved, FlowRemovedReason,
        FlowStatsEntry, FlowStatsRequest, Message, MultipartReplyBody, MultipartRequestBody,
        PacketIn, PacketInReason, PacketOut, PortStats, PortStatus, PortStatusReason, SwitchConfig,
        TableStats,
    };
    pub use crate::oxm::{OxmField, OxmMatch};
    pub use crate::ports::{PortConfig, PortDesc, PortState};
}

pub use prelude::*;
