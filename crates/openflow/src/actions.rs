//! OpenFlow actions (`ofp_action_*`).
//!
//! The subset used by the workspace: `OUTPUT`, `GROUP`, and `SET_FIELD`.
//! Dropping a packet is expressed, per spec, by an empty action list.

use crate::error::{CodecError, Result};
use crate::oxm::OxmField;
use crate::wire::{Reader, Writer};
use core::fmt;

/// `ofp_action_type` values.
mod action_type {
    pub const OUTPUT: u16 = 0;
    pub const GROUP: u16 = 22;
    pub const SET_FIELD: u16 = 25;
}

/// Default `max_len` for output-to-controller: send the full packet.
pub const CONTROLLER_MAX_LEN: u16 = 0xffff;

/// One action.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Action {
    /// Forward out a port (physical or reserved). `max_len` bounds the bytes
    /// sent to the controller when the port is `OFPP_CONTROLLER`.
    Output {
        /// Destination port.
        port: u32,
        /// Bytes to include in the resulting PACKET_IN (controller port only).
        max_len: u16,
    },
    /// Process through a group table entry.
    Group(u32),
    /// Rewrite a header field.
    SetField(OxmField),
}

impl Action {
    /// Output to a port with the full-packet controller length.
    pub fn output(port: u32) -> Action {
        Action::Output {
            port,
            max_len: CONTROLLER_MAX_LEN,
        }
    }

    /// Encoded length (multiple of 8).
    pub fn encoded_len(&self) -> usize {
        match self {
            Action::Output { .. } => 16,
            Action::Group(_) => 8,
            Action::SetField(f) => crate::consts::pad8(4 + f.encoded_len()),
        }
    }

    /// Append to `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Action::Output { port, max_len } => {
                w.u16(action_type::OUTPUT);
                w.u16(16);
                w.u32(*port);
                w.u16(*max_len);
                w.pad(6);
            }
            Action::Group(g) => {
                w.u16(action_type::GROUP);
                w.u16(8);
                w.u32(*g);
            }
            Action::SetField(f) => {
                let start = w.len();
                w.u16(action_type::SET_FIELD);
                w.u16(self.encoded_len() as u16);
                f.encode(w);
                w.pad8_from(start);
            }
        }
    }

    /// Decode one action from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<Action> {
        let atype = r.u16()?;
        let len = usize::from(r.u16()?);
        if len < 8 || len % 8 != 0 {
            return Err(CodecError::BadLength);
        }
        let mut body = r.sub(len - 4)?;
        match atype {
            action_type::OUTPUT => {
                if len != 16 {
                    return Err(CodecError::BadLength);
                }
                let port = body.u32()?;
                let max_len = body.u16()?;
                body.skip(6)?;
                Ok(Action::Output { port, max_len })
            }
            action_type::GROUP => {
                if len != 8 {
                    return Err(CodecError::BadLength);
                }
                Ok(Action::Group(body.u32()?))
            }
            action_type::SET_FIELD => {
                let f = OxmField::decode(&mut body)?;
                // The rest is padding; accept any residue of zeros.
                Ok(Action::SetField(f))
            }
            _ => Err(CodecError::Unsupported),
        }
    }

    /// Encode a list of actions.
    pub fn encode_list(actions: &[Action], w: &mut Writer) {
        for a in actions {
            a.encode(w);
        }
    }

    /// Decode exactly `len` bytes of actions.
    pub fn decode_list(r: &mut Reader<'_>, len: usize) -> Result<Vec<Action>> {
        let mut body = r.sub(len)?;
        let mut out = Vec::new();
        while !body.is_empty() {
            out.push(Action::decode(&mut body)?);
        }
        Ok(out)
    }

    /// Total encoded length of a list.
    pub fn list_len(actions: &[Action]) -> usize {
        actions.iter().map(|a| a.encoded_len()).sum()
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Output { port, .. } => match *port {
                crate::consts::port::CONTROLLER => f.write_str("output:controller"),
                crate::consts::port::FLOOD => f.write_str("output:flood"),
                crate::consts::port::ALL => f.write_str("output:all"),
                crate::consts::port::IN_PORT => f.write_str("output:in_port"),
                p => write!(f, "output:{p}"),
            },
            Action::Group(g) => write!(f, "group:{g}"),
            Action::SetField(field) => write!(f, "set_field({field})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consts::port;

    fn roundtrip(a: Action) {
        let mut w = Writer::new();
        a.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), a.encoded_len());
        assert_eq!(bytes.len() % 8, 0);
        let mut r = Reader::new(&bytes);
        assert_eq!(Action::decode(&mut r).unwrap(), a);
        assert!(r.is_empty());
    }

    #[test]
    fn output_roundtrip() {
        roundtrip(Action::output(3));
        roundtrip(Action::Output {
            port: port::CONTROLLER,
            max_len: 128,
        });
    }

    #[test]
    fn group_roundtrip() {
        roundtrip(Action::Group(42));
    }

    #[test]
    fn set_field_roundtrip() {
        roundtrip(Action::SetField(OxmField::UdpDst(53)));
        roundtrip(Action::SetField(OxmField::EthSrc(
            sav_net::addr::MacAddr::from_index(9),
            None,
        )));
    }

    #[test]
    fn output_exact_bytes() {
        let mut w = Writer::new();
        Action::output(port::FLOOD).encode(&mut w);
        assert_eq!(
            w.as_slice(),
            &[0, 0, 0, 16, 0xff, 0xff, 0xff, 0xfb, 0xff, 0xff, 0, 0, 0, 0, 0, 0]
        );
    }

    #[test]
    fn list_roundtrip() {
        let actions = vec![
            Action::SetField(OxmField::EthType(0x0800)),
            Action::output(1),
            Action::output(2),
        ];
        let mut w = Writer::new();
        Action::encode_list(&actions, &mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), Action::list_len(&actions));
        let mut r = Reader::new(&bytes);
        let out = Action::decode_list(&mut r, bytes.len()).unwrap();
        assert_eq!(out, actions);
    }

    #[test]
    fn empty_list() {
        let mut r = Reader::new(&[]);
        assert_eq!(Action::decode_list(&mut r, 0).unwrap(), vec![]);
        assert_eq!(Action::list_len(&[]), 0);
    }

    #[test]
    fn rejects_unknown_and_bad_len() {
        // Unknown type 99.
        let bytes = [0, 99, 0, 8, 0, 0, 0, 0];
        assert_eq!(
            Action::decode(&mut Reader::new(&bytes)).err(),
            Some(CodecError::Unsupported)
        );
        // Output with wrong length.
        let bytes = [0, 0, 0, 8, 0, 0, 0, 1];
        assert_eq!(
            Action::decode(&mut Reader::new(&bytes)).err(),
            Some(CodecError::BadLength)
        );
        // Unaligned length.
        let bytes = [0, 0, 0, 9, 0, 0, 0, 1, 0];
        assert_eq!(
            Action::decode(&mut Reader::new(&bytes)).err(),
            Some(CodecError::BadLength)
        );
    }

    #[test]
    fn display() {
        assert_eq!(Action::output(7).to_string(), "output:7");
        assert_eq!(
            Action::Output {
                port: port::CONTROLLER,
                max_len: 0xffff
            }
            .to_string(),
            "output:controller"
        );
        assert_eq!(
            Action::SetField(OxmField::UdpDst(53)).to_string(),
            "set_field(udp_dst=53)"
        );
    }
}
